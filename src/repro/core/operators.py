"""FlexRecs workflow operators.

A recommendation strategy is a tree of operators (the paper's Figure 5):

* :class:`Source` / :class:`SqlSource` — base relations;
* :class:`Select` — σ with a SQL predicate string;
* :class:`Project` — π (optionally DISTINCT);
* :class:`Join` — equi-join of two sub-workflows;
* :class:`Extend` — ε: attaches a set- or vector-valued attribute derived
  from another relation ("view the set of ratings for each student as
  another attribute of the student irrespective of the database schema");
* :class:`Recommend` — the special operator: ranks the *target* tuples by
  comparing them to the *reference* tuples with a library comparator,
  aggregating pair scores (max/avg/sum/min/count) into a score column;
* :class:`TopK` — order by a column and keep the first k.

Operators are immutable descriptions; execution is performed either by
:mod:`repro.core.executor` (direct) or :mod:`repro.core.compiler` (SQL).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.errors import WorkflowValidationError
from repro.core.library import Comparator
from repro.minidb.catalog import Database

AGGREGATES = ("max", "avg", "sum", "min", "count")


@dataclass(frozen=True)
class ExtendInfo:
    """Metadata describing one extend-attached attribute.

    ``attribute`` is visible on tuples of the extended relation.  Values
    come from ``source_table`` rows whose ``source_key`` equals the
    tuple's ``key_column``.  With ``map_column`` the attribute is a vector
    ``{map: value}``; without it, a set of ``value_column`` values.
    """

    attribute: str
    source_table: str
    source_key: str
    key_column: str
    value_column: str
    map_column: Optional[str] = None

    @property
    def is_vector(self) -> bool:
        return self.map_column is not None


class Operator:
    """Base class for workflow nodes."""

    def children(self) -> Tuple["Operator", ...]:
        return ()

    def output_columns(self, database: Database) -> List[str]:
        """Column names this operator produces (extend attrs excluded)."""
        raise NotImplementedError

    def extend_infos(self, database: Database) -> List[ExtendInfo]:
        """Extend metadata still attached to this operator's output."""
        infos: List[ExtendInfo] = []
        for child in self.children():
            infos.extend(child.extend_infos(database))
        return infos

    def describe(self) -> str:
        raise NotImplementedError

    # -- small tree helpers ------------------------------------------------

    def render_tree(self, indent: int = 0) -> str:
        lines = ["  " * indent + self.describe()]
        for child in self.children():
            lines.append(child.render_tree(indent + 1))
        return "\n".join(lines)


@dataclass(frozen=True)
class Source(Operator):
    """A base table of the database."""

    table: str

    def output_columns(self, database: Database) -> List[str]:
        return list(database.table(self.table).schema.column_names)

    def describe(self) -> str:
        return f"Source({self.table})"


@dataclass(frozen=True)
class SqlSource(Operator):
    """An arbitrary SELECT used as a workflow input (escape hatch)."""

    sql: str

    def output_columns(self, database: Database) -> List[str]:
        from repro.minidb.planner import plan_select
        from repro.minidb.sql.parser import parse_statement
        from repro.minidb.sql.ast import SelectStatement

        statement = parse_statement(self.sql)
        if not isinstance(statement, SelectStatement):
            raise WorkflowValidationError("SqlSource requires a SELECT statement")
        return plan_select(database, statement).column_names

    def describe(self) -> str:
        return f"SqlSource({self.sql!r})"


@dataclass(frozen=True)
class MaterializedSource(Operator):
    """A table reference with an explicit schema.

    Used by the staged compiler for temp tables that do not exist yet at
    compile time (each recommend stage materializes into one).
    """

    table: str
    schema_pairs: Tuple[Tuple[str, Any], ...]  # (column name, DataType)

    def output_columns(self, database: Database) -> List[str]:
        return [name for name, _dtype in self.schema_pairs]

    def describe(self) -> str:
        return f"MaterializedSource({self.table})"


@dataclass(frozen=True)
class Select(Operator):
    """σ: keep tuples satisfying a SQL predicate over the child columns."""

    child: Operator
    condition: str

    def children(self) -> Tuple[Operator, ...]:
        return (self.child,)

    def output_columns(self, database: Database) -> List[str]:
        return self.child.output_columns(database)

    def describe(self) -> str:
        return f"Select({self.condition})"


@dataclass(frozen=True)
class Project(Operator):
    """π: keep only the named columns (extend attrs survive alongside)."""

    child: Operator
    columns: Tuple[str, ...]
    distinct: bool = False

    def children(self) -> Tuple[Operator, ...]:
        return (self.child,)

    def output_columns(self, database: Database) -> List[str]:
        available = {
            column.lower(): column
            for column in self.child.output_columns(database)
        }
        resolved = []
        for column in self.columns:
            if column.lower() not in available:
                raise WorkflowValidationError(
                    f"Project references unknown column {column!r}; "
                    f"child has {sorted(available.values())}"
                )
            resolved.append(available[column.lower()])
        return resolved

    def extend_infos(self, database: Database) -> List[ExtendInfo]:
        kept = {column.lower() for column in self.columns}
        return [
            info
            for info in self.child.extend_infos(database)
            if info.key_column.lower() in kept
        ]

    def describe(self) -> str:
        star = "DISTINCT " if self.distinct else ""
        return f"Project({star}{', '.join(self.columns)})"


@dataclass(frozen=True)
class Join(Operator):
    """Equi-join of two sub-workflows on one column from each side."""

    left: Operator
    right: Operator
    left_on: str
    right_on: str

    def children(self) -> Tuple[Operator, ...]:
        return (self.left, self.right)

    def output_columns(self, database: Database) -> List[str]:
        left_columns = self.left.output_columns(database)
        right_columns = self.right.output_columns(database)
        collisions = {c.lower() for c in left_columns} & {
            c.lower() for c in right_columns
        }
        if collisions:
            raise WorkflowValidationError(
                f"Join output would have duplicate columns {sorted(collisions)}; "
                "Project the inputs first"
            )
        return left_columns + right_columns

    def describe(self) -> str:
        return f"Join({self.left_on} = {self.right_on})"


@dataclass(frozen=True)
class Extend(Operator):
    """ε: attach a derived set/vector attribute to each tuple."""

    child: Operator
    info: ExtendInfo

    def children(self) -> Tuple[Operator, ...]:
        return (self.child,)

    def output_columns(self, database: Database) -> List[str]:
        columns = self.child.output_columns(database)
        if self.info.attribute.lower() in {c.lower() for c in columns}:
            raise WorkflowValidationError(
                f"Extend attribute {self.info.attribute!r} collides with a column"
            )
        return columns

    def extend_infos(self, database: Database) -> List[ExtendInfo]:
        return self.child.extend_infos(database) + [self.info]

    def describe(self) -> str:
        shape = "vector" if self.info.is_vector else "set"
        return (
            f"Extend({self.info.attribute} := {shape} from "
            f"{self.info.source_table})"
        )


def extend(
    child: Operator,
    attribute: str,
    source_table: str,
    source_key: str,
    key_column: str,
    value_column: str,
    map_column: Optional[str] = None,
) -> Extend:
    """Convenience constructor for :class:`Extend`."""
    return Extend(
        child,
        ExtendInfo(
            attribute=attribute,
            source_table=source_table,
            source_key=source_key,
            key_column=key_column,
            value_column=value_column,
            map_column=map_column,
        ),
    )


@dataclass(frozen=True)
class Recommend(Operator):
    """The recommend operator (the paper's triangle).

    Ranks ``target`` tuples by comparing each to the ``reference`` tuples
    with ``comparator``; pair scores are folded with ``aggregate`` into a
    ``score_column``.  Targets with no defined pair score are dropped.
    ``target_key`` must be a unique key of the target relation (used for
    grouping in the compiled SQL and for deterministic tie-breaking).
    ``exclude_self`` optionally names a (target column, reference column)
    pair whose equality disqualifies a pair — e.g. don't count a student
    as similar to themselves.
    """

    target: Operator
    reference: Operator
    comparator: Comparator
    target_key: str
    aggregate: str = "max"
    score_column: str = "score"
    top_k: Optional[int] = None
    exclude_self: Optional[Tuple[str, str]] = None

    def children(self) -> Tuple[Operator, ...]:
        return (self.target, self.reference)

    def output_columns(self, database: Database) -> List[str]:
        columns = self.target.output_columns(database)
        lowered = {c.lower() for c in columns}
        if self.aggregate not in AGGREGATES:
            raise WorkflowValidationError(
                f"unknown aggregate {self.aggregate!r}; choose from {AGGREGATES}"
            )
        if self.score_column.lower() in lowered:
            raise WorkflowValidationError(
                f"score column {self.score_column!r} collides with a target column"
            )
        if self.target_key.lower() not in lowered:
            raise WorkflowValidationError(
                f"target key {self.target_key!r} is not a target column"
            )
        if self.top_k is not None and self.top_k < 1:
            raise WorkflowValidationError("top_k must be at least 1")
        return columns + [self.score_column]

    def extend_infos(self, database: Database) -> List[ExtendInfo]:
        # Only the target side's extends survive into the output tuples.
        return self.target.extend_infos(database)

    def describe(self) -> str:
        parts = [
            f"Recommend[{self.comparator.describe()}",
            f"agg={self.aggregate}",
        ]
        if self.top_k is not None:
            parts.append(f"top_k={self.top_k}")
        return " ".join(parts) + "]"


@dataclass(frozen=True)
class TopK(Operator):
    """Order by a column (descending by default) and keep the first k."""

    child: Operator
    k: int
    by_column: str
    descending: bool = True

    def children(self) -> Tuple[Operator, ...]:
        return (self.child,)

    def output_columns(self, database: Database) -> List[str]:
        columns = self.child.output_columns(database)
        if self.by_column.lower() not in {c.lower() for c in columns}:
            raise WorkflowValidationError(
                f"TopK column {self.by_column!r} is not a child column"
            )
        if self.k < 1:
            raise WorkflowValidationError("TopK k must be at least 1")
        return columns

    def describe(self) -> str:
        direction = "DESC" if self.descending else "ASC"
        return f"TopK({self.k} by {self.by_column} {direction})"


@dataclass(frozen=True)
class GraphRecommend(Operator):
    """Leaf operator: FolkRank differential ranking over Courses.

    Produces the ``Courses`` relation extended with ``score_column``,
    ranked by the preference-biased, baseline-subtracted graph walk (see
    :mod:`repro.graphrank`).  ``preference`` is a tuple of
    ``(kind, key)`` seeds (``"user"``, ``"course"``, or ``"term"``);
    with ``exclude_seed`` any seeded course is dropped from the answer.
    The graph is built from live tables at execution time, so this
    operator has no SQL compilation — workflows using it are direct-only.
    """

    preference: Tuple[Tuple[str, Any], ...]
    top_k: int = 10
    score_column: str = "score"
    exclude_seed: bool = True
    damping: float = 0.85
    epsilon: float = 1e-12
    max_iters: int = 250
    preference_weight: float = 0.3

    def children(self) -> Tuple[Operator, ...]:
        return ()

    def output_columns(self, database: Database) -> List[str]:
        columns = list(database.table("Courses").schema.column_names)
        if self.score_column.lower() in {c.lower() for c in columns}:
            raise WorkflowValidationError(
                f"score column {self.score_column!r} collides with a Courses column"
            )
        if self.top_k < 1:
            raise WorkflowValidationError("top_k must be at least 1")
        if not self.preference:
            raise WorkflowValidationError(
                "GraphRecommend needs at least one preference seed"
            )
        return columns + [self.score_column]

    def describe(self) -> str:
        seeds = ", ".join(f"{kind}:{key}" for kind, key in self.preference)
        return f"GraphRecommend[{seeds} top_k={self.top_k}]"
