"""Compilation of FlexRecs workflows into SQL.

The paper: *"The engine executes a workflow by 'compiling' it into a
sequence of SQL calls, which are executed by a conventional DBMS.  When
possible, library functions are compiled into the SQL statements
themselves; in other cases we can rely on external functions that are
called by the SQL statements."*

This module implements exactly that against :mod:`repro.minidb`:

* relational operators become nested sub-selects;
* ``scalar`` comparators inline as SQL arithmetic/CASE expressions;
* ``vector`` comparators (inverse Euclidean, Pearson, cosine) compile to
  a *co-rated join* — the extend operator's virtual attribute never
  materializes; instead the comparator's math is pushed into SQL
  aggregates over the underlying ratings relation;
* ``set`` comparators compile to an intersection join plus per-key size
  subqueries;
* ``lookup`` comparators compile to a probe join (Figure 5(b) upper);
* ``udf`` comparators register the similarity function with the engine
  and call it from the generated SQL.

The output of ``compile_workflow`` is a single SELECT statement.  The
rank order is made deterministic by a secondary sort on the target key,
matching the direct executor's tie-breaking.

Requirements the compiler (and the direct path) share:

* ``Recommend.target_key`` must be unique within the target relation;
* extend sources must be unique per (source_key, map_column) — CourseRank
  keeps one rating per (student, course).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.backends.dialects import MINIDB_DIALECT, SqlDialect, get_dialect
from repro.errors import CompilationError
from repro.core.library import Comparator
from repro.core.operators import (
    Extend,
    ExtendInfo,
    Join,
    MaterializedSource,
    Operator,
    Project,
    Recommend,
    Select,
    Source,
    SqlSource,
    TopK,
)
from repro.core.workflow import Workflow
from repro.minidb.catalog import Database


@dataclass
class CompiledWorkflow:
    """The compilation artifact: SQL text plus registered UDF names.

    ``dialect`` names the SQL dialect the text was rendered for;
    ``params`` are positional ``?`` bindings (currently always empty —
    the compiler inlines workflow constants — but carried so backends
    bind uniformly); ``udf_impls`` pairs each UDF name with its Python
    callable so non-minidb backends can register the functions with
    their own engines before executing.
    """

    sql: str
    columns: List[str]
    udfs: Tuple[str, ...] = ()
    dialect: str = "minidb"
    params: Tuple[Any, ...] = ()
    udf_impls: Tuple[Tuple[str, Callable[..., Any]], ...] = ()


def compile_workflow(
    workflow: Workflow,
    database: Database,
    dialect: Optional[Any] = None,
) -> CompiledWorkflow:
    """Compile a validated workflow to one SQL SELECT for ``database``.

    ``dialect`` (a :class:`SqlDialect` or registered dialect name)
    selects the target engine's SQL spelling; the default renders for
    the minidb engine itself.  The catalog ``database`` stays the
    semantic authority either way — extend metadata, column resolution,
    and UDF registration all consult it.
    """
    resolved = MINIDB_DIALECT if dialect is None else get_dialect(dialect)
    compiler = _Compiler(database, resolved)
    sql = compiler.compile(workflow.root)
    columns = compiler._columns(workflow.root)
    return CompiledWorkflow(
        sql=sql,
        columns=columns,
        udfs=tuple(compiler.udfs),
        dialect=resolved.name,
        udf_impls=tuple(compiler.udf_impls),
    )


class _Compiler:
    def __init__(
        self, database: Database, dialect: SqlDialect = MINIDB_DIALECT
    ) -> None:
        self.database = database
        self.dialect = dialect
        self._alias_counter = 0
        self.udfs: List[str] = []
        self.udf_impls: List[Tuple[str, Callable[..., Any]]] = []
        self._columns_cache: Dict[int, List[str]] = {}

    def _columns(self, node: Operator) -> List[str]:
        """Memoized ``node.output_columns``.

        Column resolution recurses over the whole subtree, and a single
        compilation asks for the same node's columns several times (each
        parent re-asks for its children); memoizing by node identity
        makes compilation linear in tree size.  The cache lives only for
        this compilation, so mutation of the catalog cannot go stale.
        """
        cached = self._columns_cache.get(id(node))
        if cached is None:
            cached = node.output_columns(self.database)
            self._columns_cache[id(node)] = cached
        return cached

    def _fresh(self, prefix: str) -> str:
        self._alias_counter += 1
        return f"{prefix}{self._alias_counter}"

    # -- dispatch -----------------------------------------------------------

    def compile(self, node: Operator) -> str:
        if isinstance(node, Source):
            return self._compile_source(node)
        if isinstance(node, MaterializedSource):
            columns = ", ".join(name for name, _dtype in node.schema_pairs)
            return f"SELECT {columns} FROM {node.table}"
        if isinstance(node, SqlSource):
            self.dialect.require_passthrough(f"SqlSource in {node!r}")
            return node.sql
        if isinstance(node, Select):
            return self._compile_select(node)
        if isinstance(node, Project):
            return self._compile_project(node)
        if isinstance(node, Join):
            return self._compile_join(node)
        if isinstance(node, Extend):
            # Extend is virtual: downstream Recommend nodes compile it
            # into their joins; standalone it is the identity.
            return self.compile(node.child)
        if isinstance(node, TopK):
            return self._compile_topk(node)
        if isinstance(node, Recommend):
            return self._compile_recommend(node)
        raise CompilationError(f"cannot compile operator {type(node).__name__}")

    # -- relational operators ----------------------------------------------

    def _compile_source(self, node: Source) -> str:
        columns = ", ".join(self._columns(node))
        return f"SELECT {columns} FROM {node.table}"

    def _compile_select(self, node: Select) -> str:
        self.dialect.require_passthrough("Select condition")
        alias = self._fresh("sel")
        columns = ", ".join(self._columns(node))
        child = self.compile(node.child)
        return (
            f"SELECT {columns} FROM ({child}) AS {alias} "
            f"WHERE {node.condition}"
        )

    def _compile_project(self, node: Project) -> str:
        alias = self._fresh("prj")
        columns = ", ".join(self._columns(node))
        keyword = "SELECT DISTINCT" if node.distinct else "SELECT"
        child = self.compile(node.child)
        return f"{keyword} {columns} FROM ({child}) AS {alias}"

    def _compile_join(self, node: Join) -> str:
        left_alias = self._fresh("jl")
        right_alias = self._fresh("jr")
        left_columns = [
            f"{left_alias}.{column}"
            for column in self._columns(node.left)
        ]
        right_columns = [
            f"{right_alias}.{column}"
            for column in self._columns(node.right)
        ]
        columns = ", ".join(left_columns + right_columns)
        left_sql = self.compile(node.left)
        right_sql = self.compile(node.right)
        return (
            f"SELECT {columns} FROM ({left_sql}) AS {left_alias} "
            f"JOIN ({right_sql}) AS {right_alias} "
            f"ON {left_alias}.{node.left_on} = {right_alias}.{node.right_on}"
        )

    def _compile_topk(self, node: TopK) -> str:
        alias = self._fresh("top")
        columns = ", ".join(self._columns(node))
        direction = "DESC" if node.descending else "ASC"
        child = self.compile(node.child)
        return (
            f"SELECT {columns} FROM ({child}) AS {alias} "
            f"ORDER BY {node.by_column} {direction} LIMIT {node.k}"
        )

    # -- recommend -------------------------------------------------------

    def _compile_recommend(self, node: Recommend) -> str:
        comparator = node.comparator
        if comparator.kind in ("scalar", "udf"):
            return self._compile_pairwise_scalar(node)
        if comparator.kind == "vector":
            return self._compile_vector(node)
        if comparator.kind == "set":
            return self._compile_set(node)
        if comparator.kind == "lookup":
            return self._compile_lookup(node)
        raise CompilationError(
            f"comparator kind {comparator.kind!r} is not compilable"
        )

    def _recommend_shell(
        self,
        node: Recommend,
        target_alias: str,
        from_clause: str,
        score_expr: str,
    ) -> str:
        """The shared outer query: project target + aggregate + order."""
        target_columns = self._columns(node.target)
        select_list = ", ".join(
            [f"{target_alias}.{column}" for column in target_columns]
            + [f"{self._agg_sql(node.aggregate, score_expr)} AS {node.score_column}"]
        )
        having = self._having_sql(node.aggregate, score_expr)
        limit = f" LIMIT {node.top_k}" if node.top_k is not None else ""
        return (
            f"SELECT {select_list} FROM {from_clause} "
            f"GROUP BY {target_alias}.{node.target_key} "
            f"HAVING {having} "
            f"ORDER BY {node.score_column} DESC, "
            f"{target_alias}.{node.target_key} ASC{limit}"
        )

    @staticmethod
    def _agg_sql(aggregate: str, expression: str) -> str:
        return f"{aggregate.upper()}({expression})"

    @staticmethod
    def _having_sql(aggregate: str, expression: str) -> str:
        if aggregate == "count":
            return f"COUNT({expression}) > 0"
        return f"{aggregate.upper()}({expression}) IS NOT NULL"

    @staticmethod
    def _exclude_condition(
        target_ref: str, reference_ref: str
    ) -> str:
        # Matches the direct path: skip only when both non-NULL and equal.
        return (
            f"({target_ref} <> {reference_ref} "
            f"OR {target_ref} IS NULL OR {reference_ref} IS NULL)"
        )

    def _compile_pairwise_scalar(self, node: Recommend) -> str:
        comparator = node.comparator
        target_alias = self._fresh("t")
        reference_alias = self._fresh("r")
        target_sql = self.compile(node.target)
        reference_sql = self.compile(node.reference)
        if comparator.kind == "udf":
            self._register_udf(comparator)
            score_expr = (
                f"{comparator.udf_name.upper()}("
                f"{target_alias}.{comparator.target_attribute}, "
                f"{reference_alias}.{comparator.reference_attribute})"
            )
        else:
            score_expr = comparator.inline_sql(
                f"{target_alias}.{comparator.target_attribute}",
                f"{reference_alias}.{comparator.reference_attribute}",
                dialect=self.dialect,
            )
        if node.exclude_self is not None:
            condition = self._exclude_condition(
                f"{target_alias}.{node.exclude_self[0]}",
                f"{reference_alias}.{node.exclude_self[1]}",
            )
            from_clause = (
                f"({target_sql}) AS {target_alias} "
                f"JOIN ({reference_sql}) AS {reference_alias} ON {condition}"
            )
        else:
            from_clause = (
                f"({target_sql}) AS {target_alias} "
                f"CROSS JOIN ({reference_sql}) AS {reference_alias}"
            )
        return self._recommend_shell(node, target_alias, from_clause, score_expr)

    def _register_udf(self, comparator: Comparator) -> None:
        if not self.dialect.capabilities.supports_udfs:
            raise CompilationError(
                f"comparator {comparator.name!r} needs a UDF, but dialect "
                f"{self.dialect.name!r} cannot register scalar functions"
            )
        name = comparator.udf_name
        # Always registered on the catalog engine (idempotent for the
        # same callable); other backends register from udf_impls.
        self.database.functions.register_scalar(name, comparator.udf)
        if name not in self.udfs:
            self.udfs.append(name)
            self.udf_impls.append((name, comparator.udf))

    # -- extend-backed compilations ----------------------------------------------

    def _find_extend(
        self, side: Operator, attribute: str, side_name: str
    ) -> ExtendInfo:
        for info in side.extend_infos(self.database):
            if info.attribute.lower() == attribute.lower():
                return info
        raise CompilationError(
            f"no extend metadata for {side_name} attribute {attribute!r}"
        )

    def _values_subquery(
        self,
        side_sql: str,
        info: ExtendInfo,
        key_out: str,
        map_out: Optional[str],
        value_out: str,
        distinct: bool,
    ) -> str:
        """SELECT key, [map,] value rows backing an extend attribute."""
        row_alias = self._fresh("x")
        source_alias = self._fresh("s")
        parts = [f"{row_alias}.{info.key_column} AS {key_out}"]
        where = [f"{source_alias}.{info.value_column} IS NOT NULL"]
        if map_out is not None:
            if info.map_column is None:
                raise CompilationError(
                    f"attribute {info.attribute!r} is a set, not a vector"
                )
            parts.append(f"{source_alias}.{info.map_column} AS {map_out}")
            where.append(f"{source_alias}.{info.map_column} IS NOT NULL")
        parts.append(f"{source_alias}.{info.value_column} AS {value_out}")
        keyword = "SELECT DISTINCT" if distinct else "SELECT"
        return (
            f"{keyword} {', '.join(parts)} "
            f"FROM ({side_sql}) AS {row_alias} "
            f"JOIN {info.source_table} AS {source_alias} "
            f"ON {source_alias}.{info.source_key} = {row_alias}.{info.key_column} "
            f"WHERE {' AND '.join(where)}"
        )

    def _compile_vector(self, node: Recommend) -> str:
        comparator = node.comparator
        target_info = self._find_extend(
            node.target, comparator.target_attribute, "target"
        )
        reference_info = self._find_extend(
            node.reference, comparator.reference_attribute, "reference"
        )
        target_sql = self.compile(node.target)
        reference_sql = self.compile(node.reference)
        target_alias = self._fresh("t")
        tv_alias = self._fresh("tv")
        rv_alias = self._fresh("rv")
        pair_alias = self._fresh("pair")
        tv_sql = self._values_subquery(
            target_sql, target_info, "__tkey", "__m", "__v", distinct=False
        )
        rv_sql = self._values_subquery(
            reference_sql, reference_info, "__rkey", "__m2", "__v2", distinct=False
        )
        join_condition = f"{tv_alias}.__m = {rv_alias}.__m2"
        if node.exclude_self is not None:
            exc_t, exc_r = node.exclude_self
            if (
                exc_t.lower() != target_info.key_column.lower()
                or exc_r.lower() != reference_info.key_column.lower()
            ):
                raise CompilationError(
                    "vector comparators support exclude_self only on the "
                    "extend key columns"
                )
            join_condition += f" AND {tv_alias}.__tkey <> {rv_alias}.__rkey"
        sim = comparator.pair_sql(
            f"{tv_alias}.__v", f"{rv_alias}.__v2", dialect=self.dialect
        )
        pair_sql = (
            f"SELECT {tv_alias}.__tkey AS __tkey, {rv_alias}.__rkey AS __rkey, "
            f"{sim} AS sim "
            f"FROM ({tv_sql}) AS {tv_alias} "
            f"JOIN ({rv_sql}) AS {rv_alias} ON {join_condition} "
            f"GROUP BY {tv_alias}.__tkey, {rv_alias}.__rkey"
        )
        from_clause = (
            f"({target_sql}) AS {target_alias} "
            f"JOIN ({pair_sql}) AS {pair_alias} "
            f"ON {pair_alias}.__tkey = {target_alias}.{target_info.key_column}"
        )
        return self._recommend_shell(
            node, target_alias, from_clause, f"{pair_alias}.sim"
        )

    def _compile_set(self, node: Recommend) -> str:
        comparator = node.comparator
        target_info = self._find_extend(
            node.target, comparator.target_attribute, "target"
        )
        reference_info = self._find_extend(
            node.reference, comparator.reference_attribute, "reference"
        )
        target_sql = self.compile(node.target)
        reference_sql = self.compile(node.reference)
        target_alias = self._fresh("t")
        tv_alias = self._fresh("tv")
        rv_alias = self._fresh("rv")
        inter_alias = self._fresh("inter")
        tsize_alias = self._fresh("tn")
        rsize_alias = self._fresh("rn")
        pair_alias = self._fresh("pair")

        def values(info: ExtendInfo, side_sql: str, key_out: str) -> str:
            return self._values_subquery(
                side_sql, info, key_out, None, "__v" if key_out == "__tkey" else "__v2",
                distinct=True,
            )

        tv_sql = values(target_info, target_sql, "__tkey")
        rv_sql = values(reference_info, reference_sql, "__rkey")
        join_condition = f"{tv_alias}.__v = {rv_alias}.__v2"
        if node.exclude_self is not None:
            exc_t, exc_r = node.exclude_self
            if (
                exc_t.lower() != target_info.key_column.lower()
                or exc_r.lower() != reference_info.key_column.lower()
            ):
                raise CompilationError(
                    "set comparators support exclude_self only on the "
                    "extend key columns"
                )
            join_condition += f" AND {tv_alias}.__tkey <> {rv_alias}.__rkey"
        intersection_sql = (
            f"SELECT {tv_alias}.__tkey AS __tkey, {rv_alias}.__rkey AS __rkey, "
            f"COUNT(*) AS __c "
            f"FROM ({tv_sql}) AS {tv_alias} "
            f"JOIN ({rv_sql}) AS {rv_alias} ON {join_condition} "
            f"GROUP BY {tv_alias}.__tkey, {rv_alias}.__rkey"
        )
        tsize_sql = (
            f"SELECT __tkey AS __tk, COUNT(*) AS __n "
            f"FROM ({values(target_info, target_sql, '__tkey')}) "
            f"AS {self._fresh('ts')} GROUP BY __tkey"
        )
        rsize_sql = (
            f"SELECT __rkey AS __rk, COUNT(*) AS __n2 "
            f"FROM ({values(reference_info, reference_sql, '__rkey')}) "
            f"AS {self._fresh('rs')} GROUP BY __rkey"
        )
        formula = comparator.set_sql(
            f"{inter_alias}.__c",
            f"{tsize_alias}.__n",
            f"{rsize_alias}.__n2",
            dialect=self.dialect,
        )
        pair_sql = (
            f"SELECT {inter_alias}.__tkey AS __tkey, "
            f"{inter_alias}.__rkey AS __rkey, {formula} AS sim "
            f"FROM ({intersection_sql}) AS {inter_alias} "
            f"JOIN ({tsize_sql}) AS {tsize_alias} "
            f"ON {tsize_alias}.__tk = {inter_alias}.__tkey "
            f"JOIN ({rsize_sql}) AS {rsize_alias} "
            f"ON {rsize_alias}.__rk = {inter_alias}.__rkey"
        )
        from_clause = (
            f"({target_sql}) AS {target_alias} "
            f"JOIN ({pair_sql}) AS {pair_alias} "
            f"ON {pair_alias}.__tkey = {target_alias}.{target_info.key_column}"
        )
        return self._recommend_shell(
            node, target_alias, from_clause, f"{pair_alias}.sim"
        )

    def _compile_lookup(self, node: Recommend) -> str:
        comparator = node.comparator
        reference_info = self._find_extend(
            node.reference, comparator.reference_attribute, "reference"
        )
        target_sql = self.compile(node.target)
        reference_sql = self.compile(node.reference)
        target_alias = self._fresh("t")
        source_alias = self._fresh("s")
        reference_alias = self._fresh("r")
        if reference_info.map_column is None:
            raise CompilationError(
                f"lookup comparator needs a vector attribute, "
                f"{reference_info.attribute!r} is a set"
            )
        conditions = [
            f"{source_alias}.{reference_info.source_key} = "
            f"{reference_alias}.{reference_info.key_column}"
        ]
        if node.exclude_self is not None:
            conditions.append(
                self._exclude_condition(
                    f"{target_alias}.{node.exclude_self[0]}",
                    f"{reference_alias}.{node.exclude_self[1]}",
                )
            )
        from_clause = (
            f"({target_sql}) AS {target_alias} "
            f"JOIN {reference_info.source_table} AS {source_alias} "
            f"ON {source_alias}.{reference_info.map_column} = "
            f"{target_alias}.{comparator.target_attribute} "
            f"AND {source_alias}.{reference_info.value_column} IS NOT NULL "
            f"JOIN ({reference_sql}) AS {reference_alias} "
            f"ON {' AND '.join(conditions)}"
        )
        score_expr = self.dialect.cast_float(
            f"{source_alias}.{reference_info.value_column}"
        )
        return self._recommend_shell(node, target_alias, from_clause, score_expr)
