"""FlexRecs — the paper's primary contribution.

A recommendation strategy is a declarative *workflow* of operators
(select, project, join, extend, recommend, top-k) over structured data.
The special **recommend** operator ranks one set of tuples by comparing
it to another with a comparator from a pluggable library (Jaccard,
Pearson, inverse Euclidean, text similarity, ...).

Workflows execute on two interchangeable paths:

* **direct** (``workflow.run(db)``) — in-memory evaluation, the reference
  semantics;
* **compiled** (``workflow.run_sql(db)``) — the workflow is compiled into
  SQL executed by the relational engine, exactly as the paper deploys
  FlexRecs on a conventional DBMS.

The two paths produce rank-identical results (property-tested).

>>> from repro.core import strategies
>>> wf = strategies.related_courses(course_id=1, top_k=5)
>>> wf.run(db).rows == wf.run_sql(db).rows   # doctest: +SKIP
True
"""

from repro.core import similarity, strategies
from repro.core.compiler import CompiledWorkflow, compile_workflow
from repro.core.dsl import parse_workflow
from repro.core.executor import execute_workflow
from repro.core.optimizer import describe_rewrites, optimize
from repro.core.staged import (
    StagedWorkflow,
    compile_workflow_staged,
    operator_schema,
    run_staged,
)
from repro.core.library import (
    COMPARATORS,
    CommonCount,
    Comparator,
    CosineVector,
    EqualityMatch,
    InverseEuclidean,
    LevenshteinSimilarity,
    NumericCloseness,
    PearsonCorrelation,
    SetJaccard,
    SetOverlap,
    TextJaccard,
    VectorLookup,
    make_comparator,
)
from repro.core.operators import (
    Extend,
    ExtendInfo,
    GraphRecommend,
    Join,
    Operator,
    Project,
    Recommend,
    Select,
    Source,
    SqlSource,
    TopK,
    extend,
)
from repro.core.workflow import Recommendation, Workflow

from repro.core.operators import MaterializedSource

__all__ = [
    "similarity",
    "strategies",
    "CompiledWorkflow",
    "compile_workflow",
    "parse_workflow",
    "execute_workflow",
    "describe_rewrites",
    "optimize",
    "StagedWorkflow",
    "compile_workflow_staged",
    "operator_schema",
    "run_staged",
    "MaterializedSource",
    "COMPARATORS",
    "CommonCount",
    "Comparator",
    "CosineVector",
    "EqualityMatch",
    "InverseEuclidean",
    "LevenshteinSimilarity",
    "NumericCloseness",
    "PearsonCorrelation",
    "SetJaccard",
    "SetOverlap",
    "TextJaccard",
    "VectorLookup",
    "make_comparator",
    "Extend",
    "ExtendInfo",
    "Join",
    "Operator",
    "Project",
    "GraphRecommend",
    "Recommend",
    "Select",
    "Source",
    "SqlSource",
    "TopK",
    "extend",
    "Recommendation",
    "Workflow",
]
