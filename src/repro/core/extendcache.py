"""Epoch-keyed cache of extend-operator vectors, sets, and statistics.

The extend operator (ε) materializes a ``{entity: vector-or-set}`` map by
scanning its *entire* source table — every workflow run, even though the
underlying ratings change rarely.  This module caches those maps per
database with the same version-counter discipline the minidb plan cache
uses: each entry's key embeds the source table's ``data_version`` (bumped
by every insert/update/delete/clear/restore) and the database's
``schema_epoch`` (bumped by DDL, so a DROP + CREATE that resets a fresh
table's counters can never alias an old entry).  A write to a
contributing table therefore makes every stale entry unreachable — there
are no invalidation hooks to forget; old generations age out of the LRU.

Cached vector attributes are :class:`StatsVector` instances — plain dicts
carrying precomputed :class:`~repro.core.similarity.VectorStats` so the
recommend operator's Pearson/cosine fast paths can skip whole-vector
re-summation.  Cached values are shared across rows and runs and must be
treated as immutable (the direct executor never mutates them; the naive
path shares them between rows already).
"""

from __future__ import annotations

import threading
from typing import Any, Dict, Optional, Tuple
from weakref import WeakKeyDictionary

from repro.caching import LRUCache
from repro.core.similarity import VectorStats, vector_stats
from repro.minidb.catalog import Database


class StatsVector(dict):
    """An extend vector (``{map_key: value}``) with precomputed stats."""

    __slots__ = ("stats",)

    stats: VectorStats


#: one bounded cache per live Database; a collected database drops its
#: entries automatically.
_CACHES: "WeakKeyDictionary[Database, LRUCache]" = WeakKeyDictionary()

_MAXSIZE = 64

# Guards the registry itself (WeakKeyDictionary reads can mutate internal
# state via dead-ref callbacks, and two threads must agree on one cache
# per database); the per-database LRUCache is internally thread-safe.
_CACHES_LOCK = threading.Lock()


def _cache_for(database: Database) -> LRUCache:
    with _CACHES_LOCK:
        cache = _CACHES.get(database)
        if cache is None:
            cache = LRUCache(maxsize=_MAXSIZE)
            _CACHES[database] = cache
        return cache


def _entry_key(database: Database, info: Any, table: Any) -> Tuple:
    return (
        info.source_table.lower(),
        info.source_key.lower(),
        info.value_column.lower(),
        info.map_column.lower() if info.map_column is not None else None,
        database.schema_epoch,
        table.data_version,
    )


def build_vectors(table: Any, info: Any) -> Dict[Any, Any]:
    """Materialize the extend map for ``info`` from ``table`` (one scan).

    Mirrors the direct executor's historical grouping exactly: NULL keys,
    NULL values, and NULL map keys are skipped; vector attributes keep
    the last value per (key, map_key) in row order.
    """
    schema = table.schema
    key_position = schema.column_position(info.source_key)
    value_position = schema.column_position(info.value_column)
    map_position = (
        schema.column_position(info.map_column)
        if info.map_column is not None
        else None
    )
    grouped: Dict[Any, Any] = {}
    if map_position is not None:
        for row in table.rows():
            key = row[key_position]
            value = row[value_position]
            if key is None or value is None:
                continue
            map_key = row[map_position]
            if map_key is None:
                continue
            vector = grouped.get(key)
            if vector is None:
                vector = grouped[key] = StatsVector()
            vector[map_key] = value
        for vector in grouped.values():
            vector.stats = vector_stats(vector)
    else:
        for row in table.rows():
            key = row[key_position]
            value = row[value_position]
            if key is None or value is None:
                continue
            grouped.setdefault(key, set()).add(value)
    return grouped


def extend_vectors(database: Database, info: Any) -> Tuple[Dict[Any, Any], bool]:
    """The cached extend map for ``info``; returns ``(map, was_hit)``."""
    table = database.table(info.source_table)
    key = _entry_key(database, info, table)
    cache = _cache_for(database)
    entry = cache.get(key)
    if entry is not None:
        return entry, True
    entry = build_vectors(table, info)
    cache.put(key, entry)
    return entry, False


def stats_of(vector: Any) -> Optional[VectorStats]:
    """The precomputed stats of a cached vector, else ``None``."""
    return getattr(vector, "stats", None)


def clear_extend_cache(database: Optional[Database] = None) -> None:
    """Drop cached extend maps (benchmarks / memory-pressure hook)."""
    if database is not None:
        cache = _CACHES.get(database)
        if cache is not None:
            cache.clear()
        return
    for cache in _CACHES.values():
        cache.clear()


def cache_info(database: Database) -> Dict[str, int]:
    """Hit/miss/size counters for one database's extend cache."""
    cache = _cache_for(database)
    return {"hits": cache.hits, "misses": cache.misses, "size": len(cache)}
