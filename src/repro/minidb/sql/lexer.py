"""Hand-written SQL tokenizer.

Produces a flat list of :class:`Token` with 1-based line/column positions so
syntax errors point at the offending character.  Keywords are recognised
case-insensitively and carried with type ``KEYWORD``; identifiers keep their
original spelling.  Double-quoted identifiers are supported for names that
collide with keywords.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.errors import SQLSyntaxError

KEYWORDS = {
    "SELECT", "DISTINCT", "FROM", "WHERE", "GROUP", "BY", "HAVING", "ORDER",
    "ASC", "DESC", "LIMIT", "OFFSET", "AS", "JOIN", "INNER", "LEFT", "RIGHT",
    "OUTER", "CROSS", "ON", "AND", "OR", "NOT", "IN", "IS", "NULL", "LIKE",
    "ILIKE", "BETWEEN", "CASE", "WHEN", "THEN", "ELSE", "END", "UNION", "ALL",
    "INSERT", "INTO", "VALUES", "UPDATE", "SET", "DELETE", "CREATE", "TABLE",
    "INDEX", "DROP", "PRIMARY", "KEY", "UNIQUE", "FOREIGN", "REFERENCES",
    "USING", "TRUE", "FALSE", "INTEGER", "INT", "FLOAT", "REAL", "TEXT",
    "VARCHAR", "BOOLEAN", "DATE", "EXISTS", "IF", "VIEW", "EXPLAIN",
}

_PUNCT = {
    "(", ")", ",", ".", ";", "*", "+", "-", "/", "%",
    "=", "<", ">", "<=", ">=", "<>", "!=", "||", "?",
}


@dataclass(frozen=True)
class Token:
    type: str  # KEYWORD | IDENT | NUMBER | STRING | PUNCT | EOF
    value: str
    line: int
    column: int

    def matches(self, keyword: str) -> bool:
        return self.type == "KEYWORD" and self.value == keyword.upper()


class _Scanner:
    def __init__(self, text: str) -> None:
        self.text = text
        self.position = 0
        self.line = 1
        self.column = 1

    def peek(self, offset: int = 0) -> str:
        index = self.position + offset
        return self.text[index] if index < len(self.text) else ""

    def advance(self) -> str:
        char = self.text[self.position]
        self.position += 1
        if char == "\n":
            self.line += 1
            self.column = 1
        else:
            self.column += 1
        return char

    def error(self, message: str) -> SQLSyntaxError:
        return SQLSyntaxError(f"line {self.line}, col {self.column}: {message}")


def tokenize(text: str) -> List[Token]:
    """Tokenize SQL text; raises :class:`SQLSyntaxError` on bad input."""
    scanner = _Scanner(text)
    tokens: List[Token] = []
    while scanner.position < len(scanner.text):
        char = scanner.peek()
        if char in " \t\r\n":
            scanner.advance()
            continue
        if char == "-" and scanner.peek(1) == "-":
            while scanner.position < len(scanner.text) and scanner.peek() != "\n":
                scanner.advance()
            continue
        if char == "/" and scanner.peek(1) == "*":
            _skip_block_comment(scanner)
            continue
        line, column = scanner.line, scanner.column
        if char == "'":
            tokens.append(Token("STRING", _read_string(scanner), line, column))
            continue
        if char == '"':
            tokens.append(
                Token("IDENT", _read_quoted_identifier(scanner), line, column)
            )
            continue
        if char.isdigit() or (char == "." and scanner.peek(1).isdigit()):
            tokens.append(Token("NUMBER", _read_number(scanner), line, column))
            continue
        if char.isalpha() or char == "_":
            word = _read_word(scanner)
            upper = word.upper()
            if upper in KEYWORDS:
                tokens.append(Token("KEYWORD", upper, line, column))
            else:
                tokens.append(Token("IDENT", word, line, column))
            continue
        two = char + scanner.peek(1)
        if len(two) == 2 and two in _PUNCT:
            scanner.advance()
            scanner.advance()
            tokens.append(Token("PUNCT", two, line, column))
            continue
        if char in _PUNCT:
            scanner.advance()
            tokens.append(Token("PUNCT", char, line, column))
            continue
        raise scanner.error(f"unexpected character {char!r}")
    tokens.append(Token("EOF", "", scanner.line, scanner.column))
    return tokens


def _skip_block_comment(scanner: _Scanner) -> None:
    start_line, start_column = scanner.line, scanner.column
    scanner.advance()
    scanner.advance()
    while scanner.position < len(scanner.text):
        if scanner.peek() == "*" and scanner.peek(1) == "/":
            scanner.advance()
            scanner.advance()
            return
        scanner.advance()
    raise SQLSyntaxError(
        f"line {start_line}, col {start_column}: unterminated block comment"
    )


def _read_string(scanner: _Scanner) -> str:
    scanner.advance()  # opening quote
    parts: List[str] = []
    while True:
        if scanner.position >= len(scanner.text):
            raise scanner.error("unterminated string literal")
        char = scanner.advance()
        if char == "'":
            if scanner.peek() == "'":  # escaped quote
                scanner.advance()
                parts.append("'")
                continue
            return "".join(parts)
        parts.append(char)


def _read_quoted_identifier(scanner: _Scanner) -> str:
    scanner.advance()  # opening quote
    parts: List[str] = []
    while True:
        if scanner.position >= len(scanner.text):
            raise scanner.error("unterminated quoted identifier")
        char = scanner.advance()
        if char == '"':
            return "".join(parts)
        parts.append(char)


def _read_number(scanner: _Scanner) -> str:
    parts: List[str] = []
    saw_dot = False
    saw_exp = False
    while scanner.position < len(scanner.text):
        char = scanner.peek()
        if char.isdigit():
            parts.append(scanner.advance())
        elif char == "." and not saw_dot and not saw_exp:
            saw_dot = True
            parts.append(scanner.advance())
        elif char in "eE" and not saw_exp and parts and parts[-1].isdigit():
            saw_exp = True
            parts.append(scanner.advance())
            if scanner.peek() in "+-":
                parts.append(scanner.advance())
        else:
            break
    text = "".join(parts)
    if text.endswith((".", "e", "E", "+", "-")):
        raise scanner.error(f"malformed number {text!r}")
    return text


def _read_word(scanner: _Scanner) -> str:
    parts: List[str] = []
    while scanner.position < len(scanner.text):
        char = scanner.peek()
        if char.isalnum() or char == "_":
            parts.append(scanner.advance())
        else:
            break
    return "".join(parts)
