"""SQL front end: lexer, AST, and recursive-descent parser.

The dialect is the subset a conventional mid-2000s DBMS application uses —
exactly the target surface the FlexRecs compiler emits (SELECT with joins,
grouping, ordering, limits, set operations, DML, and DDL with constraints).
"""

from repro.minidb.sql.ast import (
    CreateIndexStatement,
    CreateTableStatement,
    DeleteStatement,
    DropIndexStatement,
    DropTableStatement,
    InsertStatement,
    JoinClause,
    OrderItem,
    SelectItem,
    SelectStatement,
    SubqueryRef,
    TableRef,
    UnionStatement,
    UpdateStatement,
)
from repro.minidb.sql.lexer import Token, tokenize
from repro.minidb.sql.parser import parse_expression, parse_statement, parse_script

__all__ = [
    "CreateIndexStatement",
    "CreateTableStatement",
    "DeleteStatement",
    "DropIndexStatement",
    "DropTableStatement",
    "InsertStatement",
    "JoinClause",
    "OrderItem",
    "SelectItem",
    "SelectStatement",
    "SubqueryRef",
    "TableRef",
    "UnionStatement",
    "UpdateStatement",
    "Token",
    "tokenize",
    "parse_expression",
    "parse_statement",
    "parse_script",
]
