"""Statement-level AST nodes produced by the SQL parser.

Scalar expressions reuse :mod:`repro.minidb.expressions`; this module only
adds the statement shells (SELECT/INSERT/UPDATE/DELETE/DDL) and clause
containers.  Every node can render itself back to SQL (``to_sql``), which
the FlexRecs compiler tests use to check round-tripping.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple, Union

from repro.minidb.expressions import Expression
from repro.minidb.schema import ForeignKey
from repro.minidb.types import DataType


@dataclass
class SelectItem:
    """One select-list entry: an expression, ``*``, or ``alias.*``."""

    expression: Optional[Expression]  # None for star items
    alias: Optional[str] = None
    star_qualifier: Optional[str] = None  # set for alias.*; "" for bare *

    @property
    def is_star(self) -> bool:
        return self.expression is None

    def to_sql(self) -> str:
        if self.is_star:
            if self.star_qualifier:
                return f"{self.star_qualifier}.*"
            return "*"
        text = self.expression.to_sql()
        if self.alias:
            text += f" AS {self.alias}"
        return text


@dataclass
class TableRef:
    """A base-table reference with optional alias."""

    name: str
    alias: Optional[str] = None

    @property
    def binding(self) -> str:
        return self.alias or self.name

    def to_sql(self) -> str:
        if self.alias:
            return f"{self.name} AS {self.alias}"
        return self.name


@dataclass
class SubqueryRef:
    """A parenthesised SELECT in FROM, always aliased."""

    query: "SelectStatement"
    alias: str

    @property
    def binding(self) -> str:
        return self.alias

    def to_sql(self) -> str:
        return f"({self.query.to_sql()}) AS {self.alias}"


FromItem = Union[TableRef, SubqueryRef]


@dataclass
class JoinClause:
    """One JOIN ... ON ... attached to the leading FROM item."""

    join_type: str  # INNER | LEFT | CROSS
    table: FromItem
    condition: Optional[Expression]  # None only for CROSS

    def to_sql(self) -> str:
        if self.join_type == "CROSS":
            return f"CROSS JOIN {self.table.to_sql()}"
        text = f"{self.join_type} JOIN {self.table.to_sql()}"
        if self.condition is not None:
            text += f" ON {self.condition.to_sql()}"
        return text


@dataclass
class OrderItem:
    expression: Expression
    descending: bool = False

    def to_sql(self) -> str:
        return self.expression.to_sql() + (" DESC" if self.descending else " ASC")


@dataclass
class AggregateCall:
    """A parsed aggregate invocation inside a select list or HAVING.

    ``argument`` is None for COUNT(*).  The parser replaces aggregate calls
    in expressions with :class:`AggregateRef` placeholders referencing these.
    """

    name: str
    argument: Optional[Expression]
    distinct: bool = False

    def to_sql(self) -> str:
        inner = "*" if self.argument is None else self.argument.to_sql()
        if self.distinct:
            inner = "DISTINCT " + inner
        return f"{self.name.upper()}({inner})"


class AggregateRef(Expression):
    """Placeholder expression resolving to a computed aggregate value.

    The executor binds ``__agg_<index>`` keys into the environment after
    accumulation, letting post-aggregation expressions (e.g. HAVING
    ``COUNT(*) > 2`` or ``AVG(x) + 1``) evaluate uniformly.
    """

    def __init__(self, index: int, call: AggregateCall) -> None:
        self.index = index
        self.call = call

    @property
    def key(self) -> str:
        return f"__agg_{self.index}"

    def evaluate(self, env):
        return env[self.key]

    def compile(self):
        key = self.key
        return lambda env: env[key]

    def to_sql(self) -> str:
        return self.call.to_sql()

    def _collect_columns(self, out) -> None:
        if self.call.argument is not None:
            self.call.argument._collect_columns(out)


@dataclass
class SelectStatement:
    items: List[SelectItem]
    from_item: Optional[FromItem]
    joins: List[JoinClause] = field(default_factory=list)
    where: Optional[Expression] = None
    group_by: List[Expression] = field(default_factory=list)
    having: Optional[Expression] = None
    order_by: List[OrderItem] = field(default_factory=list)
    limit: Optional[int] = None
    offset: Optional[int] = None
    distinct: bool = False
    aggregates: List[AggregateCall] = field(default_factory=list)
    #: index of this statement's first ``?`` placeholder.  Parameters are
    #: numbered left-to-right across the whole parsed statement, so a
    #: UNION arm's parameters start where the previous arm's ended; the
    #: plan cache keys on (canonical SQL, parameter_base) because the same
    #: text carries different parameter numbers at different bases.
    parameter_base: int = 0

    def to_sql(self) -> str:
        parts = ["SELECT"]
        if self.distinct:
            parts.append("DISTINCT")
        parts.append(", ".join(item.to_sql() for item in self.items))
        if self.from_item is not None:
            parts.append("FROM " + self.from_item.to_sql())
        for join in self.joins:
            parts.append(join.to_sql())
        if self.where is not None:
            parts.append("WHERE " + self.where.to_sql())
        if self.group_by:
            parts.append(
                "GROUP BY " + ", ".join(expr.to_sql() for expr in self.group_by)
            )
        if self.having is not None:
            parts.append("HAVING " + self.having.to_sql())
        if self.order_by:
            parts.append(
                "ORDER BY " + ", ".join(item.to_sql() for item in self.order_by)
            )
        if self.limit is not None:
            parts.append(f"LIMIT {self.limit}")
        if self.offset is not None:
            parts.append(f"OFFSET {self.offset}")
        return " ".join(parts)


@dataclass
class UnionStatement:
    """UNION / UNION ALL of two or more selects."""

    parts: List[SelectStatement]
    all: bool = False
    order_by: List[OrderItem] = field(default_factory=list)
    limit: Optional[int] = None

    def to_sql(self) -> str:
        joiner = " UNION ALL " if self.all else " UNION "
        text = joiner.join(part.to_sql() for part in self.parts)
        if self.order_by:
            text += " ORDER BY " + ", ".join(item.to_sql() for item in self.order_by)
        if self.limit is not None:
            text += f" LIMIT {self.limit}"
        return text


@dataclass
class InsertStatement:
    """INSERT ... VALUES (rows) or INSERT ... SELECT (select not None)."""

    table: str
    columns: Optional[List[str]]
    rows: List[List[Expression]] = field(default_factory=list)
    select: Optional["SelectStatement"] = None

    def to_sql(self) -> str:
        columns = f" ({', '.join(self.columns)})" if self.columns else ""
        if self.select is not None:
            return f"INSERT INTO {self.table}{columns} {self.select.to_sql()}"
        rows = ", ".join(
            "(" + ", ".join(value.to_sql() for value in row) + ")"
            for row in self.rows
        )
        return f"INSERT INTO {self.table}{columns} VALUES {rows}"


@dataclass
class UpdateStatement:
    table: str
    assignments: List[Tuple[str, Expression]]
    where: Optional[Expression] = None

    def to_sql(self) -> str:
        sets = ", ".join(
            f"{column} = {value.to_sql()}" for column, value in self.assignments
        )
        text = f"UPDATE {self.table} SET {sets}"
        if self.where is not None:
            text += " WHERE " + self.where.to_sql()
        return text


@dataclass
class DeleteStatement:
    table: str
    where: Optional[Expression] = None

    def to_sql(self) -> str:
        text = f"DELETE FROM {self.table}"
        if self.where is not None:
            text += " WHERE " + self.where.to_sql()
        return text


@dataclass
class ColumnDef:
    name: str
    dtype: DataType
    not_null: bool = False
    primary_key: bool = False  # inline PRIMARY KEY marker


@dataclass
class CreateTableStatement:
    name: str
    columns: List[ColumnDef]
    primary_key: Tuple[str, ...] = ()
    unique_keys: Tuple[Tuple[str, ...], ...] = ()
    foreign_keys: Tuple[ForeignKey, ...] = ()
    if_not_exists: bool = False

    def to_sql(self) -> str:
        pieces = []
        for column in self.columns:
            text = f"{column.name} {column.dtype.value}"
            if column.primary_key:
                text += " PRIMARY KEY"
            elif column.not_null:
                text += " NOT NULL"
            pieces.append(text)
        if self.primary_key:
            pieces.append(f"PRIMARY KEY ({', '.join(self.primary_key)})")
        for key in self.unique_keys:
            pieces.append(f"UNIQUE ({', '.join(key)})")
        for fk in self.foreign_keys:
            pieces.append(
                f"FOREIGN KEY ({', '.join(fk.columns)}) REFERENCES "
                f"{fk.ref_table} ({', '.join(fk.ref_columns)})"
            )
        clause = "IF NOT EXISTS " if self.if_not_exists else ""
        return f"CREATE TABLE {clause}{self.name} ({', '.join(pieces)})"


@dataclass
class CreateIndexStatement:
    name: str
    table: str
    columns: Tuple[str, ...]
    kind: str = "hash"  # hash | sorted

    def to_sql(self) -> str:
        return (
            f"CREATE INDEX {self.name} ON {self.table} "
            f"({', '.join(self.columns)}) USING {self.kind}"
        )


@dataclass
class DropTableStatement:
    name: str
    if_exists: bool = False

    def to_sql(self) -> str:
        clause = "IF EXISTS " if self.if_exists else ""
        return f"DROP TABLE {clause}{self.name}"


@dataclass
class DropIndexStatement:
    name: str

    def to_sql(self) -> str:
        return f"DROP INDEX {self.name}"


@dataclass
class CreateViewStatement:
    """CREATE VIEW name AS <select>: a named, unmaterialized query."""

    name: str
    query: "SelectStatement"

    def to_sql(self) -> str:
        return f"CREATE VIEW {self.name} AS {self.query.to_sql()}"


@dataclass
class DropViewStatement:
    name: str
    if_exists: bool = False

    def to_sql(self) -> str:
        clause = "IF EXISTS " if self.if_exists else ""
        return f"DROP VIEW {clause}{self.name}"


@dataclass
class ExplainStatement:
    """EXPLAIN [ANALYZE] <select>: renders the (possibly cached) plan.

    With ``analyze`` the query is actually executed and every plan node
    is annotated with rows-in/rows-out and wall time.
    """

    query: "SelectStatement"
    analyze: bool = False

    def to_sql(self) -> str:
        keyword = "EXPLAIN ANALYZE" if self.analyze else "EXPLAIN"
        return f"{keyword} {self.query.to_sql()}"


Statement = Union[
    SelectStatement,
    UnionStatement,
    InsertStatement,
    UpdateStatement,
    DeleteStatement,
    CreateTableStatement,
    CreateIndexStatement,
    CreateViewStatement,
    DropTableStatement,
    DropIndexStatement,
    DropViewStatement,
    ExplainStatement,
]
