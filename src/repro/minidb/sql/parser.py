"""Recursive-descent parser for the minidb SQL dialect.

Entry points:

* :func:`parse_statement` — one statement (trailing ``;`` optional).
* :func:`parse_script` — a ``;``-separated list of statements.
* :func:`parse_expression` — a standalone scalar expression (used by tests
  and by FlexRecs when accepting predicate strings from strategy authors).

Aggregate calls found while parsing a SELECT are hoisted into the
statement's ``aggregates`` list and replaced in expression trees by
:class:`~repro.minidb.sql.ast.AggregateRef` placeholders, so the executor
computes each aggregate once per group and post-aggregation expressions
evaluate uniformly.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.errors import SQLSyntaxError
from repro.minidb.expressions import (
    Between,
    BinaryOp,
    Case,
    ColumnRef,
    ExistsSubquery,
    Expression,
    FunctionCall,
    InList,
    InSubquery,
    IsNull,
    Like,
    Literal,
    Parameter,
    UnaryOp,
)
from repro.minidb.schema import ForeignKey
from repro.minidb.sql.ast import (
    AggregateCall,
    AggregateRef,
    ColumnDef,
    CreateIndexStatement,
    CreateTableStatement,
    CreateViewStatement,
    DeleteStatement,
    DropIndexStatement,
    DropTableStatement,
    DropViewStatement,
    ExplainStatement,
    FromItem,
    InsertStatement,
    JoinClause,
    OrderItem,
    SelectItem,
    SelectStatement,
    Statement,
    SubqueryRef,
    TableRef,
    UnionStatement,
    UpdateStatement,
)
from repro.minidb.sql.lexer import Token, tokenize
from repro.minidb.types import DataType

_AGGREGATE_NAMES = {"count", "sum", "avg", "min", "max", "stddev", "group_concat"}

# Keywords that may double as identifiers (column/alias names).
_NONRESERVED = {
    "INTEGER", "INT", "FLOAT", "REAL", "TEXT", "VARCHAR", "BOOLEAN", "DATE",
}

_TYPE_KEYWORDS = {
    "INTEGER": DataType.INTEGER,
    "INT": DataType.INTEGER,
    "FLOAT": DataType.FLOAT,
    "REAL": DataType.FLOAT,
    "TEXT": DataType.TEXT,
    "VARCHAR": DataType.TEXT,
    "BOOLEAN": DataType.BOOLEAN,
    "DATE": DataType.DATE,
}


class _Parser:
    def __init__(self, tokens: List[Token]) -> None:
        self.tokens = tokens
        self.position = 0
        # Aggregate collection context; None outside SELECT scopes.
        self._aggregate_sink: Optional[List[AggregateCall]] = None
        # ``?`` placeholders seen so far, numbered left-to-right.
        self._parameters = 0

    # -- token helpers -----------------------------------------------------

    def peek(self, offset: int = 0) -> Token:
        index = min(self.position + offset, len(self.tokens) - 1)
        return self.tokens[index]

    def advance(self) -> Token:
        token = self.tokens[self.position]
        if token.type != "EOF":
            self.position += 1
        return token

    def error(self, message: str) -> SQLSyntaxError:
        token = self.peek()
        where = f"line {token.line}, col {token.column}"
        shown = token.value or "<end of input>"
        return SQLSyntaxError(f"{where}: {message} (near {shown!r})")

    def accept_keyword(self, *keywords: str) -> Optional[Token]:
        token = self.peek()
        if token.type == "KEYWORD" and token.value in {k.upper() for k in keywords}:
            return self.advance()
        return None

    def expect_keyword(self, keyword: str) -> Token:
        token = self.accept_keyword(keyword)
        if token is None:
            raise self.error(f"expected {keyword.upper()}")
        return token

    def accept_punct(self, value: str) -> Optional[Token]:
        token = self.peek()
        if token.type == "PUNCT" and token.value == value:
            return self.advance()
        return None

    def expect_punct(self, value: str) -> Token:
        token = self.accept_punct(value)
        if token is None:
            raise self.error(f"expected {value!r}")
        return token

    def expect_identifier(self, what: str = "identifier") -> str:
        token = self.peek()
        if token.type == "IDENT":
            return self.advance().value
        # Type keywords are non-reserved: the paper's Comments relation has
        # columns named Text, Date, Year — allow them as plain identifiers.
        if token.type == "KEYWORD" and token.value in _NONRESERVED:
            # The lexer uppercases keywords; names are case-insensitive, so
            # normalize keyword-identifiers to lowercase for predictability.
            return self.advance().value.lower()
        raise self.error(f"expected {what}")

    # -- statements -----------------------------------------------------------

    def parse_statement(self) -> Statement:
        self._parameters = 0
        statement = self._parse_statement_inner()
        # Statement nodes are plain dataclasses; the placeholder count is
        # carried as an extra attribute for prepared-statement validation.
        statement.parameter_count = self._parameters
        return statement

    def _parse_statement_inner(self) -> Statement:
        token = self.peek()
        if token.matches("EXPLAIN"):
            self.advance()
            # ANALYZE is deliberately not a reserved keyword (it stays
            # usable as an identifier); recognize it positionally here.
            analyze = False
            following = self.peek()
            if following.type == "IDENT" and following.value.upper() == "ANALYZE":
                self.advance()
                analyze = True
            query = self.parse_select_or_union()
            if not isinstance(query, SelectStatement):
                raise self.error("EXPLAIN supports only SELECT statements")
            return ExplainStatement(query=query, analyze=analyze)
        if token.matches("SELECT") or (
            token.type == "PUNCT" and token.value == "("
        ):
            return self.parse_select_or_union()
        if token.matches("INSERT"):
            return self.parse_insert()
        if token.matches("UPDATE"):
            return self.parse_update()
        if token.matches("DELETE"):
            return self.parse_delete()
        if token.matches("CREATE"):
            if self.peek(1).matches("TABLE"):
                return self.parse_create_table()
            if self.peek(1).matches("INDEX"):
                return self.parse_create_index()
            if self.peek(1).matches("VIEW"):
                return self.parse_create_view()
            raise self.error("expected TABLE, INDEX, or VIEW after CREATE")
        if token.matches("DROP"):
            if self.peek(1).matches("TABLE"):
                return self.parse_drop_table()
            if self.peek(1).matches("INDEX"):
                return self.parse_drop_index()
            if self.peek(1).matches("VIEW"):
                return self.parse_drop_view()
            raise self.error("expected TABLE, INDEX, or VIEW after DROP")
        raise self.error("expected a statement")

    def parse_select_or_union(self) -> Statement:
        parts = [self.parse_select_core()]
        is_union = False
        union_all = False
        while self.accept_keyword("UNION"):
            is_union = True
            union_all = bool(self.accept_keyword("ALL")) or union_all
            parts.append(self.parse_select_core())
        if not is_union:
            select = parts[0]
            self._parse_trailing_clauses(select)
            return select
        union = UnionStatement(parts=parts, all=union_all)
        if self.accept_keyword("ORDER"):
            self.expect_keyword("BY")
            union.order_by = self.parse_order_items()
        if self.accept_keyword("LIMIT"):
            union.limit = self.parse_int_literal()
        return union

    def parse_select_core(self) -> SelectStatement:
        parameter_base = self._parameters
        if self.accept_punct("("):
            select = self.parse_select_core()
            self.expect_punct(")")
            return select
        self.expect_keyword("SELECT")
        outer_sink = self._aggregate_sink
        sink: List[AggregateCall] = []
        self._aggregate_sink = sink
        try:
            distinct = bool(self.accept_keyword("DISTINCT"))
            items = [self.parse_select_item()]
            while self.accept_punct(","):
                items.append(self.parse_select_item())
            from_item: Optional[FromItem] = None
            joins: List[JoinClause] = []
            where = None
            group_by: List[Expression] = []
            having = None
            if self.accept_keyword("FROM"):
                from_item = self.parse_from_item()
                joins = self.parse_joins()
            if self.accept_keyword("WHERE"):
                # Aggregates are illegal in WHERE.
                saved = self._aggregate_sink
                self._aggregate_sink = None
                try:
                    where = self.parse_expression()
                finally:
                    self._aggregate_sink = saved
            if self.accept_keyword("GROUP"):
                self.expect_keyword("BY")
                saved = self._aggregate_sink
                self._aggregate_sink = None
                try:
                    group_by.append(self.parse_expression())
                    while self.accept_punct(","):
                        group_by.append(self.parse_expression())
                finally:
                    self._aggregate_sink = saved
            if self.accept_keyword("HAVING"):
                having = self.parse_expression()
            return SelectStatement(
                items=items,
                from_item=from_item,
                joins=joins,
                where=where,
                group_by=group_by,
                having=having,
                distinct=distinct,
                aggregates=sink,
                parameter_base=parameter_base,
            )
        finally:
            self._aggregate_sink = outer_sink

    def _parse_trailing_clauses(self, select: SelectStatement) -> None:
        if self.accept_keyword("ORDER"):
            self.expect_keyword("BY")
            outer_sink = self._aggregate_sink
            self._aggregate_sink = select.aggregates
            try:
                select.order_by = self.parse_order_items()
            finally:
                self._aggregate_sink = outer_sink
        if self.accept_keyword("LIMIT"):
            select.limit = self.parse_int_literal()
        if self.accept_keyword("OFFSET"):
            select.offset = self.parse_int_literal()

    def parse_order_items(self) -> List[OrderItem]:
        items = [self.parse_order_item()]
        while self.accept_punct(","):
            items.append(self.parse_order_item())
        return items

    def parse_order_item(self) -> OrderItem:
        expression = self.parse_expression()
        descending = False
        if self.accept_keyword("DESC"):
            descending = True
        else:
            self.accept_keyword("ASC")
        return OrderItem(expression=expression, descending=descending)

    def parse_int_literal(self) -> int:
        token = self.peek()
        if token.type != "NUMBER" or "." in token.value:
            raise self.error("expected integer literal")
        self.advance()
        return int(token.value)

    def parse_select_item(self) -> SelectItem:
        token = self.peek()
        if token.type == "PUNCT" and token.value == "*":
            self.advance()
            return SelectItem(expression=None, star_qualifier="")
        if (
            token.type == "IDENT"
            and self.peek(1).type == "PUNCT"
            and self.peek(1).value == "."
            and self.peek(2).type == "PUNCT"
            and self.peek(2).value == "*"
        ):
            qualifier = self.advance().value
            self.advance()
            self.advance()
            return SelectItem(expression=None, star_qualifier=qualifier)
        expression = self.parse_expression()
        alias = None
        if self.accept_keyword("AS"):
            alias = self.expect_identifier("alias")
        elif self.peek().type == "IDENT":
            alias = self.advance().value
        return SelectItem(expression=expression, alias=alias)

    def parse_from_item(self) -> FromItem:
        if self.accept_punct("("):
            saved = self._aggregate_sink
            self._aggregate_sink = None
            try:
                query = self.parse_select_core()
                self._parse_trailing_clauses(query)
            finally:
                self._aggregate_sink = saved
            self.expect_punct(")")
            self.accept_keyword("AS")
            alias = self.expect_identifier("subquery alias")
            return SubqueryRef(query=query, alias=alias)
        name = self.expect_identifier("table name")
        alias = None
        if self.accept_keyword("AS"):
            alias = self.expect_identifier("alias")
        elif self.peek().type == "IDENT":
            alias = self.advance().value
        return TableRef(name=name, alias=alias)

    def parse_joins(self) -> List[JoinClause]:
        joins: List[JoinClause] = []
        while True:
            join_type = None
            if self.accept_keyword("CROSS"):
                self.expect_keyword("JOIN")
                join_type = "CROSS"
            elif self.accept_keyword("INNER"):
                self.expect_keyword("JOIN")
                join_type = "INNER"
            elif self.accept_keyword("LEFT"):
                self.accept_keyword("OUTER")
                self.expect_keyword("JOIN")
                join_type = "LEFT"
            elif self.accept_keyword("JOIN"):
                join_type = "INNER"
            else:
                break
            table = self.parse_from_item()
            condition = None
            if join_type != "CROSS":
                self.expect_keyword("ON")
                saved = self._aggregate_sink
                self._aggregate_sink = None
                try:
                    condition = self.parse_expression()
                finally:
                    self._aggregate_sink = saved
            joins.append(
                JoinClause(join_type=join_type, table=table, condition=condition)
            )
        return joins

    # -- DML ----------------------------------------------------------------

    def parse_insert(self) -> InsertStatement:
        self.expect_keyword("INSERT")
        self.expect_keyword("INTO")
        table = self.expect_identifier("table name")
        columns = None
        if self.accept_punct("("):
            columns = [self.expect_identifier("column name")]
            while self.accept_punct(","):
                columns.append(self.expect_identifier("column name"))
            self.expect_punct(")")
        if self.peek().matches("SELECT"):
            select = self.parse_select_core()
            self._parse_trailing_clauses(select)
            return InsertStatement(table=table, columns=columns, select=select)
        self.expect_keyword("VALUES")
        rows = [self.parse_value_row()]
        while self.accept_punct(","):
            rows.append(self.parse_value_row())
        return InsertStatement(table=table, columns=columns, rows=rows)

    def parse_value_row(self) -> List[Expression]:
        self.expect_punct("(")
        values = [self.parse_expression()]
        while self.accept_punct(","):
            values.append(self.parse_expression())
        self.expect_punct(")")
        return values

    def parse_update(self) -> UpdateStatement:
        self.expect_keyword("UPDATE")
        table = self.expect_identifier("table name")
        self.expect_keyword("SET")
        assignments: List[Tuple[str, Expression]] = []
        while True:
            column = self.expect_identifier("column name")
            self.expect_punct("=")
            assignments.append((column, self.parse_expression()))
            if not self.accept_punct(","):
                break
        where = None
        if self.accept_keyword("WHERE"):
            where = self.parse_expression()
        return UpdateStatement(table=table, assignments=assignments, where=where)

    def parse_delete(self) -> DeleteStatement:
        self.expect_keyword("DELETE")
        self.expect_keyword("FROM")
        table = self.expect_identifier("table name")
        where = None
        if self.accept_keyword("WHERE"):
            where = self.parse_expression()
        return DeleteStatement(table=table, where=where)

    # -- DDL --------------------------------------------------------------

    def parse_create_table(self) -> CreateTableStatement:
        self.expect_keyword("CREATE")
        self.expect_keyword("TABLE")
        if_not_exists = False
        if self.accept_keyword("IF"):
            self.expect_keyword("NOT")
            self.expect_keyword("EXISTS")
            if_not_exists = True
        name = self.expect_identifier("table name")
        self.expect_punct("(")
        columns: List[ColumnDef] = []
        primary_key: Tuple[str, ...] = ()
        unique_keys: List[Tuple[str, ...]] = []
        foreign_keys: List[ForeignKey] = []
        while True:
            token = self.peek()
            if token.matches("PRIMARY"):
                self.advance()
                self.expect_keyword("KEY")
                if primary_key:
                    raise self.error("duplicate PRIMARY KEY clause")
                primary_key = tuple(self.parse_name_list())
            elif token.matches("UNIQUE"):
                self.advance()
                unique_keys.append(tuple(self.parse_name_list()))
            elif token.matches("FOREIGN"):
                self.advance()
                self.expect_keyword("KEY")
                local = tuple(self.parse_name_list())
                self.expect_keyword("REFERENCES")
                ref_table = self.expect_identifier("referenced table")
                ref_columns = tuple(self.parse_name_list())
                foreign_keys.append(
                    ForeignKey(
                        columns=local, ref_table=ref_table, ref_columns=ref_columns
                    )
                )
            else:
                columns.append(self.parse_column_def())
            if not self.accept_punct(","):
                break
        self.expect_punct(")")
        inline_pks = [c.name for c in columns if c.primary_key]
        if inline_pks:
            if primary_key:
                raise self.error("both inline and table-level PRIMARY KEY given")
            primary_key = tuple(inline_pks)
        return CreateTableStatement(
            name=name,
            columns=columns,
            primary_key=primary_key,
            unique_keys=tuple(unique_keys),
            foreign_keys=tuple(foreign_keys),
            if_not_exists=if_not_exists,
        )

    def parse_name_list(self) -> List[str]:
        self.expect_punct("(")
        names = [self.expect_identifier("column name")]
        while self.accept_punct(","):
            names.append(self.expect_identifier("column name"))
        self.expect_punct(")")
        return names

    def parse_column_def(self) -> ColumnDef:
        name = self.expect_identifier("column name")
        token = self.peek()
        if token.type != "KEYWORD" or token.value not in _TYPE_KEYWORDS:
            raise self.error("expected a column type")
        dtype = _TYPE_KEYWORDS[self.advance().value]
        # VARCHAR(100)-style length annotations are accepted and ignored.
        if self.accept_punct("("):
            self.parse_int_literal()
            self.expect_punct(")")
        not_null = False
        primary_key = False
        while True:
            if self.accept_keyword("NOT"):
                self.expect_keyword("NULL")
                not_null = True
            elif self.accept_keyword("PRIMARY"):
                self.expect_keyword("KEY")
                primary_key = True
            else:
                break
        return ColumnDef(
            name=name, dtype=dtype, not_null=not_null, primary_key=primary_key
        )

    def parse_create_index(self) -> CreateIndexStatement:
        self.expect_keyword("CREATE")
        self.expect_keyword("INDEX")
        name = self.expect_identifier("index name")
        self.expect_keyword("ON")
        table = self.expect_identifier("table name")
        columns = tuple(self.parse_name_list())
        kind = "hash"
        if self.accept_keyword("USING"):
            kind = self.expect_identifier("index kind").lower()
        return CreateIndexStatement(name=name, table=table, columns=columns, kind=kind)

    def parse_create_view(self) -> CreateViewStatement:
        self.expect_keyword("CREATE")
        self.expect_keyword("VIEW")
        name = self.expect_identifier("view name")
        self.expect_keyword("AS")
        query = self.parse_select_core()
        self._parse_trailing_clauses(query)
        return CreateViewStatement(name=name, query=query)

    def parse_drop_view(self) -> DropViewStatement:
        self.expect_keyword("DROP")
        self.expect_keyword("VIEW")
        if_exists = False
        if self.accept_keyword("IF"):
            self.expect_keyword("EXISTS")
            if_exists = True
        return DropViewStatement(
            name=self.expect_identifier("view name"), if_exists=if_exists
        )

    def parse_drop_table(self) -> DropTableStatement:
        self.expect_keyword("DROP")
        self.expect_keyword("TABLE")
        if_exists = False
        if self.accept_keyword("IF"):
            self.expect_keyword("EXISTS")
            if_exists = True
        return DropTableStatement(
            name=self.expect_identifier("table name"), if_exists=if_exists
        )

    def parse_drop_index(self) -> DropIndexStatement:
        self.expect_keyword("DROP")
        self.expect_keyword("INDEX")
        return DropIndexStatement(name=self.expect_identifier("index name"))

    # -- expressions -----------------------------------------------------

    def parse_expression(self) -> Expression:
        return self.parse_or()

    def parse_or(self) -> Expression:
        left = self.parse_and()
        while self.accept_keyword("OR"):
            left = BinaryOp("OR", left, self.parse_and())
        return left

    def parse_and(self) -> Expression:
        left = self.parse_not()
        while self.accept_keyword("AND"):
            left = BinaryOp("AND", left, self.parse_not())
        return left

    def parse_not(self) -> Expression:
        if self.accept_keyword("NOT"):
            return UnaryOp("NOT", self.parse_not())
        return self.parse_predicate()

    def parse_predicate(self) -> Expression:
        left = self.parse_additive()
        token = self.peek()
        if token.type == "PUNCT" and token.value in ("=", "<>", "!=", "<", "<=", ">", ">="):
            operator = self.advance().value
            return BinaryOp(operator, left, self.parse_additive())
        if token.matches("IS"):
            self.advance()
            negated = bool(self.accept_keyword("NOT"))
            self.expect_keyword("NULL")
            return IsNull(left, negated=negated)
        negated = False
        if token.matches("NOT"):
            following = self.peek(1)
            if following.matches("IN") or following.matches("LIKE") or \
                    following.matches("ILIKE") or following.matches("BETWEEN"):
                self.advance()
                negated = True
                token = self.peek()
        if token.matches("IN"):
            self.advance()
            self.expect_punct("(")
            if self.peek().matches("SELECT"):
                before = self._parameters
                query = self._parse_subselect()
                self.expect_punct(")")
                subquery = InSubquery(left, query, negated=negated)
                subquery.has_parameters = self._parameters > before
                return subquery
            items = [self.parse_expression()]
            while self.accept_punct(","):
                items.append(self.parse_expression())
            self.expect_punct(")")
            return InList(left, items, negated=negated)
        if token.matches("LIKE") or token.matches("ILIKE"):
            case_insensitive = token.value == "ILIKE"
            self.advance()
            pattern = self.parse_additive()
            return Like(
                left, pattern, negated=negated, case_insensitive=case_insensitive
            )
        if token.matches("BETWEEN"):
            self.advance()
            low = self.parse_additive()
            self.expect_keyword("AND")
            high = self.parse_additive()
            return Between(left, low, high, negated=negated)
        return left

    def parse_additive(self) -> Expression:
        left = self.parse_multiplicative()
        while True:
            token = self.peek()
            if token.type == "PUNCT" and token.value in ("+", "-", "||"):
                operator = self.advance().value
                left = BinaryOp(operator, left, self.parse_multiplicative())
            else:
                return left

    def parse_multiplicative(self) -> Expression:
        left = self.parse_unary()
        while True:
            token = self.peek()
            if token.type == "PUNCT" and token.value in ("*", "/", "%"):
                operator = self.advance().value
                left = BinaryOp(operator, left, self.parse_unary())
            else:
                return left

    def parse_unary(self) -> Expression:
        if self.accept_punct("-"):
            return UnaryOp("-", self.parse_unary())
        if self.accept_punct("+"):
            return self.parse_unary()
        return self.parse_primary()

    def parse_primary(self) -> Expression:
        token = self.peek()
        if token.type == "NUMBER":
            self.advance()
            if "." in token.value or "e" in token.value or "E" in token.value:
                return Literal(float(token.value))
            return Literal(int(token.value))
        if token.type == "STRING":
            self.advance()
            return Literal(token.value)
        if token.matches("NULL"):
            self.advance()
            return Literal(None)
        if token.matches("TRUE"):
            self.advance()
            return Literal(True)
        if token.matches("FALSE"):
            self.advance()
            return Literal(False)
        if token.matches("DATE") and self.peek(1).type == "STRING":
            self.advance()
            literal = self.advance()
            from repro.minidb.types import parse_date

            return Literal(parse_date(literal.value))
        if token.matches("CASE"):
            return self.parse_case()
        if token.matches("EXISTS"):
            self.advance()
            self.expect_punct("(")
            before = self._parameters
            query = self._parse_subselect()
            self.expect_punct(")")
            subquery = ExistsSubquery(query)
            subquery.has_parameters = self._parameters > before
            return subquery
        if token.type == "PUNCT" and token.value == "?":
            self.advance()
            parameter = Parameter(self._parameters)
            self._parameters += 1
            return parameter
        if token.type == "PUNCT" and token.value == "(":
            self.advance()
            inner = self.parse_expression()
            self.expect_punct(")")
            return inner
        if token.type == "IDENT" or (
            token.type == "KEYWORD" and token.value in _NONRESERVED
        ):
            return self.parse_identifier_expression()
        raise self.error("expected an expression")

    def _parse_subselect(self):
        """A SELECT used inside an expression (IN/EXISTS subquery)."""
        saved = self._aggregate_sink
        self._aggregate_sink = None
        try:
            query = self.parse_select_core()
            self._parse_trailing_clauses(query)
        finally:
            self._aggregate_sink = saved
        return query

    def parse_case(self) -> Expression:
        self.expect_keyword("CASE")
        branches = []
        while self.accept_keyword("WHEN"):
            condition = self.parse_expression()
            self.expect_keyword("THEN")
            value = self.parse_expression()
            branches.append((condition, value))
        if not branches:
            raise self.error("CASE requires at least one WHEN branch")
        default = None
        if self.accept_keyword("ELSE"):
            default = self.parse_expression()
        self.expect_keyword("END")
        return Case(branches, default)

    def parse_identifier_expression(self) -> Expression:
        name = self.advance().value
        token = self.peek()
        if token.type == "PUNCT" and token.value == "(":
            return self.parse_call(name)
        if token.type == "PUNCT" and token.value == ".":
            self.advance()
            column = self.expect_identifier("column name")
            return ColumnRef(column=column, qualifier=name)
        return ColumnRef(column=name)

    def parse_call(self, name: str) -> Expression:
        self.expect_punct("(")
        lowered = name.lower()
        if lowered in _AGGREGATE_NAMES:
            if self._aggregate_sink is None:
                raise self.error(
                    f"aggregate {name.upper()} is not allowed in this clause"
                )
            distinct = bool(self.accept_keyword("DISTINCT"))
            if self.accept_punct("*"):
                if lowered != "count":
                    raise self.error("only COUNT accepts *")
                argument: Optional[Expression] = None
            else:
                argument = self.parse_expression()
            self.expect_punct(")")
            call = AggregateCall(name=lowered, argument=argument, distinct=distinct)
            self._aggregate_sink.append(call)
            return AggregateRef(len(self._aggregate_sink) - 1, call)
        arguments: List[Expression] = []
        if not self.accept_punct(")"):
            arguments.append(self.parse_expression())
            while self.accept_punct(","):
                arguments.append(self.parse_expression())
            self.expect_punct(")")
        return FunctionCall(name, arguments)


def parse_statement(text: str) -> Statement:
    """Parse exactly one SQL statement."""
    parser = _Parser(tokenize(text))
    statement = parser.parse_statement()
    parser.accept_punct(";")
    if parser.peek().type != "EOF":
        raise parser.error("unexpected trailing input")
    return statement


def parse_script(text: str) -> List[Statement]:
    """Parse a ``;``-separated sequence of statements."""
    parser = _Parser(tokenize(text))
    statements: List[Statement] = []
    while parser.peek().type != "EOF":
        statements.append(parser.parse_statement())
        if not parser.accept_punct(";"):
            break
    if parser.peek().type != "EOF":
        raise parser.error("unexpected trailing input")
    return statements


def parse_expression(text: str) -> Expression:
    """Parse a standalone scalar expression (no aggregates)."""
    parser = _Parser(tokenize(text))
    expression = parser.parse_expression()
    if parser.peek().type != "EOF":
        raise parser.error("unexpected trailing input")
    return expression
