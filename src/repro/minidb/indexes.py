"""Secondary index structures.

Two flavours:

* :class:`HashIndex` — equality lookups, dict of key → set of rowids.
* :class:`SortedIndex` — range lookups over a sorted key list, maintained
  with ``bisect``; supports ``>=, >, <=, <`` scans and prefix ranges.

Keys are tuples (one element per indexed column).  NULL-containing keys are
indexed too — SQL predicates never match them (three-valued logic filters
them out at evaluation), but the index must still track them for deletes.
"""

from __future__ import annotations

import bisect
from typing import Any, Dict, Iterator, List, Optional, Set, Tuple

from repro.minidb.types import sort_key

Key = Tuple[Any, ...]


class HashIndex:
    """Equality index: key tuple → set of rowids."""

    kind = "hash"

    def __init__(self) -> None:
        self._buckets: Dict[Key, Set[int]] = {}

    def insert(self, key: Key, rowid: int) -> None:
        self._buckets.setdefault(key, set()).add(rowid)

    def delete(self, key: Key, rowid: int) -> None:
        bucket = self._buckets.get(key)
        if bucket is not None:
            bucket.discard(rowid)
            if not bucket:
                del self._buckets[key]

    def find(self, key: Key) -> Iterator[int]:
        yield from sorted(self._buckets.get(key, ()))

    def clear(self) -> None:
        self._buckets.clear()

    def __len__(self) -> int:
        return sum(len(bucket) for bucket in self._buckets.values())

    def distinct_keys(self) -> int:
        return len(self._buckets)


class SortedIndex:
    """Ordered index supporting range scans.

    Entries are kept as a sorted list of ``(orderable_key, key, rowid)``
    where ``orderable_key`` maps NULLs below every value via
    :func:`repro.minidb.types.sort_key` applied elementwise.
    """

    kind = "sorted"

    def __init__(self) -> None:
        self._entries: List[Tuple[Tuple, Key, int]] = []

    @staticmethod
    def _orderable(key: Key) -> Tuple:
        return tuple(sort_key(part) for part in key)

    def insert(self, key: Key, rowid: int) -> None:
        entry = (self._orderable(key), key, rowid)
        bisect.insort(self._entries, entry)

    def delete(self, key: Key, rowid: int) -> None:
        entry = (self._orderable(key), key, rowid)
        position = bisect.bisect_left(self._entries, entry)
        if position < len(self._entries) and self._entries[position] == entry:
            del self._entries[position]

    def find(self, key: Key) -> Iterator[int]:
        orderable = self._orderable(key)
        position = bisect.bisect_left(self._entries, (orderable,))
        while position < len(self._entries):
            entry_orderable, _entry_key, rowid = self._entries[position]
            if entry_orderable != orderable:
                break
            yield rowid
            position += 1

    def range(
        self,
        low: Optional[Key] = None,
        high: Optional[Key] = None,
        low_inclusive: bool = True,
        high_inclusive: bool = True,
    ) -> Iterator[int]:
        """Rowids with low <= key <= high (bounds optional/exclusive)."""
        if low is None:
            start = 0
        else:
            low_orderable = self._orderable(low)
            if low_inclusive:
                start = bisect.bisect_left(self._entries, (low_orderable,))
            else:
                start = bisect.bisect_right(
                    self._entries, (low_orderable, low, float("inf"))
                )
                # bisect_right with an inf rowid sentinel lands after all
                # entries whose orderable key equals low_orderable.
        for position in range(start, len(self._entries)):
            entry_orderable, entry_key, rowid = self._entries[position]
            if high is not None:
                high_orderable = self._orderable(high)
                if high_inclusive:
                    if entry_orderable > high_orderable:
                        break
                else:
                    if entry_orderable >= high_orderable:
                        break
            if low is not None and not low_inclusive:
                if entry_orderable == self._orderable(low):
                    continue
            # SQL comparisons never match NULL: range scans (used for
            # WHERE col < / > bounds) must skip NULL-keyed entries, which
            # sort below every value and would otherwise slip under an
            # upper bound with no lower bound.
            if any(part is None for part in entry_key):
                continue
            yield rowid

    def min_key(self) -> Optional[Key]:
        return self._entries[0][1] if self._entries else None

    def max_key(self) -> Optional[Key]:
        return self._entries[-1][1] if self._entries else None

    def clear(self) -> None:
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)


def create_index(kind: str):
    """Factory used by the catalog's CREATE INDEX path."""
    if kind == "hash":
        return HashIndex()
    if kind == "sorted":
        return SortedIndex()
    raise ValueError(f"unknown index kind {kind!r}")
