"""The Database catalog: tables, indexes, functions, transactions.

:class:`Database` is the single entry point applications use:

>>> db = Database()
>>> db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, name TEXT)")
>>> db.execute("INSERT INTO t VALUES (1, 'intro')")
1
>>> db.query("SELECT name FROM t WHERE id = 1").scalar()
'intro'

Foreign keys are enforced on INSERT (referenced row must exist) and on
DELETE (RESTRICT: a referenced row cannot be removed) unless
``enforce_foreign_keys`` is switched off for bulk loading.

Transactions are whole-database snapshots — ``begin`` / ``commit`` /
``rollback`` — adequate for a single-process engine and sufficient to give
CourseRank atomic multi-table updates (e.g. enroll + plan + points).
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import (
    IntegrityError,
    MiniDBError,
    SchemaError,
    TransactionError,
    UnknownTableError,
)
from repro.minidb.concurrency import RWLock
from repro.minidb.functions import FunctionRegistry
from repro.minidb.indexes import create_index
from repro.minidb.plancache import LRUCache, PreparedStatement
from repro.minidb.schema import Column, ForeignKey, TableSchema
from repro.minidb.table import Row, Table


class IndexInfo:
    """Catalog record for one secondary index."""

    def __init__(self, name: str, table: str, columns: Tuple[str, ...], kind: str) -> None:
        self.name = name
        self.table = table
        self.columns = columns
        self.kind = kind
        self.index = create_index(kind)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"IndexInfo({self.name!r} ON {self.table}{self.columns} {self.kind})"


class Database:
    """An in-memory relational database with a SQL interface."""

    def __init__(self, enforce_foreign_keys: bool = True) -> None:
        self._tables: Dict[str, Table] = {}
        self._indexes: Dict[str, IndexInfo] = {}
        self._views: Dict[str, Any] = {}  # name -> SelectStatement
        self.functions = FunctionRegistry()
        self.enforce_foreign_keys = enforce_foreign_keys
        self._snapshot: Optional[Dict[str, Tuple[Dict[int, Row], int]]] = None
        # Executor is created lazily to avoid an import cycle.
        self._executor = None
        # Bumped on every DDL change (and rollback); cached plans whose
        # epoch no longer matches are transparently re-planned.
        self.schema_epoch = 0
        self._plan_cache = LRUCache(maxsize=256)
        # Readers-writer lock giving each statement a consistent view:
        # SELECTs share it, DML/DDL take it exclusively, and an open
        # transaction holds the write side from begin to commit/rollback
        # (transactions are therefore thread-affine).
        self.rwlock = RWLock()

    # -- table management ----------------------------------------------------

    def create_table(self, schema: TableSchema) -> Table:
        key = schema.name.lower()
        if key in self._tables:
            raise SchemaError(f"table {schema.name!r} already exists")
        if key in self._views:
            raise SchemaError(f"a view named {schema.name!r} already exists")
        for fk in schema.foreign_keys:
            referenced = self._tables.get(fk.ref_table.lower())
            if referenced is None:
                raise SchemaError(
                    f"foreign key references unknown table {fk.ref_table!r}"
                )
            ref_pk = tuple(name.lower() for name in referenced.schema.primary_key)
            if tuple(name.lower() for name in fk.ref_columns) != ref_pk:
                raise SchemaError(
                    f"foreign key must reference the primary key of "
                    f"{fk.ref_table!r} ({referenced.schema.primary_key})"
                )
        table = _CatalogTable(schema, self)
        self._tables[key] = table
        self.schema_epoch += 1
        return table

    def drop_table(self, name: str, if_exists: bool = False) -> None:
        key = name.lower()
        if key not in self._tables:
            if if_exists:
                return
            raise UnknownTableError(f"no such table {name!r}")
        # Refuse to orphan foreign keys that point here.
        for other in self._tables.values():
            if other.name.lower() == key:
                continue
            for fk in other.schema.foreign_keys:
                if fk.ref_table.lower() == key:
                    raise SchemaError(
                        f"cannot drop {name!r}: referenced by {other.name!r}"
                    )
        for view_name, statement in self._views.items():
            if self._statement_references(statement, key):
                raise SchemaError(
                    f"cannot drop {name!r}: referenced by view {view_name!r}"
                )
        for index_name in [
            info.name for info in self._indexes.values() if info.table.lower() == key
        ]:
            del self._indexes[index_name.lower()]
        del self._tables[key]
        self.schema_epoch += 1

    def table(self, name: str) -> Table:
        try:
            return self._tables[name.lower()]
        except KeyError:
            raise UnknownTableError(f"no such table {name!r}") from None

    def has_table(self, name: str) -> bool:
        return name.lower() in self._tables

    def table_names(self) -> List[str]:
        return [table.name for table in self._tables.values()]

    # -- view management ---------------------------------------------------

    def create_view(self, name: str, statement: Any) -> None:
        """Register a named, unmaterialized SELECT.

        The query is planned immediately so creation fails fast on
        unknown tables or columns.
        """
        key = name.lower()
        if key in self._tables:
            raise SchemaError(f"a table named {name!r} already exists")
        if key in self._views:
            raise SchemaError(f"view {name!r} already exists")
        from repro.minidb.planner import plan_select

        plan_select(self, statement)  # validates
        self._views[key] = statement
        self.schema_epoch += 1

    def drop_view(self, name: str, if_exists: bool = False) -> None:
        key = name.lower()
        if key not in self._views:
            if if_exists:
                return
            raise SchemaError(f"no such view {name!r}")
        del self._views[key]
        self.schema_epoch += 1

    def has_view(self, name: str) -> bool:
        return name.lower() in self._views

    def view(self, name: str) -> Any:
        try:
            return self._views[name.lower()]
        except KeyError:
            raise SchemaError(f"no such view {name!r}") from None

    def view_names(self) -> List[str]:
        return list(self._views)

    @staticmethod
    def _statement_references(statement: Any, table_key: str) -> bool:
        """Does a SELECT reference ``table_key`` in any FROM position?"""
        from repro.minidb.sql.ast import (
            SelectStatement,
            SubqueryRef,
            TableRef,
        )

        def walk(select: SelectStatement) -> bool:
            items = []
            if select.from_item is not None:
                items.append(select.from_item)
                items.extend(join.table for join in select.joins)
            for item in items:
                if isinstance(item, TableRef):
                    if item.name.lower() == table_key:
                        return True
                elif isinstance(item, SubqueryRef):
                    if walk(item.query):
                        return True
            return False

        return walk(statement)

    # -- index management ----------------------------------------------------

    def create_index(
        self, name: str, table_name: str, columns: Sequence[str], kind: str = "hash"
    ) -> IndexInfo:
        key = name.lower()
        if key in self._indexes:
            raise SchemaError(f"index {name!r} already exists")
        if kind not in ("hash", "sorted"):
            raise SchemaError(f"unknown index kind {kind!r}")
        table = self.table(table_name)
        for column in columns:
            table.schema.column_position(column)  # raises if unknown
        info = IndexInfo(name, table.name, tuple(columns), kind)
        table.attach_index(key, info.index, columns)
        self._indexes[key] = info
        self.schema_epoch += 1
        return info

    def drop_index(self, name: str) -> None:
        key = name.lower()
        info = self._indexes.pop(key, None)
        if info is None:
            raise SchemaError(f"no such index {name!r}")
        self.table(info.table).detach_index(key)
        self.schema_epoch += 1

    def indexes_on(self, table_name: str) -> List[IndexInfo]:
        key = table_name.lower()
        return [info for info in self._indexes.values() if info.table.lower() == key]

    # -- foreign keys ---------------------------------------------------------

    def check_insert_fk(self, table: Table, row: Row) -> None:
        if not self.enforce_foreign_keys:
            return
        for fk in table.schema.foreign_keys:
            key = tuple(
                row[table.schema.column_position(column)] for column in fk.columns
            )
            if any(part is None for part in key):
                continue  # NULL FK values are permitted (MATCH SIMPLE)
            referenced = self.table(fk.ref_table)
            if not referenced.contains_pk(key):
                raise IntegrityError(
                    f"foreign key violation: {table.name}{fk.columns} = {key!r} "
                    f"has no match in {fk.ref_table}"
                )

    def check_delete_fk(self, table: Table, row: Row) -> None:
        if not self.enforce_foreign_keys:
            return
        pk_positions = tuple(
            table.schema.column_position(name) for name in table.schema.primary_key
        )
        if not pk_positions:
            return
        pk_value = tuple(row[position] for position in pk_positions)
        for other in self._tables.values():
            for fk in other.schema.foreign_keys:
                if fk.ref_table.lower() != table.name.lower():
                    continue
                positions = tuple(
                    other.schema.column_position(column) for column in fk.columns
                )
                for candidate in other.rows():
                    if tuple(candidate[p] for p in positions) == pk_value:
                        raise IntegrityError(
                            f"cannot delete from {table.name}: row {pk_value!r} "
                            f"is referenced by {other.name}"
                        )

    # -- SQL interface -----------------------------------------------------

    def _get_executor(self):
        if self._executor is None:
            from repro.minidb.executor import Executor

            self._executor = Executor(self)
        return self._executor

    def execute(self, sql: str, params: Optional[Sequence[Any]] = None) -> Any:
        """Execute one statement.

        Returns a :class:`~repro.minidb.executor.ResultSet` for queries, an
        affected-row count for DML, and ``None`` for DDL.  ``params`` binds
        ``?`` placeholders left-to-right.
        """
        return self._get_executor().execute_sql(sql, params=params)

    def query(self, sql: str, params: Optional[Sequence[Any]] = None):
        """Execute a SELECT/UNION and return its ResultSet."""
        result = self.execute(sql, params=params)
        from repro.minidb.executor import ResultSet

        if not isinstance(result, ResultSet):
            raise MiniDBError("query() requires a SELECT statement")
        return result

    def prepare(self, sql: str) -> PreparedStatement:
        """Parse (and for SELECTs, plan) once; execute many times.

        The handle binds ``?`` parameters per execution and routes through
        this database's plan cache, so repeated executions skip the lexer,
        parser, and planner entirely.
        """
        return PreparedStatement(self, sql)

    def clear_plan_cache(self) -> None:
        """Drop all cached query plans (testing / memory-pressure hook)."""
        self._plan_cache.clear()

    def execute_script(self, sql: str) -> List[Any]:
        """Execute a ``;``-separated script, returning per-statement results."""
        from repro.minidb.sql.parser import parse_script

        return [
            self._get_executor().execute_statement(statement)
            for statement in parse_script(sql)
        ]

    def explain(self, sql: str) -> str:
        """Render the physical plan chosen for a SELECT statement."""
        return self._get_executor().explain(sql)

    def profile(self, sql: str):
        """Legacy row-count profiling: run a SELECT, return (ResultSet,
        plan report annotated with per-operator row counts)."""
        return self._get_executor().profile(sql)

    def analyze(self, sql: str, params: Optional[Sequence[Any]] = None):
        """EXPLAIN ANALYZE: run a SELECT and return an
        :class:`~repro.minidb.executor.AnalyzeReport` — the result set
        plus the plan annotated with per-node rows-in/rows-out and wall
        time ([cached]/[compiled-expr] markers included)."""
        return self._get_executor().analyze(sql, params=params)

    # -- transactions --------------------------------------------------------

    @property
    def in_transaction(self) -> bool:
        return self._snapshot is not None

    def begin(self) -> None:
        # The whole transaction runs under the write lock (statements
        # inside re-enter it), so concurrent readers never observe a
        # half-applied multi-table update and rollback can restore the
        # snapshot without racing a scan.
        self.rwlock.acquire_write()
        if self._snapshot is not None:
            self.rwlock.release_write()
            raise TransactionError("transaction already in progress")
        self._snapshot = {
            name: (table.snapshot(), table.next_rowid)
            for name, table in self._tables.items()
        }
        self._view_snapshot = dict(self._views)

    def commit(self) -> None:
        if self._snapshot is None:
            raise TransactionError("no transaction in progress")
        self._snapshot = None
        self.rwlock.release_write()

    def rollback(self) -> None:
        if self._snapshot is None:
            raise TransactionError("no transaction in progress")
        for name, (rows, next_rowid) in self._snapshot.items():
            if name in self._tables:
                self._tables[name].restore(rows, next_rowid)
        # Tables created inside the transaction are dropped wholesale.
        for name in list(self._tables):
            if name not in self._snapshot:
                for index_name in [
                    info.name
                    for info in self._indexes.values()
                    if info.table.lower() == name
                ]:
                    del self._indexes[index_name.lower()]
                del self._tables[name]
        self._views = dict(getattr(self, "_view_snapshot", self._views))
        self._snapshot = None
        # Rollback may have undone DDL; invalidate all cached plans.
        self.schema_epoch += 1
        self.rwlock.release_write()

    def transaction(self) -> "_TransactionContext":
        """Context manager: commit on success, rollback on exception."""
        return _TransactionContext(self)

    # -- statistics -----------------------------------------------------------

    def stats(self) -> Dict[str, int]:
        """Row counts per table (used by the evaluation reports)."""
        return {table.name: len(table) for table in self._tables.values()}


class _CatalogTable(Table):
    """A Table wired to its catalog for foreign-key enforcement."""

    def __init__(self, schema: TableSchema, database: Database) -> None:
        super().__init__(schema)
        self._database = database

    def insert(self, values: Sequence[Any]) -> int:
        row = self._normalize(values)
        self._database.check_insert_fk(self, row)
        return super().insert(row)

    def delete_rowid(self, rowid: int) -> None:
        self._database.check_delete_fk(self, self.get(rowid))
        super().delete_rowid(rowid)

    def update_rowid(self, rowid: int, new_values: Sequence[Any]) -> None:
        new_row = self._normalize(new_values)
        self._database.check_insert_fk(self, new_row)
        old_row = self.get(rowid)
        if self.schema.primary_key:
            positions = tuple(
                self.schema.column_position(name)
                for name in self.schema.primary_key
            )
            old_pk = tuple(old_row[p] for p in positions)
            new_pk = tuple(new_row[p] for p in positions)
            if old_pk != new_pk:
                # Changing a referenced key would orphan referencing rows.
                self._database.check_delete_fk(self, old_row)
        super().update_rowid(rowid, new_row)


class _TransactionContext:
    def __init__(self, database: Database) -> None:
        self._database = database

    def __enter__(self) -> Database:
        self._database.begin()
        return self._database

    def __exit__(self, exc_type, exc, traceback) -> bool:
        if exc_type is None:
            self._database.commit()
        else:
            self._database.rollback()
        return False
