"""Scalar expression AST with SQL three-valued logic.

Expressions are shared by the SQL executor and the FlexRecs direct
evaluator.  An expression evaluates against an *environment*: a mapping
from column names (both qualified ``alias.column`` and unqualified
``column``) to values.  Unqualified names that are ambiguous across joined
inputs are bound to the :data:`AMBIGUOUS` sentinel by the executor, and
referencing one raises :class:`AmbiguousColumnError`.

Boolean results use Kleene logic: ``True`` / ``False`` / ``None`` (UNKNOWN).
``WHERE`` keeps a row only when the predicate is exactly ``True``.

The batch-vectorized kernel compiler (``repro.minidb.vector.kernels``)
mirrors these semantics operator by operator — evaluation order,
short-circuit structure, and error messages included — and reuses the
helpers here (``_compare``, ``_numeric_binop``, ``kleene_*``,
``_as_bool``, ``like_to_regex``, ``order_key``).  A semantic change in
this module must be reflected there; the testkit's six-config
differential sweep pins the equivalence.
"""

from __future__ import annotations

import datetime
import operator
import re
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import (
    AmbiguousColumnError,
    ExecutionError,
    UnknownColumnError,
)
from repro.minidb.types import format_value, sort_key


class _Ambiguous:
    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "<ambiguous>"


AMBIGUOUS = _Ambiguous()

Env = Dict[str, Any]


def _quote_string(text: str) -> str:
    return "'" + text.replace("'", "''") + "'"


class Expression:
    """Base class; subclasses implement ``evaluate`` and ``to_sql``."""

    def evaluate(self, env: Env) -> Any:
        raise NotImplementedError

    def compile(self) -> Callable[[Env], Any]:
        """Compile this tree into a single ``Env -> value`` closure.

        The planner calls this once per plan so per-row evaluation skips
        the recursive ``evaluate`` dispatch.  The default falls back to
        the bound ``evaluate`` method, so subclasses without a bespoke
        compilation stay correct.
        """
        return self.evaluate

    def is_boolean(self) -> bool:
        """True when evaluation can only yield True, False, or None.

        Lets logical operators compile without per-row ``_as_bool``
        coercion; subclasses with strictly three-valued results override.
        """
        return False

    def to_sql(self) -> str:
        raise NotImplementedError

    def columns_referenced(self) -> List[str]:
        """All column names (as written) referenced by this expression."""
        found: List[str] = []
        self._collect_columns(found)
        return found

    def _collect_columns(self, out: List[str]) -> None:
        pass

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}({self.to_sql()})"


class Literal(Expression):
    """A constant value (NULL, number, string, boolean, date)."""

    def __init__(self, value: Any) -> None:
        self.value = value

    def evaluate(self, env: Env) -> Any:
        return self.value

    def is_boolean(self) -> bool:
        return self.value is None or isinstance(self.value, bool)

    def compile(self) -> Callable[[Env], Any]:
        value = self.value
        return lambda env: value

    def to_sql(self) -> str:
        if self.value is None:
            return "NULL"
        if isinstance(self.value, bool):
            return "TRUE" if self.value else "FALSE"
        if isinstance(self.value, str):
            return _quote_string(self.value)
        if isinstance(self.value, datetime.date):
            return f"DATE {_quote_string(self.value.isoformat())}"
        return format_value(self.value)


class ColumnRef(Expression):
    """A reference to ``column`` or ``qualifier.column``."""

    def __init__(self, column: str, qualifier: Optional[str] = None) -> None:
        self.column = column
        self.qualifier = qualifier

    @property
    def key(self) -> str:
        if self.qualifier:
            return f"{self.qualifier.lower()}.{self.column.lower()}"
        return self.column.lower()

    def evaluate(self, env: Env) -> Any:
        key = self.key
        if key not in env:
            raise UnknownColumnError(f"unknown column {self.to_sql()!r}")
        value = env[key]
        if value is AMBIGUOUS:
            raise AmbiguousColumnError(
                f"column reference {self.to_sql()!r} is ambiguous"
            )
        return value

    def compile(self) -> Callable[[Env], Any]:
        key = self.key
        evaluate = self.evaluate

        def compiled(env: Env) -> Any:
            try:
                value = env[key]
            except KeyError:
                return evaluate(env)  # raises UnknownColumnError
            if value is AMBIGUOUS:
                return evaluate(env)  # raises AmbiguousColumnError
            return value

        return compiled

    def to_sql(self) -> str:
        if self.qualifier:
            return f"{self.qualifier}.{self.column}"
        return self.column

    def _collect_columns(self, out: List[str]) -> None:
        out.append(self.to_sql())


class Parameter(Expression):
    """A ``?`` placeholder bound at execution time.

    Parameters are numbered left-to-right by the parser and resolved
    through the environment's reserved ``"__params__"`` tuple, which
    :meth:`~repro.minidb.planner.QueryPlan.bind_parameters` refreshes on
    every execution so bindings never leak between runs.
    """

    def __init__(self, index: int) -> None:
        self.index = index

    def evaluate(self, env: Env) -> Any:
        params = env.get("__params__")
        if params is None or self.index >= len(params):
            raise ExecutionError(
                f"parameter ?{self.index + 1} is not bound; "
                "execute through a prepared statement with enough arguments"
            )
        return params[self.index]

    def compile(self) -> Callable[[Env], Any]:
        index = self.index
        evaluate = self.evaluate

        def compiled(env: Env) -> Any:
            params = env.get("__params__")
            if params is None or index >= len(params):
                return evaluate(env)  # raises ExecutionError
            return params[index]

        return compiled

    def to_sql(self) -> str:
        return "?"


def _is_null(value: Any) -> bool:
    return value is None


def _numeric_binop(op: str, left: Any, right: Any) -> Any:
    try:
        if op == "+":
            return left + right
        if op == "-":
            return left - right
        if op == "*":
            return left * right
        if op == "/":
            if right == 0:
                raise ExecutionError("division by zero")
            result = left / right
            return result
        if op == "%":
            if right == 0:
                raise ExecutionError("modulo by zero")
            return left % right
    except TypeError as exc:
        raise ExecutionError(
            f"cannot apply {op!r} to {left!r} and {right!r}"
        ) from exc
    raise ExecutionError(f"unknown arithmetic operator {op!r}")  # pragma: no cover


def _compare(op: str, left: Any, right: Any) -> Optional[bool]:
    """SQL comparison; NULL operand → UNKNOWN (None)."""
    if _is_null(left) or _is_null(right):
        return None
    try:
        if op == "=":
            return left == right
        if op in ("<>", "!="):
            return left != right
        if op == "<":
            return left < right
        if op == "<=":
            return left <= right
        if op == ">":
            return left > right
        if op == ">=":
            return left >= right
    except TypeError as exc:
        raise ExecutionError(
            f"cannot compare {left!r} with {right!r}"
        ) from exc
    raise ExecutionError(f"unknown comparison operator {op!r}")  # pragma: no cover


def kleene_and(left: Optional[bool], right: Optional[bool]) -> Optional[bool]:
    if left is False or right is False:
        return False
    if left is None or right is None:
        return None
    return True


def kleene_or(left: Optional[bool], right: Optional[bool]) -> Optional[bool]:
    if left is True or right is True:
        return True
    if left is None or right is None:
        return None
    return False


def kleene_not(value: Optional[bool]) -> Optional[bool]:
    if value is None:
        return None
    return not value


_ARITH = {"+", "-", "*", "/", "%"}
_COMPARE = {"=", "<>", "!=", "<", "<=", ">", ">="}

_COMPARE_FUNCS: Dict[str, Callable[[Any, Any], bool]] = {
    "=": operator.eq,
    "<>": operator.ne,
    "!=": operator.ne,
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
}


class BinaryOp(Expression):
    """Arithmetic, comparison, string concatenation (||), AND/OR."""

    def __init__(self, op: str, left: Expression, right: Expression) -> None:
        self.op = op.upper() if op.upper() in ("AND", "OR") else op
        self.left = left
        self.right = right

    def evaluate(self, env: Env) -> Any:
        if self.op == "AND":
            left = _as_bool(self.left.evaluate(env))
            # Short-circuit: FALSE AND x is FALSE without evaluating x.
            if left is False:
                return False
            return kleene_and(left, _as_bool(self.right.evaluate(env)))
        if self.op == "OR":
            left = _as_bool(self.left.evaluate(env))
            if left is True:
                return True
            return kleene_or(left, _as_bool(self.right.evaluate(env)))
        left = self.left.evaluate(env)
        right = self.right.evaluate(env)
        if self.op == "||":
            if _is_null(left) or _is_null(right):
                return None
            return str(left) + str(right)
        if self.op in _COMPARE:
            return _compare(self.op, left, right)
        if self.op in _ARITH:
            if _is_null(left) or _is_null(right):
                return None
            return _numeric_binop(self.op, left, right)
        raise ExecutionError(f"unknown binary operator {self.op!r}")

    def is_boolean(self) -> bool:
        return self.op in ("AND", "OR") or self.op in _COMPARE

    def compile(self) -> Callable[[Env], Any]:
        op = self.op
        left = self.left.compile()
        right = self.right.compile()
        strict = self.left.is_boolean() and self.right.is_boolean()
        if op == "AND":
            if strict:
                # Both operands provably yield True/False/None, so the
                # per-row _as_bool coercion and kleene table collapse to
                # identity checks.
                def compiled_and_strict(env: Env) -> Optional[bool]:
                    first = left(env)
                    if first is False:
                        return False
                    second = right(env)
                    if second is False:
                        return False
                    if first is None or second is None:
                        return None
                    return True

                return compiled_and_strict

            def compiled_and(env: Env) -> Optional[bool]:
                first = _as_bool(left(env))
                if first is False:
                    return False
                return kleene_and(first, _as_bool(right(env)))

            return compiled_and
        if op == "OR":
            if strict:

                def compiled_or_strict(env: Env) -> Optional[bool]:
                    first = left(env)
                    if first is True:
                        return True
                    second = right(env)
                    if second is True:
                        return True
                    if first is None or second is None:
                        return None
                    return False

                return compiled_or_strict

            def compiled_or(env: Env) -> Optional[bool]:
                first = _as_bool(left(env))
                if first is True:
                    return True
                return kleene_or(first, _as_bool(right(env)))

            return compiled_or
        if op == "||":

            def compiled_concat(env: Env) -> Optional[str]:
                lhs = left(env)
                rhs = right(env)
                if lhs is None or rhs is None:
                    return None
                return str(lhs) + str(rhs)

            return compiled_concat
        if op in _COMPARE:
            comparator = _COMPARE_FUNCS[op]

            def compiled_compare(env: Env) -> Optional[bool]:
                lhs = left(env)
                rhs = right(env)
                if lhs is None or rhs is None:
                    return None
                try:
                    return comparator(lhs, rhs)
                except TypeError as exc:
                    raise ExecutionError(
                        f"cannot compare {lhs!r} with {rhs!r}"
                    ) from exc

            return compiled_compare
        if op in _ARITH:

            def compiled_arith(env: Env) -> Any:
                lhs = left(env)
                rhs = right(env)
                if lhs is None or rhs is None:
                    return None
                return _numeric_binop(op, lhs, rhs)

            return compiled_arith
        return self.evaluate

    def to_sql(self) -> str:
        return f"({self.left.to_sql()} {self.op} {self.right.to_sql()})"

    def _collect_columns(self, out: List[str]) -> None:
        self.left._collect_columns(out)
        self.right._collect_columns(out)


def _as_bool(value: Any) -> Optional[bool]:
    if value is None or isinstance(value, bool):
        return value
    raise ExecutionError(f"expected boolean, got {value!r}")


class UnaryOp(Expression):
    """NOT and unary minus."""

    def __init__(self, op: str, operand: Expression) -> None:
        self.op = op.upper() if op.upper() == "NOT" else op
        self.operand = operand

    def evaluate(self, env: Env) -> Any:
        value = self.operand.evaluate(env)
        if self.op == "NOT":
            return kleene_not(_as_bool(value))
        if self.op == "-":
            if value is None:
                return None
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                raise ExecutionError(f"cannot negate {value!r}")
            return -value
        raise ExecutionError(f"unknown unary operator {self.op!r}")

    def is_boolean(self) -> bool:
        return self.op == "NOT"

    def compile(self) -> Callable[[Env], Any]:
        operand = self.operand.compile()
        if self.op == "NOT":
            return lambda env: kleene_not(_as_bool(operand(env)))
        if self.op == "-":

            def compiled_negate(env: Env) -> Any:
                value = operand(env)
                if value is None:
                    return None
                if not isinstance(value, (int, float)) or isinstance(value, bool):
                    raise ExecutionError(f"cannot negate {value!r}")
                return -value

            return compiled_negate
        return self.evaluate

    def to_sql(self) -> str:
        if self.op == "NOT":
            return f"(NOT {self.operand.to_sql()})"
        return f"(-{self.operand.to_sql()})"

    def _collect_columns(self, out: List[str]) -> None:
        self.operand._collect_columns(out)


class IsNull(Expression):
    """``expr IS NULL`` / ``expr IS NOT NULL`` (always two-valued)."""

    def __init__(self, operand: Expression, negated: bool = False) -> None:
        self.operand = operand
        self.negated = negated

    def evaluate(self, env: Env) -> bool:
        value = self.operand.evaluate(env)
        result = value is None
        return not result if self.negated else result

    def is_boolean(self) -> bool:
        return True

    def compile(self) -> Callable[[Env], bool]:
        if isinstance(self.operand, ColumnRef):
            # Fused column null-check: one closure call instead of two.
            key = self.operand.key
            fallback = self.operand.compile()
            if self.negated:

                def compiled_col_not_null(env: Env) -> bool:
                    value = env.get(key, AMBIGUOUS)
                    if value is AMBIGUOUS:
                        value = fallback(env)  # raises or resolves
                    return value is not None

                return compiled_col_not_null

            def compiled_col_null(env: Env) -> bool:
                value = env.get(key, AMBIGUOUS)
                if value is AMBIGUOUS:
                    value = fallback(env)  # raises or resolves
                return value is None

            return compiled_col_null
        operand = self.operand.compile()
        if self.negated:
            return lambda env: operand(env) is not None
        return lambda env: operand(env) is None

    def to_sql(self) -> str:
        keyword = "IS NOT NULL" if self.negated else "IS NULL"
        return f"({self.operand.to_sql()} {keyword})"

    def _collect_columns(self, out: List[str]) -> None:
        self.operand._collect_columns(out)


class InList(Expression):
    """``expr IN (v1, v2, ...)`` with SQL NULL semantics."""

    def __init__(
        self, operand: Expression, items: Sequence[Expression], negated: bool = False
    ) -> None:
        self.operand = operand
        self.items = list(items)
        self.negated = negated

    def is_boolean(self) -> bool:
        return True

    def evaluate(self, env: Env) -> Optional[bool]:
        # ``x IN ()`` is FALSE — not UNKNOWN — even when x is NULL. The
        # parser can't produce an empty list, but the planner's subquery
        # folding can (an IN (SELECT ...) whose subquery yields no rows).
        if not self.items:
            return self.negated
        value = self.operand.evaluate(env)
        if value is None:
            return None
        saw_null = False
        for item in self.items:
            candidate = item.evaluate(env)
            if candidate is None:
                saw_null = True
            elif candidate == value:
                return not self.negated
        if saw_null:
            return None
        return self.negated

    def compile(self) -> Callable[[Env], Optional[bool]]:
        operand = self.operand.compile()
        negated = self.negated
        if not self.items:
            # Empty folded subquery: constant FALSE/TRUE, NULL-immune.
            return lambda env: negated
        if all(isinstance(item, Literal) for item in self.items):
            # Planner-resolved IN (SELECT ...) lists land here: membership
            # becomes one hash probe instead of a per-item equality walk.
            values = [item.value for item in self.items]
            saw_null = any(value is None for value in values)
            non_null = [value for value in values if value is not None]
            try:
                lookup = set(non_null)
            except TypeError:  # unhashable literal; keep the linear scan
                lookup = None

            def compiled_literal(env: Env) -> Optional[bool]:
                value = operand(env)
                if value is None:
                    return None
                if lookup is not None:
                    try:
                        found = value in lookup
                    except TypeError:
                        found = any(candidate == value for candidate in non_null)
                else:
                    found = any(candidate == value for candidate in non_null)
                if found:
                    return not negated
                if saw_null:
                    return None
                return negated

            return compiled_literal
        items = [item.compile() for item in self.items]

        def compiled(env: Env) -> Optional[bool]:
            value = operand(env)
            if value is None:
                return None
            saw_null = False
            for item in items:
                candidate = item(env)
                if candidate is None:
                    saw_null = True
                elif candidate == value:
                    return not negated
            if saw_null:
                return None
            return negated

        return compiled

    def to_sql(self) -> str:
        keyword = "NOT IN" if self.negated else "IN"
        inner = ", ".join(item.to_sql() for item in self.items)
        return f"({self.operand.to_sql()} {keyword} ({inner}))"

    def _collect_columns(self, out: List[str]) -> None:
        self.operand._collect_columns(out)
        for item in self.items:
            item._collect_columns(out)


class Between(Expression):
    """``expr BETWEEN low AND high`` (inclusive)."""

    def __init__(
        self,
        operand: Expression,
        low: Expression,
        high: Expression,
        negated: bool = False,
    ) -> None:
        self.operand = operand
        self.low = low
        self.high = high
        self.negated = negated

    def is_boolean(self) -> bool:
        return True

    def evaluate(self, env: Env) -> Optional[bool]:
        value = self.operand.evaluate(env)
        low = self.low.evaluate(env)
        high = self.high.evaluate(env)
        result = kleene_and(_compare(">=", value, low), _compare("<=", value, high))
        return kleene_not(result) if self.negated else result

    def compile(self) -> Callable[[Env], Optional[bool]]:
        operand = self.operand.compile()
        low = self.low.compile()
        high = self.high.compile()
        negated = self.negated

        def compiled(env: Env) -> Optional[bool]:
            value = operand(env)
            result = kleene_and(
                _compare(">=", value, low(env)), _compare("<=", value, high(env))
            )
            return kleene_not(result) if negated else result

        return compiled

    def to_sql(self) -> str:
        keyword = "NOT BETWEEN" if self.negated else "BETWEEN"
        return (
            f"({self.operand.to_sql()} {keyword} "
            f"{self.low.to_sql()} AND {self.high.to_sql()})"
        )

    def _collect_columns(self, out: List[str]) -> None:
        self.operand._collect_columns(out)
        self.low._collect_columns(out)
        self.high._collect_columns(out)


def like_to_regex(pattern: str) -> "re.Pattern[str]":
    """Translate a SQL LIKE pattern (% and _) to an anchored regex."""
    parts = []
    for char in pattern:
        if char == "%":
            parts.append(".*")
        elif char == "_":
            parts.append(".")
        else:
            parts.append(re.escape(char))
    return re.compile("".join(parts) + r"\Z", re.DOTALL)


class Like(Expression):
    """``expr LIKE pattern`` — case-sensitive; ILIKE variant via flag."""

    def __init__(
        self,
        operand: Expression,
        pattern: Expression,
        negated: bool = False,
        case_insensitive: bool = False,
    ) -> None:
        self.operand = operand
        self.pattern = pattern
        self.negated = negated
        self.case_insensitive = case_insensitive
        self._cache: Dict[str, "re.Pattern[str]"] = {}

    def is_boolean(self) -> bool:
        return True

    def evaluate(self, env: Env) -> Optional[bool]:
        value = self.operand.evaluate(env)
        pattern = self.pattern.evaluate(env)
        if value is None or pattern is None:
            return None
        if not isinstance(value, str) or not isinstance(pattern, str):
            raise ExecutionError("LIKE requires text operands")
        if self.case_insensitive:
            value = value.lower()
            pattern = pattern.lower()
        regex = self._cache.get(pattern)
        if regex is None:
            regex = like_to_regex(pattern)
            self._cache[pattern] = regex
        matched = regex.match(value) is not None
        return not matched if self.negated else matched

    def compile(self) -> Callable[[Env], Optional[bool]]:
        pattern = self.pattern
        if not (isinstance(pattern, Literal) and isinstance(pattern.value, str)):
            return self.evaluate
        operand = self.operand.compile()
        negated = self.negated
        case_insensitive = self.case_insensitive
        text = pattern.value.lower() if case_insensitive else pattern.value
        regex = like_to_regex(text)

        def compiled(env: Env) -> Optional[bool]:
            value = operand(env)
            if value is None:
                return None
            if not isinstance(value, str):
                raise ExecutionError("LIKE requires text operands")
            if case_insensitive:
                value = value.lower()
            matched = regex.match(value) is not None
            return not matched if negated else matched

        return compiled

    def to_sql(self) -> str:
        operator = "ILIKE" if self.case_insensitive else "LIKE"
        if self.negated:
            operator = "NOT " + operator
        return f"({self.operand.to_sql()} {operator} {self.pattern.to_sql()})"

    def _collect_columns(self, out: List[str]) -> None:
        self.operand._collect_columns(out)
        self.pattern._collect_columns(out)


class Case(Expression):
    """Searched CASE: WHEN cond THEN value ... [ELSE value] END."""

    def __init__(
        self,
        branches: Sequence[Tuple[Expression, Expression]],
        default: Optional[Expression] = None,
    ) -> None:
        self.branches = list(branches)
        self.default = default

    def evaluate(self, env: Env) -> Any:
        for condition, value in self.branches:
            if _as_bool(condition.evaluate(env)) is True:
                return value.evaluate(env)
        if self.default is not None:
            return self.default.evaluate(env)
        return None

    def compile(self) -> Callable[[Env], Any]:
        branches = [
            (condition.compile(), value.compile())
            for condition, value in self.branches
        ]
        default = self.default.compile() if self.default is not None else None

        def compiled(env: Env) -> Any:
            for condition, value in branches:
                if _as_bool(condition(env)) is True:
                    return value(env)
            if default is not None:
                return default(env)
            return None

        return compiled

    def to_sql(self) -> str:
        parts = ["CASE"]
        for condition, value in self.branches:
            parts.append(f"WHEN {condition.to_sql()} THEN {value.to_sql()}")
        if self.default is not None:
            parts.append(f"ELSE {self.default.to_sql()}")
        parts.append("END")
        return "(" + " ".join(parts) + ")"

    def _collect_columns(self, out: List[str]) -> None:
        for condition, value in self.branches:
            condition._collect_columns(out)
            value._collect_columns(out)
        if self.default is not None:
            self.default._collect_columns(out)


class FunctionCall(Expression):
    """A scalar function call resolved against a function registry.

    The registry is injected at evaluation time through the environment's
    reserved ``"__functions__"`` key so the expression tree stays data-only.
    """

    def __init__(self, name: str, arguments: Sequence[Expression]) -> None:
        self.name = name.lower()
        self.arguments = list(arguments)

    def evaluate(self, env: Env) -> Any:
        registry = env.get("__functions__")
        if registry is None:
            raise ExecutionError(
                f"no function registry available for {self.name!r}"
            )
        function = registry.scalar(self.name)
        values = [argument.evaluate(env) for argument in self.arguments]
        return function(*values)

    def compile(self) -> Callable[[Env], Any]:
        name = self.name
        arguments = [argument.compile() for argument in self.arguments]

        def compiled(env: Env) -> Any:
            registry = env.get("__functions__")
            if registry is None:
                raise ExecutionError(
                    f"no function registry available for {name!r}"
                )
            function = registry.scalar(name)
            return function(*[argument(env) for argument in arguments])

        return compiled

    def to_sql(self) -> str:
        inner = ", ".join(argument.to_sql() for argument in self.arguments)
        return f"{self.name.upper()}({inner})"

    def _collect_columns(self, out: List[str]) -> None:
        for argument in self.arguments:
            argument._collect_columns(out)


class InSubquery(Expression):
    """``expr [NOT] IN (SELECT ...)`` — uncorrelated.

    The planner resolves the subquery once at plan time and substitutes
    an :class:`InList` of literals (see
    ``repro.minidb.planner._resolve_subqueries``); evaluating the raw
    node directly is an error, which keeps the expression layer free of
    database references.
    """

    #: set by the parser when the subquery text contains ``?`` placeholders;
    #: the planner rejects such subqueries (they are resolved at plan time,
    #: before any bindings exist).
    has_parameters = False

    def __init__(self, operand: Expression, query: Any, negated: bool = False) -> None:
        self.operand = operand
        self.query = query  # a SelectStatement (kept opaque here)
        self.negated = negated

    def is_boolean(self) -> bool:
        return True

    def evaluate(self, env: Env) -> Any:
        raise ExecutionError(
            "IN (SELECT ...) must be resolved by the planner before evaluation"
        )

    def to_sql(self) -> str:
        keyword = "NOT IN" if self.negated else "IN"
        return f"({self.operand.to_sql()} {keyword} ({self.query.to_sql()}))"

    def _collect_columns(self, out: List[str]) -> None:
        self.operand._collect_columns(out)


class ExistsSubquery(Expression):
    """``[NOT] EXISTS (SELECT ...)`` — uncorrelated, planner-resolved."""

    #: see :attr:`InSubquery.has_parameters`
    has_parameters = False

    def __init__(self, query: Any, negated: bool = False) -> None:
        self.query = query
        self.negated = negated

    def is_boolean(self) -> bool:
        return True

    def evaluate(self, env: Env) -> Any:
        raise ExecutionError(
            "EXISTS (SELECT ...) must be resolved by the planner "
            "before evaluation"
        )

    def to_sql(self) -> str:
        keyword = "NOT EXISTS" if self.negated else "EXISTS"
        return f"({keyword} ({self.query.to_sql()}))"


# -- helpers used by planner & FlexRecs -------------------------------------


def conjuncts(expression: Optional[Expression]) -> List[Expression]:
    """Split a predicate into its top-level AND-ed conjuncts."""
    if expression is None:
        return []
    if isinstance(expression, BinaryOp) and expression.op == "AND":
        return conjuncts(expression.left) + conjuncts(expression.right)
    return [expression]


def conjoin(expressions: Sequence[Expression]) -> Optional[Expression]:
    """Combine predicates with AND; None for an empty sequence."""
    result: Optional[Expression] = None
    for expression in expressions:
        result = (
            expression if result is None else BinaryOp("AND", result, expression)
        )
    return result


def order_key(values: Sequence[Any], descending: Sequence[bool]) -> Tuple:
    """Build a sort key honouring per-column direction with NULLs first."""
    parts = []
    for value, is_desc in zip(values, descending):
        key = sort_key(value)
        if is_desc:
            parts.append(_Reversed(key))
        else:
            parts.append(key)
    return tuple(parts)


class _Reversed:
    """Wrapper inverting comparison order (for DESC sort keys)."""

    __slots__ = ("inner",)

    def __init__(self, inner: Any) -> None:
        self.inner = inner

    def __lt__(self, other: "_Reversed") -> bool:
        return other.inner < self.inner

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _Reversed) and other.inner == self.inner

    def __hash__(self) -> int:  # pragma: no cover - not used as dict key
        return hash(self.inner)
