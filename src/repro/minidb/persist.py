"""Saving and loading a Database to/from a directory.

Layout::

    <directory>/
      schema.sql      -- CREATE TABLE / CREATE INDEX / CREATE VIEW script
      <table>.csv     -- one CSV per table, header row included
      manifest.json   -- written LAST: file sizes + version counters

Tables are reloaded in foreign-key dependency order so constraints hold
during the load.  The format is deliberately plain (SQL + CSV) so a
saved CourseRank instance is inspectable with standard tools — the same
"useful external data arrives as bulk files" posture as
:mod:`repro.minidb.csvio`.

Crash consistency: every file is written to a ``.tmp`` sibling and moved
into place with :func:`os.replace`, and ``manifest.json`` — which records
the byte size of every data file plus the database's ``schema_epoch``
and per-table version counters — is written last.  A crash mid-save
leaves either the previous manifest (now disagreeing with whatever
newer files did land) or no manifest at all; :func:`load_database`
refuses a directory whose manifest disagrees with the files on disk
instead of silently loading half a snapshot.  Directories saved before the manifest
existed load unchanged.
"""

from __future__ import annotations

import json
import os
import pathlib
from typing import Any, Dict, List, Set, Union

from repro.errors import MiniDBError, SchemaError
from repro.minidb.catalog import Database
from repro.minidb.csvio import dump_csv, load_csv
from repro.minidb.schema import TableSchema

MANIFEST_NAME = "manifest.json"
MANIFEST_FORMAT = 1


def render_create_table(schema: TableSchema) -> str:
    """The CREATE TABLE statement reproducing a TableSchema."""
    pieces: List[str] = []
    for column in schema.columns:
        text = f"{column.name} {column.dtype.value}"
        if not column.nullable and not schema.is_pk_column(column.name):
            text += " NOT NULL"
        pieces.append(text)
    if schema.primary_key:
        pieces.append(f"PRIMARY KEY ({', '.join(schema.primary_key)})")
    for key in schema.unique_keys:
        pieces.append(f"UNIQUE ({', '.join(key)})")
    for fk in schema.foreign_keys:
        pieces.append(
            f"FOREIGN KEY ({', '.join(fk.columns)}) REFERENCES "
            f"{fk.ref_table} ({', '.join(fk.ref_columns)})"
        )
    return f"CREATE TABLE {schema.name} ({', '.join(pieces)})"


def dependency_order(database: Database) -> List[str]:
    """Table names ordered so every FK target precedes its referrers."""
    names = database.table_names()
    dependencies: Dict[str, Set[str]] = {}
    for name in names:
        schema = database.table(name).schema
        dependencies[name.lower()] = {
            fk.ref_table.lower()
            for fk in schema.foreign_keys
            if fk.ref_table.lower() != name.lower()
        }
    ordered: List[str] = []
    emitted: Set[str] = set()
    remaining = {name.lower(): name for name in names}
    while remaining:
        progress = False
        for key in sorted(remaining):
            if dependencies[key] <= emitted:
                ordered.append(remaining.pop(key))
                emitted.add(key)
                progress = True
        if not progress:
            raise SchemaError(
                f"foreign-key cycle among tables: {sorted(remaining)}"
            )
    return ordered


def _write_atomic(path: pathlib.Path, text: str) -> int:
    """Write ``text`` via a ``.tmp`` sibling + ``os.replace``; return the
    byte size of the final file."""
    data = text.encode("utf-8")
    tmp = path.with_name(path.name + ".tmp")
    with tmp.open("wb") as handle:
        handle.write(data)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)
    return len(data)


def save_database(database: Database, directory: Union[str, pathlib.Path]) -> None:
    """Write the full database (schema + data + indexes + views).

    Every file lands atomically and ``manifest.json`` is written last, so
    a reader that validates the manifest never observes a torn snapshot.
    Stale files from a previous save of a different schema (dropped
    tables' CSVs, leftover ``.tmp`` files) are removed.
    """
    path = pathlib.Path(directory)
    path.mkdir(parents=True, exist_ok=True)
    statements: List[str] = []
    ordered = dependency_order(database)
    for name in ordered:
        statements.append(render_create_table(database.table(name).schema))
    for name in ordered:
        for info in database.indexes_on(name):
            statements.append(
                f"CREATE INDEX {info.name} ON {info.table} "
                f"({', '.join(info.columns)}) USING {info.kind}"
            )
    for view_name in database.view_names():
        statements.append(
            f"CREATE VIEW {view_name} AS {database.view(view_name).to_sql()}"
        )
    manifest: Dict[str, Any] = {
        "format": MANIFEST_FORMAT,
        "schema_epoch": database.schema_epoch,
        "files": {},
        "tables": {},
    }
    size = _write_atomic(path / "schema.sql", ";\n".join(statements) + ";\n")
    manifest["files"]["schema.sql"] = size
    for name in ordered:
        table = database.table(name)
        size = _write_atomic(path / f"{name}.csv", dump_csv(database, name))
        manifest["files"][f"{name}.csv"] = size
        manifest["tables"][name] = {
            "rows": len(table),
            "data_version": table.data_version,
            "indexed_version": table.indexed_version,
        }
    expected = set(manifest["files"]) | {MANIFEST_NAME}
    for entry in path.iterdir():
        if entry.name in expected:
            continue
        if entry.name.endswith(".tmp") or entry.suffix == ".csv":
            entry.unlink()
    _write_atomic(
        path / MANIFEST_NAME, json.dumps(manifest, indent=2) + "\n"
    )


def _validate_manifest(path: pathlib.Path) -> Dict[str, Any]:
    """Load and check ``manifest.json``; raises MiniDBError on a torn or
    tampered snapshot.  Returns an empty dict for legacy directories."""
    manifest_file = path / MANIFEST_NAME
    if not manifest_file.exists():
        return {}
    try:
        manifest = json.loads(manifest_file.read_text())
    except ValueError as exc:
        raise MiniDBError(
            f"corrupt {MANIFEST_NAME} in {path}: {exc}"
        ) from exc
    if manifest.get("format") != MANIFEST_FORMAT:
        raise MiniDBError(
            f"unsupported manifest format {manifest.get('format')!r} "
            f"in {path}"
        )
    for name, expected_size in manifest.get("files", {}).items():
        file_path = path / name
        if not file_path.exists():
            raise MiniDBError(
                f"incomplete snapshot in {path}: {name} listed in "
                f"{MANIFEST_NAME} but missing on disk"
            )
        actual = file_path.stat().st_size
        if actual != expected_size:
            raise MiniDBError(
                f"incomplete snapshot in {path}: {name} is {actual} "
                f"byte(s), manifest expects {expected_size} (partial "
                f"write or concurrent modification)"
            )
    return manifest


def load_database(
    directory: Union[str, pathlib.Path],
    enforce_foreign_keys: bool = True,
) -> Database:
    """Rebuild a Database saved by :func:`save_database`.

    When a manifest is present the snapshot is validated first (every
    listed file must exist with its recorded size) and the saved
    ``schema_epoch``/table version counters are fast-forwarded onto the
    rebuilt database, so caches keyed on those counters can never
    confuse the restored instance with a pre-save one.  Legacy
    directories without a manifest load exactly as before.
    """
    path = pathlib.Path(directory)
    schema_file = path / "schema.sql"
    if not schema_file.exists():
        raise MiniDBError(f"no schema.sql in {path}")
    manifest = _validate_manifest(path)
    database = Database(enforce_foreign_keys=enforce_foreign_keys)
    database.execute_script(schema_file.read_text())
    for name in dependency_order(database):
        csv_file = path / f"{name}.csv"
        if csv_file.exists():
            with csv_file.open() as handle:
                load_csv(database, name, handle)
    if manifest:
        database.schema_epoch = max(
            database.schema_epoch, int(manifest.get("schema_epoch", 0))
        )
        for name, info in manifest.get("tables", {}).items():
            try:
                table = database.table(name)
            except Exception:  # noqa: BLE001 - manifest may predate a drop
                continue
            table.fast_forward_versions(
                int(info.get("data_version", 0)),
                int(info.get("indexed_version", 0)),
            )
    return database
