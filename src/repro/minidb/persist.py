"""Saving and loading a Database to/from a directory.

Layout::

    <directory>/
      schema.sql      -- CREATE TABLE / CREATE INDEX / CREATE VIEW script
      <table>.csv     -- one CSV per table, header row included

Tables are reloaded in foreign-key dependency order so constraints hold
during the load.  The format is deliberately plain (SQL + CSV) so a
saved CourseRank instance is inspectable with standard tools — the same
"useful external data arrives as bulk files" posture as
:mod:`repro.minidb.csvio`.
"""

from __future__ import annotations

import pathlib
from typing import Dict, List, Set, Union

from repro.errors import MiniDBError, SchemaError
from repro.minidb.catalog import Database
from repro.minidb.csvio import dump_csv, load_csv
from repro.minidb.schema import TableSchema


def render_create_table(schema: TableSchema) -> str:
    """The CREATE TABLE statement reproducing a TableSchema."""
    pieces: List[str] = []
    for column in schema.columns:
        text = f"{column.name} {column.dtype.value}"
        if not column.nullable and not schema.is_pk_column(column.name):
            text += " NOT NULL"
        pieces.append(text)
    if schema.primary_key:
        pieces.append(f"PRIMARY KEY ({', '.join(schema.primary_key)})")
    for key in schema.unique_keys:
        pieces.append(f"UNIQUE ({', '.join(key)})")
    for fk in schema.foreign_keys:
        pieces.append(
            f"FOREIGN KEY ({', '.join(fk.columns)}) REFERENCES "
            f"{fk.ref_table} ({', '.join(fk.ref_columns)})"
        )
    return f"CREATE TABLE {schema.name} ({', '.join(pieces)})"


def dependency_order(database: Database) -> List[str]:
    """Table names ordered so every FK target precedes its referrers."""
    names = database.table_names()
    dependencies: Dict[str, Set[str]] = {}
    for name in names:
        schema = database.table(name).schema
        dependencies[name.lower()] = {
            fk.ref_table.lower()
            for fk in schema.foreign_keys
            if fk.ref_table.lower() != name.lower()
        }
    ordered: List[str] = []
    emitted: Set[str] = set()
    remaining = {name.lower(): name for name in names}
    while remaining:
        progress = False
        for key in sorted(remaining):
            if dependencies[key] <= emitted:
                ordered.append(remaining.pop(key))
                emitted.add(key)
                progress = True
        if not progress:
            raise SchemaError(
                f"foreign-key cycle among tables: {sorted(remaining)}"
            )
    return ordered


def save_database(database: Database, directory: Union[str, pathlib.Path]) -> None:
    """Write the full database (schema + data + indexes + views)."""
    path = pathlib.Path(directory)
    path.mkdir(parents=True, exist_ok=True)
    statements: List[str] = []
    ordered = dependency_order(database)
    for name in ordered:
        statements.append(render_create_table(database.table(name).schema))
    for name in ordered:
        for info in database.indexes_on(name):
            statements.append(
                f"CREATE INDEX {info.name} ON {info.table} "
                f"({', '.join(info.columns)}) USING {info.kind}"
            )
    for view_name in database.view_names():
        statements.append(
            f"CREATE VIEW {view_name} AS {database.view(view_name).to_sql()}"
        )
    (path / "schema.sql").write_text(";\n".join(statements) + ";\n")
    for name in ordered:
        (path / f"{name}.csv").write_text(dump_csv(database, name))


def load_database(
    directory: Union[str, pathlib.Path],
    enforce_foreign_keys: bool = True,
) -> Database:
    """Rebuild a Database saved by :func:`save_database`."""
    path = pathlib.Path(directory)
    schema_file = path / "schema.sql"
    if not schema_file.exists():
        raise MiniDBError(f"no schema.sql in {path}")
    database = Database(enforce_foreign_keys=enforce_foreign_keys)
    database.execute_script(schema_file.read_text())
    for name in dependency_order(database):
        csv_file = path / f"{name}.csv"
        if csv_file.exists():
            with csv_file.open() as handle:
                load_csv(database, name, handle)
    return database
