"""CSV import/export for minidb tables.

CourseRank's "official data" side arrives as bulk files (course catalogs,
schedules, grade distributions); this module is the ETL entry point the
paper's "It's the Data, Stupid" lesson calls for.  Values are parsed
according to the target schema's column types.
"""

from __future__ import annotations

import csv
import io
from typing import Any, Iterable, List, Optional, TextIO, Union

from repro.errors import SchemaError
from repro.minidb.catalog import Database
from repro.minidb.types import DataType, parse_date


def _parse_cell(text: str, dtype: DataType) -> Any:
    if text == "":
        return None
    if dtype is DataType.INTEGER:
        return int(text)
    if dtype is DataType.FLOAT:
        return float(text)
    if dtype is DataType.BOOLEAN:
        lowered = text.strip().lower()
        if lowered in ("true", "t", "1", "yes"):
            return True
        if lowered in ("false", "f", "0", "no"):
            return False
        raise SchemaError(f"cannot parse boolean from {text!r}")
    if dtype is DataType.DATE:
        return parse_date(text)
    return text


def load_csv(
    database: Database,
    table_name: str,
    source: Union[str, TextIO],
    has_header: bool = True,
) -> int:
    """Load CSV rows into an existing table; returns rows inserted.

    ``source`` is CSV text or an open file object.  With a header, columns
    are matched by name (any order, missing ones default to NULL); without
    one, cells must match the schema's column order exactly.
    """
    table = database.table(table_name)
    handle: TextIO = io.StringIO(source) if isinstance(source, str) else source
    reader = csv.reader(handle)
    rows = iter(reader)
    count = 0
    if has_header:
        header = next(rows, None)
        if header is None:
            return 0
        positions = [table.schema.column_position(name) for name in header]
        dtypes = [table.schema.columns[position].dtype for position in positions]
        for cells in rows:
            if not cells:
                continue
            values: List[Any] = [None] * len(table.schema.columns)
            for cell, position, dtype in zip(cells, positions, dtypes):
                values[position] = _parse_cell(cell, dtype)
            table.insert(values)
            count += 1
    else:
        dtypes = [column.dtype for column in table.schema.columns]
        for cells in rows:
            if not cells:
                continue
            if len(cells) != len(dtypes):
                raise SchemaError(
                    f"CSV row has {len(cells)} cells, expected {len(dtypes)}"
                )
            table.insert(
                [_parse_cell(cell, dtype) for cell, dtype in zip(cells, dtypes)]
            )
            count += 1
    return count


def dump_csv(database: Database, table_name: str, include_header: bool = True) -> str:
    """Serialize a table to CSV text (NULL becomes the empty cell)."""
    table = database.table(table_name)
    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\n")
    if include_header:
        writer.writerow(table.schema.column_names)
    for row in table.rows():
        writer.writerow(
            ["" if value is None else _render(value) for value in row]
        )
    return buffer.getvalue()


def _render(value: Any) -> str:
    if isinstance(value, bool):
        return "true" if value else "false"
    return str(value)
