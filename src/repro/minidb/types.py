"""Column types for the relational substrate.

The type system is deliberately small — INTEGER, FLOAT, TEXT, BOOLEAN and
DATE — which covers every relation CourseRank uses.  Values are stored as
plain Python objects; each type knows how to validate, coerce and compare.

NULL is represented by Python ``None`` and is a member of every type.
Comparison semantics follow SQL three-valued logic at the expression layer
(:mod:`repro.minidb.expressions`); this module only defines value domains.
"""

from __future__ import annotations

import datetime
from enum import Enum
from typing import Any, Optional

from repro.errors import TypeMismatchError


class DataType(Enum):
    """Enumeration of supported column types."""

    INTEGER = "INTEGER"
    FLOAT = "FLOAT"
    TEXT = "TEXT"
    BOOLEAN = "BOOLEAN"
    DATE = "DATE"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


_NUMERIC = {DataType.INTEGER, DataType.FLOAT}


def is_numeric(dtype: DataType) -> bool:
    """Return True for types that participate in arithmetic."""
    return dtype in _NUMERIC


def parse_date(text: str) -> datetime.date:
    """Parse an ISO ``YYYY-MM-DD`` string into a date.

    Raises :class:`TypeMismatchError` on malformed input so callers inside
    the engine surface a database error, not a ValueError.
    """
    try:
        return datetime.date.fromisoformat(text)
    except ValueError as exc:
        raise TypeMismatchError(f"invalid DATE literal {text!r}: {exc}") from exc


def coerce(value: Any, dtype: DataType) -> Any:
    """Coerce ``value`` into the Python representation of ``dtype``.

    ``None`` passes through (NULL belongs to every type).  Coercions are the
    conservative ones a small SQL engine performs on insert: int→float,
    numeric strings are *not* silently parsed, booleans are not ints.
    """
    if value is None:
        return None
    if dtype is DataType.INTEGER:
        # bool is a subclass of int; reject it explicitly.
        if isinstance(value, bool) or not isinstance(value, int):
            raise TypeMismatchError(f"expected INTEGER, got {value!r}")
        return value
    if dtype is DataType.FLOAT:
        if isinstance(value, bool):
            raise TypeMismatchError(f"expected FLOAT, got {value!r}")
        if isinstance(value, int):
            return float(value)
        if isinstance(value, float):
            return value
        raise TypeMismatchError(f"expected FLOAT, got {value!r}")
    if dtype is DataType.TEXT:
        if not isinstance(value, str):
            raise TypeMismatchError(f"expected TEXT, got {value!r}")
        return value
    if dtype is DataType.BOOLEAN:
        if not isinstance(value, bool):
            raise TypeMismatchError(f"expected BOOLEAN, got {value!r}")
        return value
    if dtype is DataType.DATE:
        if isinstance(value, datetime.date) and not isinstance(value, datetime.datetime):
            return value
        if isinstance(value, str):
            return parse_date(value)
        raise TypeMismatchError(f"expected DATE, got {value!r}")
    raise TypeMismatchError(f"unknown data type {dtype!r}")  # pragma: no cover


def conforms(value: Any, dtype: DataType) -> bool:
    """Return True if ``value`` is already a valid member of ``dtype``."""
    try:
        return coerce(value, dtype) == value or (
            dtype is DataType.FLOAT and isinstance(value, int)
        )
    except TypeMismatchError:
        return False


def infer_type(value: Any) -> Optional[DataType]:
    """Infer the narrowest DataType for a Python value (None → None)."""
    if value is None:
        return None
    if isinstance(value, bool):
        return DataType.BOOLEAN
    if isinstance(value, int):
        return DataType.INTEGER
    if isinstance(value, float):
        return DataType.FLOAT
    if isinstance(value, str):
        return DataType.TEXT
    if isinstance(value, datetime.date):
        return DataType.DATE
    return None


def common_type(left: DataType, right: DataType) -> Optional[DataType]:
    """The type two operands jointly promote to, or None if incompatible."""
    if left is right:
        return left
    if {left, right} == _NUMERIC:
        return DataType.FLOAT
    return None


def sort_key(value: Any) -> tuple:
    """A total-order key placing NULLs first, then by value.

    Mixed-type columns cannot occur (tables enforce types), so within one
    column ordering by the raw value is safe; the leading flag only
    separates NULLs.
    """
    if value is None:
        return (0, 0)
    return (1, value)


def format_value(value: Any) -> str:
    """Render a value the way the REPL/report layer prints it."""
    if value is None:
        return "NULL"
    if isinstance(value, bool):
        return "TRUE" if value else "FALSE"
    if isinstance(value, float):
        return f"{value:.6g}"
    if isinstance(value, datetime.date):
        return value.isoformat()
    return str(value)
