"""Vectorized expression compiler: expression tree -> batch kernel.

A *kernel* evaluates one expression over a selection of batch rows::

    kernel(ctx, columns, sel) -> [value, ...]   # aligned with sel

``ctx`` is the plan's shared base env (``__params__``, ``__functions__``,
AMBIGUOUS markers), ``columns`` maps env keys to column lists, and
``sel`` is a selection vector of row indices.  The result list is
positionally aligned with ``sel``.

Semantics are **element-wise identical** to ``expressions.py`` — the
same NULL propagation, Kleene connectives, coercion errors, and division
messages — including *which rows* each sub-expression is evaluated for:

* ``AND`` evaluates its right operand only where the left is not FALSE,
  ``OR`` only where the left is not TRUE (selection narrowing mirrors
  the row path's short-circuit row by row);
* ``CASE`` evaluates each condition only on still-unresolved rows and a
  branch value only where its condition is TRUE;
* ``IN (...)`` probes items left to right, dropping resolved rows;
* errors that depend on a row's *presence* (unknown/ambiguous column,
  unbound parameter) raise only when the selection is non-empty, so an
  empty input stays silent exactly like a never-pulled iterator.

The one permitted divergence: within a batch an error may surface from a
*different row* than the row path's first failing row (columns are
evaluated column-at-a-time).  The testkit compares errors by parity, and
both paths consume their full input wherever the planner routes
vectorized (see ``ops.py`` gating), so whether a query errors never
diverges.

Unsupported constructs (user-defined/scalar function calls, unresolved
subqueries) raise :class:`KernelUnsupported` at *compile* time; the plan
builder reacts by leaving the affected operator on the row path.
"""

from __future__ import annotations

import operator as _operator
from typing import Any, Callable, Dict, List, Optional, Sequence

import repro.minidb.vector as _vector

try:  # pragma: no cover - exercised via the NUMPY flag
    import numpy as _np
except Exception:  # pragma: no cover - pure-python environments
    _np = None

from repro.errors import (
    AmbiguousColumnError,
    ExecutionError,
    UnknownColumnError,
)
from repro.minidb.expressions import (
    AMBIGUOUS,
    Between,
    BinaryOp,
    Case,
    ColumnRef,
    InList,
    IsNull,
    Like,
    Literal,
    Parameter,
    UnaryOp,
    _COMPARE_FUNCS,
    _as_bool,
    _compare,
    _numeric_binop,
    kleene_and,
    kleene_not,
    like_to_regex,
)
from repro.minidb.sql.ast import AggregateRef

__all__ = ["Kernel", "KernelUnsupported", "compile_kernel", "supports"]

Kernel = Callable[[Dict[str, Any], Dict[str, List[Any]], Sequence[int]], List[Any]]


class KernelUnsupported(Exception):
    """Raised at compile time for constructs the batch path cannot run."""


class _Missing:
    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "<missing>"


_MISSING = _Missing()


def supports(expression: Any) -> bool:
    """True when ``expression`` compiles to a kernel."""
    try:
        compile_kernel(expression)
    except KernelUnsupported:
        return False
    return True


def compile_kernel(expression: Any) -> Kernel:
    """Compile ``expression`` into a batch kernel (or raise)."""
    if isinstance(expression, Literal):
        value = expression.value
        return lambda ctx, cols, sel: [value] * len(sel)
    if isinstance(expression, ColumnRef):
        return _column_kernel(expression.key, expression)
    if isinstance(expression, AggregateRef):
        return _aggregate_ref_kernel(expression.key)
    if isinstance(expression, Parameter):
        return _parameter_kernel(expression.index)
    if isinstance(expression, BinaryOp):
        return _binary_kernel(expression)
    if isinstance(expression, UnaryOp):
        return _unary_kernel(expression)
    if isinstance(expression, IsNull):
        return _is_null_kernel(expression)
    if isinstance(expression, InList):
        return _in_list_kernel(expression)
    if isinstance(expression, Between):
        return _between_kernel(expression)
    if isinstance(expression, Like):
        return _like_kernel(expression)
    if isinstance(expression, Case):
        return _case_kernel(expression)
    # FunctionCall (scalar UDFs), InSubquery/ExistsSubquery (resolved by
    # the planner before execution; reaching one raw is a row-path
    # concern), and anything newer stay on the iterator path.
    raise KernelUnsupported(type(expression).__name__)


# ---------------------------------------------------------------------------
# leaves
# ---------------------------------------------------------------------------


def _column_kernel(key: str, expression: ColumnRef) -> Kernel:
    def kernel(ctx: Dict[str, Any], cols: Dict[str, List[Any]],
               sel: Sequence[int]) -> List[Any]:
        column = cols.get(key)
        if column is not None:
            return [column[index] for index in sel]
        if not sel:
            return []
        value = ctx.get(key, _MISSING)
        if value is _MISSING:
            raise UnknownColumnError(
                f"unknown column {expression.to_sql()!r}"
            )
        if value is AMBIGUOUS:
            raise AmbiguousColumnError(
                f"column reference {expression.to_sql()!r} is ambiguous"
            )
        return [value] * len(sel)

    return kernel


def _aggregate_ref_kernel(key: str) -> Kernel:
    def kernel(ctx: Dict[str, Any], cols: Dict[str, List[Any]],
               sel: Sequence[int]) -> List[Any]:
        column = cols.get(key)
        if column is not None:
            return [column[index] for index in sel]
        if not sel:
            return []
        # Mirror AggregateRef.evaluate's bare env[key] lookup.
        raise KeyError(key)

    return kernel


def _parameter_kernel(index: int) -> Kernel:
    def kernel(ctx: Dict[str, Any], cols: Dict[str, List[Any]],
               sel: Sequence[int]) -> List[Any]:
        if not sel:
            return []
        params = ctx.get("__params__")
        if params is None or index >= len(params):
            raise ExecutionError(
                f"parameter ?{index + 1} is not bound; "
                "execute through a prepared statement with enough arguments"
            )
        return [params[index]] * len(sel)

    return kernel


# ---------------------------------------------------------------------------
# numpy fast paths
# ---------------------------------------------------------------------------
#
# When the column store mirrored a batch column as an ndarray
# (``ColumnMap.arrays``), comparisons and float arithmetic against a
# Literal scalar or a sibling ndarray column dispatch to one numpy ufunc
# call instead of a python loop.  The dispatch is *compiled in* only for
# the ``ColumnRef <op> Literal`` / ``ColumnRef <op> ColumnRef`` shapes
# and *engages* only when the batch actually carries a suitable array —
# every other case falls through to the generic python kernel, so
# results are bit-identical by construction:
#
# * int64 columns: comparisons only, and only against int scalars within
#   int64 range (int64 arithmetic overflows silently where python ints
#   are arbitrary-precision, and comparing against a float would promote
#   the column through lossy float64).
# * float64 columns: comparisons and ``+ - * /`` against float scalars,
#   int scalars exactly representable in float64 (|v| <= 2**53), or
#   another float64 column.  IEEE semantics match python floats exactly.
# * ``/`` never runs on numpy when the divisor is (or contains) zero —
#   the python loop raises the row path's "division by zero" instead.
# * A selection vector is strictly-increasing row positions, so a sel
#   whose length equals the column's is the identity and skips fancy
#   indexing.

_NUMPY_COMPARE_OPS = frozenset(("=", "<>", "!=", "<", "<=", ">", ">="))
_NUMPY_ARITH_OPS = frozenset(("+", "-", "*", "/"))
_ARITH_FUNCS: Dict[str, Callable[[Any, Any], Any]] = {
    "+": _operator.add,
    "-": _operator.sub,
    "*": _operator.mul,
    "/": _operator.truediv,
}
_FLOAT_EXACT_INT = 2 ** 53
_INT64_MIN = -(2 ** 63)
_INT64_MAX = 2 ** 63 - 1

_NumpyFast = Callable[
    [Dict[str, Any], Dict[str, List[Any]], Sequence[int]], Optional[List[Any]]
]


def _numpy_view(array: Any, sel: Sequence[int]) -> Any:
    if len(sel) == len(array):
        return array
    return array[_np.asarray(sel, dtype=_np.intp)]


def _numpy_apply(op: str, a: Any, b: Any) -> List[Any]:
    func = _COMPARE_FUNCS.get(op)
    if func is None:
        func = _ARITH_FUNCS[op]
    with _np.errstate(all="ignore"):
        result = func(a, b)
    return result.tolist()


def _numpy_scalar_fast(op: str, key: str, scalar: Any,
                       reversed_: bool) -> Optional[_NumpyFast]:
    """Fast path for ``column <op> scalar`` (``reversed_``: scalar on
    the left).  None when the scalar can never dispatch safely."""
    is_arith = op in _NUMPY_ARITH_OPS
    if type(scalar) is int:
        int_ok = _INT64_MIN <= scalar <= _INT64_MAX
        float_ok = -_FLOAT_EXACT_INT <= scalar <= _FLOAT_EXACT_INT
    elif type(scalar) is float:
        int_ok = False
        float_ok = True
    else:
        return None
    if not int_ok and not float_ok:
        return None
    if is_arith and op == "/" and not reversed_ and scalar == 0:
        return None  # let the python loop raise "division by zero"

    def fast(ctx: Dict[str, Any], cols: Dict[str, List[Any]],
             sel: Sequence[int]) -> Optional[List[Any]]:
        arrays = getattr(cols, "arrays", None)
        if not arrays or _np is None or not _vector.NUMPY:
            return None
        array = arrays.get(key)
        if array is None:
            return None
        if array.dtype.kind == "i":
            if is_arith or not int_ok:
                return None
        elif not float_ok:
            return None
        view = _numpy_view(array, sel)
        if is_arith and op == "/" and reversed_ and (view == 0).any():
            return None
        if reversed_:
            return _numpy_apply(op, scalar, view)
        return _numpy_apply(op, view, scalar)

    return fast


def _numpy_column_fast(op: str, left_key: str,
                       right_key: str) -> Optional[_NumpyFast]:
    """Fast path for ``column <op> column`` over same-dtype mirrors."""
    is_arith = op in _NUMPY_ARITH_OPS

    def fast(ctx: Dict[str, Any], cols: Dict[str, List[Any]],
             sel: Sequence[int]) -> Optional[List[Any]]:
        arrays = getattr(cols, "arrays", None)
        if not arrays or _np is None or not _vector.NUMPY:
            return None
        left = arrays.get(left_key)
        right = arrays.get(right_key)
        if left is None or right is None or left.dtype != right.dtype:
            return None
        if is_arith and left.dtype.kind == "i":
            return None
        lview = _numpy_view(left, sel)
        rview = _numpy_view(right, sel)
        if is_arith and op == "/" and (rview == 0).any():
            return None
        return _numpy_apply(op, lview, rview)

    return fast


def _numpy_fast(op: str, left: Any, right: Any) -> Optional[_NumpyFast]:
    """Compile-time shape detection for the numpy dispatch, or None."""
    if _np is None:
        return None
    if op not in _NUMPY_COMPARE_OPS and op not in _NUMPY_ARITH_OPS:
        return None
    if isinstance(left, ColumnRef) and isinstance(right, Literal):
        return _numpy_scalar_fast(op, left.key, right.value, reversed_=False)
    if isinstance(left, Literal) and isinstance(right, ColumnRef):
        return _numpy_scalar_fast(op, right.key, left.value, reversed_=True)
    if isinstance(left, ColumnRef) and isinstance(right, ColumnRef):
        return _numpy_column_fast(op, left.key, right.key)
    return None


def _with_numpy_fast(fast: Optional[_NumpyFast], generic: Kernel) -> Kernel:
    if fast is None:
        return generic

    def kernel(ctx: Dict[str, Any], cols: Dict[str, List[Any]],
               sel: Sequence[int]) -> List[Any]:
        out = fast(ctx, cols, sel)
        if out is not None:
            return out
        return generic(ctx, cols, sel)

    return kernel


# ---------------------------------------------------------------------------
# connectives and operators
# ---------------------------------------------------------------------------


def _binary_kernel(expression: BinaryOp) -> Kernel:
    op = expression.op
    left = compile_kernel(expression.left)
    right = compile_kernel(expression.right)
    if op == "AND" or op == "OR":
        strict = expression.left.is_boolean() and expression.right.is_boolean()
        skip = False if op == "AND" else True
        return _connective_kernel(left, right, skip, strict)
    if op == "||":

        def concat_kernel(ctx, cols, sel):
            lvals = left(ctx, cols, sel)
            rvals = right(ctx, cols, sel)
            return [
                None if (a is None or b is None) else str(a) + str(b)
                for a, b in zip(lvals, rvals)
            ]

        return concat_kernel
    if op in _COMPARE_FUNCS:
        comparator = _COMPARE_FUNCS[op]

        def compare_kernel(ctx, cols, sel):
            lvals = left(ctx, cols, sel)
            rvals = right(ctx, cols, sel)
            out: List[Any] = []
            append = out.append
            for a, b in zip(lvals, rvals):
                if a is None or b is None:
                    append(None)
                    continue
                try:
                    append(comparator(a, b))
                except TypeError as exc:
                    raise ExecutionError(
                        f"cannot compare {a!r} with {b!r}"
                    ) from exc
            return out

        return _with_numpy_fast(
            _numpy_fast(op, expression.left, expression.right),
            compare_kernel,
        )
    if op in ("+", "-", "*", "/", "%"):

        def arith_kernel(ctx, cols, sel):
            lvals = left(ctx, cols, sel)
            rvals = right(ctx, cols, sel)
            return [
                None if (a is None or b is None)
                else _numeric_binop(op, a, b)
                for a, b in zip(lvals, rvals)
            ]

        return _with_numpy_fast(
            _numpy_fast(op, expression.left, expression.right),
            arith_kernel,
        )
    raise KernelUnsupported(f"binary operator {op!r}")


def _connective_kernel(
    left: Kernel, right: Kernel, skip: bool, strict: bool
) -> Kernel:
    """AND (``skip=False``) / OR (``skip=True``) with selection narrowing.

    The right operand is evaluated only for rows where the left did not
    already decide the result — the exact row set the row path's
    short-circuit evaluates it for.
    """

    def kernel(ctx: Dict[str, Any], cols: Dict[str, List[Any]],
               sel: Sequence[int]) -> List[Any]:
        lvals = left(ctx, cols, sel)
        if not strict:
            lvals = [_as_bool(value) for value in lvals]
        out: List[Any] = [skip] * len(lvals)
        pending = [pos for pos, value in enumerate(lvals) if value is not skip]
        if pending:
            sub_sel = [sel[pos] for pos in pending]
            rvals = right(ctx, cols, sub_sel)
            if not strict:
                rvals = [_as_bool(value) for value in rvals]
            for pos, rv in zip(pending, rvals):
                if rv is skip:
                    out[pos] = skip
                elif lvals[pos] is None or rv is None:
                    out[pos] = None
                else:
                    out[pos] = not skip
        return out

    return kernel


def _unary_kernel(expression: UnaryOp) -> Kernel:
    operand = compile_kernel(expression.operand)
    if expression.op == "NOT":

        def not_kernel(ctx, cols, sel):
            return [
                kleene_not(_as_bool(value))
                for value in operand(ctx, cols, sel)
            ]

        return not_kernel
    if expression.op == "-":

        def negate_kernel(ctx, cols, sel):
            out: List[Any] = []
            append = out.append
            for value in operand(ctx, cols, sel):
                if value is None:
                    append(None)
                elif not isinstance(value, (int, float)) or isinstance(
                    value, bool
                ):
                    raise ExecutionError(f"cannot negate {value!r}")
                else:
                    append(-value)
            return out

        return negate_kernel
    raise KernelUnsupported(f"unary operator {expression.op!r}")


def _is_null_kernel(expression: IsNull) -> Kernel:
    operand = compile_kernel(expression.operand)
    if expression.negated:
        return lambda ctx, cols, sel: [
            value is not None for value in operand(ctx, cols, sel)
        ]
    return lambda ctx, cols, sel: [
        value is None for value in operand(ctx, cols, sel)
    ]


def _in_list_kernel(expression: InList) -> Kernel:
    operand = compile_kernel(expression.operand)
    negated = expression.negated
    if not expression.items:
        # Empty folded subquery: constant FALSE/TRUE, NULL-immune.
        return lambda ctx, cols, sel: [negated] * len(sel)
    if all(isinstance(item, Literal) for item in expression.items):
        values = [item.value for item in expression.items]
        saw_null = any(value is None for value in values)
        non_null = [value for value in values if value is not None]
        try:
            lookup = set(non_null)
        except TypeError:  # unhashable literal; keep the linear scan
            lookup = None

        def literal_kernel(ctx, cols, sel):
            out: List[Any] = []
            append = out.append
            for value in operand(ctx, cols, sel):
                if value is None:
                    append(None)
                    continue
                if lookup is not None:
                    try:
                        found = value in lookup
                    except TypeError:
                        found = any(c == value for c in non_null)
                else:
                    found = any(c == value for c in non_null)
                if found:
                    append(not negated)
                elif saw_null:
                    append(None)
                else:
                    append(negated)
            return out

        return literal_kernel
    items = [compile_kernel(item) for item in expression.items]

    def kernel(ctx: Dict[str, Any], cols: Dict[str, List[Any]],
               sel: Sequence[int]) -> List[Any]:
        values = operand(ctx, cols, sel)
        out: List[Any] = [None] * len(values)
        saw_null = [False] * len(values)
        pending = [pos for pos, value in enumerate(values) if value is not None]
        for item in items:
            if not pending:
                break
            sub_sel = [sel[pos] for pos in pending]
            candidates = item(ctx, cols, sub_sel)
            still: List[int] = []
            for pos, candidate in zip(pending, candidates):
                if candidate is None:
                    saw_null[pos] = True
                    still.append(pos)
                elif candidate == values[pos]:
                    out[pos] = not negated
                else:
                    still.append(pos)
            pending = still
        for pos in pending:
            out[pos] = None if saw_null[pos] else negated
        return out

    return kernel


def _between_kernel(expression: Between) -> Kernel:
    operand = compile_kernel(expression.operand)
    low = compile_kernel(expression.low)
    high = compile_kernel(expression.high)
    negated = expression.negated

    def kernel(ctx: Dict[str, Any], cols: Dict[str, List[Any]],
               sel: Sequence[int]) -> List[Any]:
        values = operand(ctx, cols, sel)
        lows = low(ctx, cols, sel)
        highs = high(ctx, cols, sel)
        out: List[Any] = []
        append = out.append
        for value, lo, hi in zip(values, lows, highs):
            # Both compares run unconditionally (either may raise on a
            # type mismatch), exactly like Between.evaluate.
            result = kleene_and(
                _compare(">=", value, lo), _compare("<=", value, hi)
            )
            append(kleene_not(result) if negated else result)
        return out

    return kernel


def _like_kernel(expression: Like) -> Kernel:
    operand = compile_kernel(expression.operand)
    negated = expression.negated
    case_insensitive = expression.case_insensitive
    pattern = expression.pattern
    if isinstance(pattern, Literal) and isinstance(pattern.value, str):
        text = pattern.value.lower() if case_insensitive else pattern.value
        regex = like_to_regex(text)

        def literal_kernel(ctx, cols, sel):
            out: List[Any] = []
            append = out.append
            for value in operand(ctx, cols, sel):
                if value is None:
                    append(None)
                    continue
                if not isinstance(value, str):
                    raise ExecutionError("LIKE requires text operands")
                if case_insensitive:
                    value = value.lower()
                matched = regex.match(value) is not None
                append(not matched if negated else matched)
            return out

        return literal_kernel
    pattern_kernel = compile_kernel(pattern)
    cache = expression._cache

    def kernel(ctx: Dict[str, Any], cols: Dict[str, List[Any]],
               sel: Sequence[int]) -> List[Any]:
        values = operand(ctx, cols, sel)
        patterns = pattern_kernel(ctx, cols, sel)
        out: List[Any] = []
        append = out.append
        for value, pat in zip(values, patterns):
            if value is None or pat is None:
                append(None)
                continue
            if not isinstance(value, str) or not isinstance(pat, str):
                raise ExecutionError("LIKE requires text operands")
            if case_insensitive:
                value = value.lower()
                pat = pat.lower()
            regex = cache.get(pat)
            if regex is None:
                regex = like_to_regex(pat)
                cache[pat] = regex
            matched = regex.match(value) is not None
            append(not matched if negated else matched)
        return out

    return kernel


def _case_kernel(expression: Case) -> Kernel:
    branches = [
        (compile_kernel(condition), compile_kernel(value))
        for condition, value in expression.branches
    ]
    default = (
        compile_kernel(expression.default)
        if expression.default is not None
        else None
    )

    def kernel(ctx: Dict[str, Any], cols: Dict[str, List[Any]],
               sel: Sequence[int]) -> List[Any]:
        out: List[Any] = [None] * len(sel)
        pending = list(range(len(sel)))
        for condition, value in branches:
            if not pending:
                break
            sub_sel = [sel[pos] for pos in pending]
            conditions = [
                _as_bool(cv) for cv in condition(ctx, cols, sub_sel)
            ]
            taken = [
                pos for pos, cv in zip(pending, conditions) if cv is True
            ]
            if taken:
                taken_sel = [sel[pos] for pos in taken]
                for pos, result in zip(taken, value(ctx, cols, taken_sel)):
                    out[pos] = result
            pending = [
                pos for pos, cv in zip(pending, conditions) if cv is not True
            ]
        if default is not None and pending:
            sub_sel = [sel[pos] for pos in pending]
            for pos, result in zip(pending, default(ctx, cols, sub_sel)):
                out[pos] = result
        return out

    return kernel
