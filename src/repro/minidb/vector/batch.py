"""Columnar batch container and the per-table column store.

A :class:`ColumnBatch` is the unit of data flow in the vectorized
executor: a mapping from env keys (the same qualified/bare names the row
pipeline binds into per-row dicts) to plain Python lists, plus a row
count.  NULL is represented in-band as ``None`` — the same encoding the
row path uses — and :meth:`ColumnBatch.null_mask` derives an explicit
boolean mask on demand for kernels that want one.

Column *pruning* is zero-copy: projecting a batch to a subset of keys
shares the underlying lists, and a bare column alias shares the exact
list object of its qualified name.

The module-level :data:`BATCH_SIZE` is deliberately a plain attribute so
tests can shrink it to exercise batch-boundary behaviour
(``vector_batch.BATCH_SIZE = 4``).

The **column store** caches a columnar projection of a
:class:`~repro.minidb.table.Table` — one list per schema column, in
insertion (rowid) order, matching ``table.rows()`` exactly.  Entries are
keyed by table identity in a :class:`weakref.WeakKeyDictionary` and
validated against the table's ``data_version`` counter on every access,
so any mutation (which bumps the version) transparently rebuilds the
projection and dropped tables never pin memory.
"""

from __future__ import annotations

import threading
import weakref
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

#: rows per batch; small enough to keep gather lists cache-friendly,
#: large enough to amortize per-batch dispatch.  Tests shrink this to
#: probe boundary behaviour (N-1 / N / N+1 around the batch edge).
BATCH_SIZE = 1024


class ColumnBatch:
    """A batch of rows stored column-wise: ``{env_key: [values...]}``."""

    __slots__ = ("columns", "length")

    def __init__(self, columns: Dict[str, List[Any]], length: int) -> None:
        self.columns = columns
        self.length = length

    def null_mask(self, key: str) -> List[bool]:
        """Explicit null mask for one column (NULL is in-band ``None``)."""
        return [value is None for value in self.columns[key]]

    def project(self, keys: Sequence[str]) -> "ColumnBatch":
        """Zero-copy pruning: the projected batch shares column lists."""
        return ColumnBatch(
            {key: self.columns[key] for key in keys}, self.length
        )

    def gather(self, sel: Sequence[int]) -> "ColumnBatch":
        """Materialize the rows a selection vector picked."""
        return ColumnBatch(
            {
                key: [column[index] for index in sel]
                for key, column in self.columns.items()
            },
            len(sel),
        )

    def __len__(self) -> int:
        return self.length

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<ColumnBatch {self.length} rows x {len(self.columns)} cols>"


# ---------------------------------------------------------------------------
# the column store
# ---------------------------------------------------------------------------

#: table -> (data_version, [column lists in schema order])
_STORE: "weakref.WeakKeyDictionary[Any, Tuple[int, List[List[Any]]]]" = (
    weakref.WeakKeyDictionary()
)

# WeakKeyDictionary mutates internal state even on reads (dead-ref
# callbacks), so concurrent scans share this lock.  The build runs under
# it too: a duplicate concurrent build would waste work, and — with reads
# sharing the database rwlock — both builders would project the *same*
# version, so serializing them costs one build and guarantees every
# reader hands back an internally consistent (version, columns) pair.
_STORE_LOCK = threading.Lock()


def table_columns(table: Any) -> List[List[Any]]:
    """The cached columnar projection of ``table``, rebuilt on mutation."""
    with _STORE_LOCK:
        entry = _STORE.get(table)
        version = table.data_version
        if entry is not None and entry[0] == version:
            return entry[1]
        width = len(table.schema.columns)
        columns: List[List[Any]] = [[] for _ in range(width)]
        appends = [column.append for column in columns]
        for row in table.rows():
            for append, value in zip(appends, row):
                append(value)
        _STORE[table] = (version, columns)
        return columns


def store_info() -> Dict[str, int]:
    """Introspection hook for tests: cached tables and total cells."""
    with _STORE_LOCK:
        tables = len(_STORE)
        cells = sum(
            sum(len(column) for column in columns)
            for _version, columns in _STORE.values()
        )
    return {"tables": tables, "cells": cells}


def iter_batches(
    columns: Dict[str, List[Any]], length: int, batch_size: Optional[int] = None
) -> Iterator[ColumnBatch]:
    """Slice full-length columns into :data:`BATCH_SIZE` chunks."""
    size = batch_size if batch_size is not None else BATCH_SIZE
    if length == 0:
        return
    if length <= size:
        yield ColumnBatch(dict(columns), length)
        return
    for start in range(0, length, size):
        stop = min(start + size, length)
        yield ColumnBatch(
            {key: column[start:stop] for key, column in columns.items()},
            stop - start,
        )
