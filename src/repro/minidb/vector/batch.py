"""Columnar batch container and the per-table column store.

A :class:`ColumnBatch` is the unit of data flow in the vectorized
executor: a mapping from env keys (the same qualified/bare names the row
pipeline binds into per-row dicts) to plain Python lists, plus a row
count.  NULL is represented in-band as ``None`` — the same encoding the
row path uses — and :meth:`ColumnBatch.null_mask` derives an explicit
boolean mask on demand for kernels that want one.

Column *pruning* is zero-copy: projecting a batch to a subset of keys
shares the underlying lists, and a bare column alias shares the exact
list object of its qualified name.

The module-level :data:`BATCH_SIZE` is deliberately a plain attribute so
tests can shrink it to exercise batch-boundary behaviour
(``vector_batch.BATCH_SIZE = 4``).

The **column store** caches a columnar projection of a
:class:`~repro.minidb.table.Table` — one list per schema column, in
insertion order, matching ``table.rows()`` exactly — plus a rowid ->
position map so index-provided rowid streams can be gathered without
touching the row dicts (``Table.update_rowid`` re-inserts rows, so dict
order and rowid order diverge after updates; the map is the bridge).
Entries are keyed by table identity in a
:class:`weakref.WeakKeyDictionary` and validated against the table's
``data_version`` counter on every access, so any mutation (which bumps
the version) transparently rebuilds the projection and dropped tables
never pin memory.

When ``repro.minidb.vector.NUMPY`` is on, the store additionally mirrors
*eligible* columns as ndarrays: every value ``type(...) is int`` (bools
excluded) and representable in int64 -> an ``int64`` array, every value
``type(...) is float`` -> a ``float64`` array.  Columns containing NULL,
text, dates, bools, mixed types, or out-of-range ints stay pure-python
(the mirror is simply absent and kernels fall back).  The lists remain
the source of truth — ndarrays are a read-only acceleration surface, so
numpy on/off is bit-identical by construction.
"""

from __future__ import annotations

import threading
import weakref
from typing import Any, Dict, Iterator, List, Optional, Sequence

#: rows per batch; small enough to keep gather lists cache-friendly,
#: large enough to amortize per-batch dispatch.  Tests shrink this to
#: probe boundary behaviour (N-1 / N / N+1 around the batch edge).
BATCH_SIZE = 1024

_INT64_MIN = -(2 ** 63)
_INT64_MAX = 2 ** 63 - 1


class ColumnMap(dict):
    """A ``{env_key: [values...]}`` mapping with an optional ndarray
    side-channel.  ``arrays`` maps a subset of the same keys to numpy
    mirrors of their lists; kernels probe it with
    ``getattr(columns, "arrays", None)`` so plain dicts keep working.
    """

    __slots__ = ("arrays",)

    def __init__(self, columns: Any = (), arrays: Optional[Dict[str, Any]] = None) -> None:
        super().__init__(columns)
        self.arrays: Dict[str, Any] = arrays if arrays is not None else {}


class ColumnBatch:
    """A batch of rows stored column-wise: ``{env_key: [values...]}``."""

    __slots__ = ("columns", "length")

    def __init__(self, columns: Dict[str, List[Any]], length: int) -> None:
        self.columns = columns
        self.length = length

    def null_mask(self, key: str) -> List[bool]:
        """Explicit null mask for one column (NULL is in-band ``None``)."""
        return [value is None for value in self.columns[key]]

    def project(self, keys: Sequence[str]) -> "ColumnBatch":
        """Zero-copy pruning: the projected batch shares column lists."""
        projected = {key: self.columns[key] for key in keys}
        arrays = getattr(self.columns, "arrays", None)
        if arrays:
            kept = {key: arrays[key] for key in keys if key in arrays}
            if kept:
                return ColumnBatch(ColumnMap(projected, kept), self.length)
        return ColumnBatch(projected, self.length)

    def gather(self, sel: Sequence[int]) -> "ColumnBatch":
        """Materialize the rows a selection vector picked."""
        gathered = {
            key: [column[index] for index in sel]
            for key, column in self.columns.items()
        }
        arrays = getattr(self.columns, "arrays", None)
        if arrays:
            picked = list(sel) if not isinstance(sel, list) else sel
            return ColumnBatch(
                ColumnMap(
                    gathered,
                    {key: array[picked] for key, array in arrays.items()},
                ),
                len(sel),
            )
        return ColumnBatch(gathered, len(sel))

    def __len__(self) -> int:
        return self.length

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<ColumnBatch {self.length} rows x {len(self.columns)} cols>"


# ---------------------------------------------------------------------------
# the column store
# ---------------------------------------------------------------------------


class _TableStore:
    """One cached columnar projection: lists + rowid map + ndarray mirrors."""

    __slots__ = ("version", "columns", "positions", "arrays", "numpy_on")

    def __init__(self, version: int, columns: List[List[Any]],
                 positions: Dict[int, int], arrays: Dict[int, Any],
                 numpy_on: bool) -> None:
        self.version = version
        self.columns = columns
        #: rowid -> positional offset into every column list
        self.positions = positions
        #: schema column index -> ndarray mirror (eligible columns only)
        self.arrays = arrays
        self.numpy_on = numpy_on

    @property
    def length(self) -> int:
        return len(self.columns[0]) if self.columns else 0


#: table -> _TableStore
_STORE: "weakref.WeakKeyDictionary[Any, _TableStore]" = (
    weakref.WeakKeyDictionary()
)

# WeakKeyDictionary mutates internal state even on reads (dead-ref
# callbacks), so concurrent scans share this lock.  The build runs under
# it too: a duplicate concurrent build would waste work, and — with reads
# sharing the database rwlock — both builders would project the *same*
# version, so serializing them costs one build and guarantees every
# reader hands back an internally consistent store.
_STORE_LOCK = threading.Lock()


def _numpy_module():
    """The imported numpy module iff the layer is enabled, else None."""
    import repro.minidb.vector as _vector

    if not _vector.NUMPY:
        return None
    try:
        import numpy
    except Exception:  # pragma: no cover - HAS_NUMPY guards this
        return None
    return numpy


def _column_array(np_module: Any, column: List[Any]) -> Optional[Any]:
    """ndarray mirror for an eligible column, or None.

    Eligibility is exact-type: ``int`` only (bool is a subclass and is
    excluded — int64 arithmetic would silently change its type), or
    ``float`` only.  NULLs, strings, dates, and mixed columns stay pure
    python.  Out-of-int64-range values disqualify the whole column.
    """
    kinds = {type(value) for value in column}
    if kinds == {int}:
        for value in column:
            if value < _INT64_MIN or value > _INT64_MAX:
                return None
        return np_module.asarray(column, dtype=np_module.int64)
    if kinds == {float}:
        return np_module.asarray(column, dtype=np_module.float64)
    return None


def table_store(table: Any) -> _TableStore:
    """The cached columnar store of ``table``, rebuilt on mutation (and
    on a ``vector.NUMPY`` flip, so the ndarray mirrors track the flag)."""
    from repro.obs import OBS

    np_module = _numpy_module()
    numpy_on = np_module is not None
    with _STORE_LOCK:
        entry = _STORE.get(table)
        version = table.data_version
        if (
            entry is not None
            and entry.version == version
            and entry.numpy_on == numpy_on
        ):
            return entry
        width = len(table.schema.columns)
        columns: List[List[Any]] = [[] for _ in range(width)]
        appends = [column.append for column in columns]
        positions: Dict[int, int] = {}
        offset = 0
        for rowid, row in table.rows_with_ids():
            positions[rowid] = offset
            offset += 1
            for append, value in zip(appends, row):
                append(value)
        arrays: Dict[int, Any] = {}
        if numpy_on and offset:
            fallbacks = 0
            for index, column in enumerate(columns):
                array = _column_array(np_module, column)
                if array is not None:
                    arrays[index] = array
                else:
                    fallbacks += 1
            if OBS.enabled:
                if arrays:
                    OBS.metrics.inc("minidb.vector.numpy.columns", len(arrays))
                if fallbacks:
                    OBS.metrics.inc("minidb.vector.numpy.fallback", fallbacks)
        entry = _TableStore(version, columns, positions, arrays, numpy_on)
        _STORE[table] = entry
        return entry


def table_columns(table: Any) -> List[List[Any]]:
    """The cached columnar projection of ``table``, rebuilt on mutation."""
    return table_store(table).columns


def store_info() -> Dict[str, int]:
    """Introspection hook for tests: cached tables and total cells."""
    with _STORE_LOCK:
        tables = len(_STORE)
        cells = sum(
            sum(len(column) for column in entry.columns)
            for entry in _STORE.values()
        )
        numpy_columns = sum(len(entry.arrays) for entry in _STORE.values())
    return {"tables": tables, "cells": cells, "numpy_columns": numpy_columns}


def _slice_columns(
    columns: Dict[str, List[Any]], start: int, stop: int
) -> Dict[str, List[Any]]:
    sliced = {key: column[start:stop] for key, column in columns.items()}
    arrays = getattr(columns, "arrays", None)
    if arrays:
        return ColumnMap(
            sliced, {key: array[start:stop] for key, array in arrays.items()}
        )
    return sliced


def iter_batches(
    columns: Dict[str, List[Any]], length: int, batch_size: Optional[int] = None
) -> Iterator[ColumnBatch]:
    """Slice full-length columns into :data:`BATCH_SIZE` chunks.  ndarray
    side-channels (a :class:`ColumnMap` input) are sliced alongside —
    numpy slices are views, so this stays cheap."""
    size = batch_size if batch_size is not None else BATCH_SIZE
    if length == 0:
        return
    if length <= size:
        arrays = getattr(columns, "arrays", None)
        if arrays:
            yield ColumnBatch(ColumnMap(columns, dict(arrays)), length)
        else:
            yield ColumnBatch(dict(columns), length)
        return
    for start in range(0, length, size):
        stop = min(start + size, length)
        yield ColumnBatch(_slice_columns(columns, start, stop), stop - start)
