"""Batch-vectorized physical operators and the dual-path plan router.

``build_vector_plan`` walks an existing logical :class:`QueryPlan` and
mirrors it with vector operators (:class:`VScan`, :class:`VIndexScan`,
:class:`VFilter`, :class:`VHashJoin`, :class:`VAggregate`,
:class:`VSort`, :class:`VLimit`, :class:`VSubqueryScan`).  Any node the
batch path cannot run — primary-key point lookups, nested-loop joins,
expressions with scalar function calls — is wrapped in a
:class:`VRowSource` *row-emit boundary*: the node's entire subtree
executes on the untouched iterator path and its env dicts are packed
into batches, so operators above it stay vectorized.  The capability
check happens once at plan time; execution never probes.

Equivalence rules the builder enforces (beyond kernel-level semantics):

* ``LimitNode`` vectorizes only above a fully-materializing child
  (:class:`VSort` / :class:`VAggregate`).  Anywhere else the row path's
  early-exit stops evaluating expressions the batch path would have
  evaluated a whole batch of — a spurious-error hazard — so the subtree
  stays on the row path.
* DISTINCT plans with a ``post_limit`` vectorize only when the root is
  materializing *and* the projection is pure column/aggregate
  references, for the same reason (the dedup loop stops early).
* A plan whose root boundary is a row source is not routed at all
  (``build_vector_plan`` returns ``None``): there is nothing to
  vectorize and EXPLAIN must not claim otherwise.

Operators preserve the row path's emission order *exactly* — hash joins
probe left-major with build-insertion bucket order, aggregation emits
groups in first-seen order, sorts run the same stable comparator over
the same key values — so ORDER BY ... LIMIT and DISTINCT answers are
bit-identical, floats included.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple

from repro.minidb.expressions import AMBIGUOUS, order_key
from repro.minidb.functions import (
    AvgAccumulator,
    CountAccumulator,
    MaxAccumulator,
    MinAccumulator,
    SumAccumulator,
)
from repro.minidb.sql.ast import AggregateRef
from repro.minidb.expressions import ColumnRef
from repro.minidb.vector import batch as _batch
from repro.minidb.vector.batch import (
    ColumnBatch,
    ColumnMap,
    iter_batches,
    table_store,
)
from repro.minidb.vector.kernels import (
    Kernel,
    KernelUnsupported,
    compile_kernel,
)
from repro.obs import OBS

__all__ = ["VectorPlan", "build_vector_plan"]


class _Missing:
    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "<missing>"


_MISSING = _Missing()


class VOp:
    """Base vector operator: yields :class:`ColumnBatch` instances.

    ``node`` is the logical plan node this operator mirrors (EXPLAIN
    ANALYZE keys its per-node stats on it); ``vectorized`` is False only
    for the :class:`VRowSource` boundary.
    """

    vectorized = True

    def __init__(self, node: Any, ctx: Dict[str, Any]) -> None:
        self.node = node
        self.ctx = ctx
        self.children: List["VOp"] = []

    def batches(self) -> Iterator[ColumnBatch]:
        raise NotImplementedError


class VRowSource(VOp):
    """Row-emit boundary: runs a subtree on the iterator path and packs
    its env dicts into batches.  The wrapped node's own ``rows()`` is the
    untouched row pipeline, so semantics (laziness included) are exactly
    the row path's."""

    vectorized = False

    def batches(self) -> Iterator[ColumnBatch]:
        keys = self.node.env_keys
        size = _batch.BATCH_SIZE
        columns: Dict[str, List[Any]] = {key: [] for key in keys}
        count = 0
        for env in self.node.rows():
            for key in keys:
                columns[key].append(env[key])
            count += 1
            if count >= size:
                yield ColumnBatch(columns, count)
                columns = {key: [] for key in keys}
                count = 0
        if count:
            yield ColumnBatch(columns, count)


class VScan(VOp):
    """Sequential scan over the cached columnar projection of a table,
    pruned to the plan's needed columns, with an optional vectorized
    filter pushed into the scan."""

    def __init__(self, node: Any, ctx: Dict[str, Any],
                 predicate: Optional[Kernel]) -> None:
        super().__init__(node, ctx)
        self.predicate = predicate

    def batches(self) -> Iterator[ColumnBatch]:
        store = table_store(self.node.table)
        length = store.length
        store_arrays = store.arrays
        columns: Dict[str, List[Any]] = {}
        arrays: Dict[str, Any] = {}
        for index, qualified, bare in self.node._keys:
            column = store.columns[index]
            columns[qualified] = column
            array = store_arrays.get(index)
            if array is not None:
                arrays[qualified] = array
            if bare:
                columns[bare] = column  # zero-copy alias
                if array is not None:
                    arrays[bare] = array
        if arrays:
            columns = ColumnMap(columns, arrays)
        predicate = self.predicate
        ctx = self.ctx
        observe = OBS.enabled
        emitted = 0
        for chunk in iter_batches(columns, length):
            if predicate is not None:
                flags = predicate(ctx, chunk.columns, range(chunk.length))
                sel = [pos for pos, flag in enumerate(flags) if flag is True]
                if observe and chunk.length:
                    OBS.metrics.observe(
                        "minidb.vector.filter.selectivity",
                        len(sel) / chunk.length,
                    )
                if not sel:
                    continue
                if len(sel) != chunk.length:
                    chunk = chunk.gather(sel)
            emitted += 1
            yield chunk
        if observe and emitted:
            OBS.metrics.inc("minidb.vector.batches", emitted)


class VIndexScan(VOp):
    """Index-assisted batch scan: probes the logical node's
    :class:`~repro.minidb.planner.IndexAccess` for matching rowids
    exactly like the row path (equality via ``index.find``, bounds via
    ``index.range``), then materializes *only those rows* from the cached
    column store, in the index's emission order — so output order is
    bit-identical to the row path's IndexScan.  The store's rowid ->
    position map bridges rowid order and store order (which diverge
    after in-place updates).  Any residual predicate runs as a pushed
    selection-vector kernel, mirroring :class:`VScan`.

    Primary-key point lookups stay on the row path: a 0/1-row plan has
    nothing to vectorize and EXPLAIN should not claim otherwise.
    """

    def __init__(self, node: Any, ctx: Dict[str, Any],
                 predicate: Optional[Kernel]) -> None:
        super().__init__(node, ctx)
        self.predicate = predicate

    def batches(self) -> Iterator[ColumnBatch]:
        node = self.node
        access = node.access
        index = access.index_info.index
        if access.equal_key is not None:
            rowids = list(index.find(access.equal_key))
        else:
            rowids = list(
                index.range(
                    access.low, access.high,
                    access.low_inclusive, access.high_inclusive,
                )
            )
        observe = OBS.enabled
        if observe:
            OBS.metrics.inc("minidb.vector.index_scan.probes")
            if rowids:
                OBS.metrics.inc("minidb.vector.index_scan.rowids", len(rowids))
        if not rowids:
            return
        store = table_store(node.table)
        positions = store.positions
        picks = [positions[rowid] for rowid in rowids]
        columns: Dict[str, List[Any]] = {}
        for col_index, qualified, bare in node._keys:
            source = store.columns[col_index]
            column = [source[pos] for pos in picks]
            columns[qualified] = column
            if bare:
                columns[bare] = column  # zero-copy alias
        predicate = self.predicate
        ctx = self.ctx
        emitted = 0
        for chunk in iter_batches(columns, len(picks)):
            if predicate is not None:
                flags = predicate(ctx, chunk.columns, range(chunk.length))
                sel = [pos for pos, flag in enumerate(flags) if flag is True]
                if observe and chunk.length:
                    OBS.metrics.observe(
                        "minidb.vector.filter.selectivity",
                        len(sel) / chunk.length,
                    )
                if not sel:
                    continue
                if len(sel) != chunk.length:
                    chunk = chunk.gather(sel)
            emitted += 1
            yield chunk
        if observe and emitted:
            OBS.metrics.inc("minidb.vector.batches", emitted)


class VSubqueryScan(VOp):
    """Scans a planned sub-select's materialized output column-wise.
    The inner plan routes through its own vector plan when it has one."""

    def batches(self) -> Iterator[ColumnBatch]:
        _columns, rows = self.node.plan.run()
        length = len(rows)
        columns: Dict[str, List[Any]] = {}
        for index, qualified, bare in self.node._keys:
            column = [row[index] for row in rows]
            columns[qualified] = column
            if bare:
                columns[bare] = column
        yield from iter_batches(columns, length)


class VFilter(VOp):
    """Selection-vector filter: keeps rows whose predicate is TRUE."""

    def __init__(self, child: VOp, node: Any, ctx: Dict[str, Any],
                 predicate: Kernel) -> None:
        super().__init__(node, ctx)
        self.child = child
        self.children = [child]
        self.predicate = predicate

    def batches(self) -> Iterator[ColumnBatch]:
        predicate = self.predicate
        ctx = self.ctx
        observe = OBS.enabled
        for chunk in self.child.batches():
            flags = predicate(ctx, chunk.columns, range(chunk.length))
            sel = [pos for pos, flag in enumerate(flags) if flag is True]
            if observe and chunk.length:
                OBS.metrics.observe(
                    "minidb.vector.filter.selectivity",
                    len(sel) / chunk.length,
                )
            if not sel:
                continue
            if len(sel) == chunk.length:
                yield chunk
            else:
                yield chunk.gather(sel)


class VHashJoin(VOp):
    """Equi-join over batches — single or composite key, inner or LEFT
    OUTER, with an optional residual predicate on merged rows.

    The build side is materialized column-wise with buckets of row
    indices; probing walks each left batch in row order and emits
    left-major output, matching the row path's emission order exactly.
    Composite keys reduce to one per-row value — a tuple, or ``None``
    when *any* part is NULL — so NULL-key semantics (a NULL part never
    equi-joins, exactly the row path's ``any(part is None)`` skip) and
    bucket/probe order are identical to the single-key path.  Unmatched
    left rows of an outer join emit a NULL-padded right side.
    """

    def __init__(self, left: VOp, right: VOp, node: Any,
                 ctx: Dict[str, Any], left_key_kernels: List[Kernel],
                 right_key_kernels: List[Kernel],
                 residual: Optional[Kernel]) -> None:
        super().__init__(node, ctx)
        self.left = left
        self.right = right
        self.children = [left, right]
        self.left_key_kernels = left_key_kernels
        self.right_key_kernels = right_key_kernels
        self.residual = residual

    def _key_values(self, kernels: List[Kernel],
                    chunk: ColumnBatch) -> List[Any]:
        """One join-key value per row: the bare value (single key) or a
        tuple collapsed to ``None`` when any part is NULL."""
        sel = range(chunk.length)
        if len(kernels) == 1:
            return kernels[0](self.ctx, chunk.columns, sel)
        parts = [kernel(self.ctx, chunk.columns, sel) for kernel in kernels]
        return [
            None if any(part is None for part in row) else row
            for row in zip(*parts)
        ]

    def batches(self) -> Iterator[ColumnBatch]:
        node = self.node
        ctx = self.ctx
        right_keys = node.right.env_keys
        left_keys = node.left.env_keys
        if OBS.enabled and len(self.left_key_kernels) > 1:
            OBS.metrics.inc("minidb.vector.multikey_join.count")
        right_columns: Dict[str, List[Any]] = {key: [] for key in right_keys}
        buckets: Dict[Any, List[int]] = {}
        base = 0
        right_key_kernels = self.right_key_kernels
        for chunk in self.right.batches():
            values = self._key_values(right_key_kernels, chunk)
            for key in right_keys:
                right_columns[key].extend(chunk.columns[key])
            for pos, value in enumerate(values):
                if value is None:
                    continue  # NULL never equi-joins
                bucket = buckets.get(value)
                if bucket is None:
                    buckets[value] = [base + pos]
                else:
                    bucket.append(base + pos)
            base += chunk.length
        left_key_kernels = self.left_key_kernels
        residual = self.residual
        outer = node.left_outer
        buckets_get = buckets.get
        for chunk in self.left.batches():
            values = self._key_values(left_key_kernels, chunk)
            pair_left: List[int] = []
            pair_right: List[int] = []
            counts = [0] * chunk.length
            for pos, value in enumerate(values):
                if value is None:
                    continue
                bucket = buckets_get(value)
                if bucket:
                    counts[pos] = len(bucket)
                    for row in bucket:
                        pair_left.append(pos)
                        pair_right.append(row)
            mask: Optional[List[bool]] = None
            if residual is not None and pair_left:
                merged = self._merge(
                    chunk, left_keys, pair_left, right_columns, right_keys,
                    pair_right,
                )
                mask = [
                    flag is True
                    for flag in residual(ctx, merged, range(len(pair_left)))
                ]
            if not outer:
                if not pair_left:
                    continue
                if mask is None:
                    yield ColumnBatch(
                        self._merge(chunk, left_keys, pair_left,
                                    right_columns, right_keys, pair_right),
                        len(pair_left),
                    )
                else:
                    sel = [pos for pos, keep in enumerate(mask) if keep]
                    if not sel:
                        continue
                    out_left = [pair_left[pos] for pos in sel]
                    out_right = [pair_right[pos] for pos in sel]
                    yield ColumnBatch(
                        self._merge(chunk, left_keys, out_left,
                                    right_columns, right_keys, out_right),
                        len(out_left),
                    )
                continue
            # LEFT OUTER: walk left rows in order; rows with no surviving
            # match emit a NULL-padded right side, in place.
            out_left: List[int] = []
            out_right: List[Optional[int]] = []
            cursor = 0
            for pos in range(chunk.length):
                matched = False
                for pair in range(cursor, cursor + counts[pos]):
                    if mask is None or mask[pair]:
                        matched = True
                        out_left.append(pos)
                        out_right.append(pair_right[pair])
                cursor += counts[pos]
                if not matched:
                    out_left.append(pos)
                    out_right.append(None)
            if not out_left:
                continue
            columns: Dict[str, List[Any]] = {
                key: [chunk.columns[key][pos] for pos in out_left]
                for key in left_keys
            }
            for key in right_keys:
                source = right_columns[key]
                columns[key] = [
                    None if row is None else source[row] for row in out_right
                ]
            yield ColumnBatch(columns, len(out_left))

    @staticmethod
    def _merge(chunk: ColumnBatch, left_keys: List[str],
               pair_left: List[int], right_columns: Dict[str, List[Any]],
               right_keys: List[str],
               pair_right: List[int]) -> Dict[str, List[Any]]:
        merged: Dict[str, List[Any]] = {
            key: [chunk.columns[key][pos] for pos in pair_left]
            for key in left_keys
        }
        for key in right_keys:
            source = right_columns[key]
            merged[key] = [source[row] for row in pair_right]
        return merged


#: specialized accumulator dispatch codes (see VAggregate.batches)
_K_COUNT_STAR = 0
_K_COUNT = 1
_K_SUM = 2
_K_AVG = 3
_K_MIN = 4
_K_MAX = 5
_K_GENERIC = 9

_BUILTIN_ACCUMULATORS = {
    "count": (CountAccumulator, _K_COUNT),
    "sum": (SumAccumulator, _K_SUM),
    "avg": (AvgAccumulator, _K_AVG),
    "min": (MinAccumulator, _K_MIN),
    "max": (MaxAccumulator, _K_MAX),
}


class VAggregate(VOp):
    """Hash group/aggregate over batches.

    COUNT/SUM/AVG/MIN/MAX without DISTINCT run as inlined accumulation
    loops that mirror the builtin accumulators' exact update order and
    arithmetic (so float results stay bit-identical); DISTINCT and
    registry-defined aggregates fall through to the real accumulator
    objects.  Groups are emitted in first-seen order with a
    representative first row, exactly like the row path.
    """

    def __init__(self, child: VOp, node: Any, ctx: Dict[str, Any],
                 group_kernels: List[Kernel],
                 argument_kernels: List[Optional[Kernel]],
                 kinds: List[int]) -> None:
        super().__init__(node, ctx)
        self.child = child
        self.children = [child]
        self.group_kernels = group_kernels
        self.argument_kernels = argument_kernels
        self.kinds = kinds

    def _fresh_states(self) -> List[Any]:
        node = self.node
        states: List[Any] = []
        for kind, call in zip(self.kinds, node.aggregate_calls):
            if kind == _K_COUNT_STAR or kind == _K_COUNT:
                states.append([0])
            elif kind == _K_SUM or kind == _K_MIN or kind == _K_MAX:
                states.append([None])
            elif kind == _K_AVG:
                states.append([0.0, 0])
            else:
                states.append(
                    (
                        node.functions.aggregate(call.name),
                        set() if call.distinct else None,
                    )
                )
        return states

    def batches(self) -> Iterator[ColumnBatch]:
        node = self.node
        ctx = self.ctx
        child_keys = node.child.env_keys
        group_kernels = self.group_kernels
        argument_kernels = self.argument_kernels
        kinds = self.kinds
        call_range = range(len(kinds))
        single = group_kernels[0] if len(group_kernels) == 1 else None
        groups: Dict[Any, Tuple[List[Any], List[Any]]] = {}
        order: List[Any] = []
        for chunk in self.child.batches():
            sel = range(chunk.length)
            columns = chunk.columns
            if single is not None:
                keys = single(ctx, columns, sel)
            elif group_kernels:
                keys = list(
                    zip(*[kernel(ctx, columns, sel)
                          for kernel in group_kernels])
                )
            else:
                keys = [()] * chunk.length
            values = [
                kernel(ctx, columns, sel) if kernel is not None else None
                for kernel in argument_kernels
            ]
            first_columns = [columns[key] for key in child_keys]
            for row in range(chunk.length):
                key = keys[row]
                state = groups.get(key)
                if state is None:
                    state = (
                        [column[row] for column in first_columns],
                        self._fresh_states(),
                    )
                    groups[key] = state
                    order.append(key)
                states = state[1]
                for index in call_range:
                    kind = kinds[index]
                    cell = states[index]
                    if kind == _K_COUNT_STAR:
                        cell[0] += 1
                    elif kind == _K_COUNT:
                        if values[index][row] is not None:
                            cell[0] += 1
                    elif kind == _K_SUM:
                        value = values[index][row]
                        if value is not None:
                            total = cell[0]
                            cell[0] = value if total is None else total + value
                    elif kind == _K_AVG:
                        value = values[index][row]
                        if value is not None:
                            cell[0] += value
                            cell[1] += 1
                    elif kind == _K_MIN:
                        value = values[index][row]
                        if value is not None:
                            best = cell[0]
                            if best is None or value < best:
                                cell[0] = value
                    elif kind == _K_MAX:
                        value = values[index][row]
                        if value is not None:
                            best = cell[0]
                            if best is None or value > best:
                                cell[0] = value
                    else:
                        column = values[index]
                        value = 1 if column is None else column[row]
                        accumulator, seen = cell
                        if seen is not None:
                            if value is None or value in seen:
                                continue
                            seen.add(value)
                        accumulator.add(value)
        if not groups and not node.group_exprs:
            # Global aggregate over empty input: one result row carrying
            # only the aggregate columns (a projection that references a
            # child column errors exactly like the row path's empty env).
            yield ColumnBatch(
                {
                    f"__agg_{index}": [
                        node.functions.aggregate(call.name).result()
                    ]
                    for index, call in enumerate(node.aggregate_calls)
                },
                1,
            )
            return
        length = len(order)
        out: Dict[str, List[Any]] = {key: [] for key in child_keys}
        aggregates: List[List[Any]] = [[] for _ in kinds]
        for key in order:
            first, states = groups[key]
            for column_key, value in zip(child_keys, first):
                out[column_key].append(value)
            for index in call_range:
                kind = kinds[index]
                cell = states[index]
                if kind == _K_COUNT_STAR or kind == _K_COUNT:
                    result = cell[0]
                elif kind == _K_SUM or kind == _K_MIN or kind == _K_MAX:
                    result = cell[0]
                elif kind == _K_AVG:
                    result = None if cell[1] == 0 else cell[0] / cell[1]
                else:
                    result = cell[0].result()
                aggregates[index].append(result)
        for index in call_range:
            out[f"__agg_{index}"] = aggregates[index]
        yield from iter_batches(out, length)


class VSort(VOp):
    """Materializing sort: same key values, same stable sort, so the
    output permutation is identical to the row path's."""

    def __init__(self, child: VOp, node: Any, ctx: Dict[str, Any],
                 key_kernels: List[Kernel]) -> None:
        super().__init__(node, ctx)
        self.child = child
        self.children = [child]
        self.key_kernels = key_kernels

    def batches(self) -> Iterator[ColumnBatch]:
        ctx = self.ctx
        collected: Optional[Dict[str, List[Any]]] = None
        key_columns: List[List[Any]] = [[] for _ in self.key_kernels]
        length = 0
        for chunk in self.child.batches():
            if collected is None:
                collected = {
                    key: list(column) for key, column in chunk.columns.items()
                }
            else:
                for key, column in chunk.columns.items():
                    collected[key].extend(column)
            sel = range(chunk.length)
            for keys, kernel in zip(key_columns, self.key_kernels):
                keys.extend(kernel(ctx, chunk.columns, sel))
            length += chunk.length
        if not length or collected is None:
            return
        descending = [item.descending for item in self.node.order_items]
        indices = sorted(
            range(length),
            key=lambda row: order_key(
                [keys[row] for keys in key_columns], descending
            ),
        )
        ordered = {
            key: [column[row] for row in indices]
            for key, column in collected.items()
        }
        yield from iter_batches(ordered, length)


class VLimit(VOp):
    """LIMIT/OFFSET over batches.  Only planned above a materializing
    child, where truncation cannot skip expression evaluation the row
    path would also have skipped."""

    def __init__(self, child: VOp, node: Any, ctx: Dict[str, Any]) -> None:
        super().__init__(node, ctx)
        self.child = child
        self.children = [child]

    def batches(self) -> Iterator[ColumnBatch]:
        node = self.node
        limit = node.limit
        if limit is not None and limit <= 0:
            return  # like the row path: the child is never pulled
        to_skip = node.offset
        remaining = limit
        for chunk in self.child.batches():
            if to_skip:
                if chunk.length <= to_skip:
                    to_skip -= chunk.length
                    continue
                chunk = ColumnBatch(
                    {
                        key: column[to_skip:]
                        for key, column in chunk.columns.items()
                    },
                    chunk.length - to_skip,
                )
                to_skip = 0
            if remaining is not None:
                if chunk.length >= remaining:
                    if chunk.length > remaining:
                        chunk = ColumnBatch(
                            {
                                key: column[:remaining]
                                for key, column in chunk.columns.items()
                            },
                            remaining,
                        )
                    yield chunk
                    return
                remaining -= chunk.length
            yield chunk


# ---------------------------------------------------------------------------
# the builder
# ---------------------------------------------------------------------------


def _try_kernel(expression: Any) -> Optional[Kernel]:
    try:
        return compile_kernel(expression)
    except KernelUnsupported:
        return None


def _build_node(node: Any, ctx: Dict[str, Any]) -> VOp:
    """Mirror one logical node (falling back to a row source boundary)."""
    from repro.minidb import planner as _planner

    if isinstance(node, _planner.ScanNode):
        predicate: Optional[Kernel] = None
        if node.predicate is not None:
            predicate = _try_kernel(node.predicate)
            if predicate is None:
                return VRowSource(node, ctx)
        if node.access is not None:
            if isinstance(node.access, _planner.IndexAccess):
                return VIndexScan(node, ctx, predicate)
            # Primary-key point lookups: 0/1 rows, nothing to vectorize.
            return VRowSource(node, ctx)
        return VScan(node, ctx, predicate)
    if isinstance(node, _planner.SubqueryScanNode):
        return VSubqueryScan(node, ctx)
    if isinstance(node, _planner.FilterNode):
        predicate = _try_kernel(node.predicate)
        if predicate is None:
            return VRowSource(node, ctx)
        return VFilter(_build_node(node.child, ctx), node, ctx, predicate)
    if isinstance(node, _planner.HashJoinNode):
        left_key_kernels: List[Kernel] = []
        right_key_kernels: List[Kernel] = []
        for left_expr, right_expr in zip(node.left_keys, node.right_keys):
            left_key = _try_kernel(left_expr)
            right_key = _try_kernel(right_expr)
            if left_key is None or right_key is None:
                return VRowSource(node, ctx)
            left_key_kernels.append(left_key)
            right_key_kernels.append(right_key)
        residual: Optional[Kernel] = None
        if node.residual is not None:
            residual = _try_kernel(node.residual)
            if residual is None:
                return VRowSource(node, ctx)
        return VHashJoin(
            _build_node(node.left, ctx), _build_node(node.right, ctx),
            node, ctx, left_key_kernels, right_key_kernels, residual,
        )
    if isinstance(node, _planner.AggregateNode):
        group_kernels: List[Kernel] = []
        for expression in node.group_exprs:
            kernel = _try_kernel(expression)
            if kernel is None:
                return VRowSource(node, ctx)
            group_kernels.append(kernel)
        argument_kernels: List[Optional[Kernel]] = []
        kinds: List[int] = []
        for call in node.aggregate_calls:
            if call.argument is None:
                argument_kernels.append(None)
            else:
                kernel = _try_kernel(call.argument)
                if kernel is None:
                    return VRowSource(node, ctx)
                argument_kernels.append(kernel)
            kinds.append(_call_kind(node.functions, call))
        return VAggregate(
            _build_node(node.child, ctx), node, ctx,
            group_kernels, argument_kernels, kinds,
        )
    if isinstance(node, _planner.SortNode):
        key_kernels: List[Kernel] = []
        for item in node.order_items:
            kernel = _try_kernel(item.expression)
            if kernel is None:
                return VRowSource(node, ctx)
            key_kernels.append(kernel)
        return VSort(_build_node(node.child, ctx), node, ctx, key_kernels)
    if isinstance(node, _planner.LimitNode):
        child = _build_node(node.child, ctx)
        if isinstance(child, (VSort, VAggregate)):
            return VLimit(child, node, ctx)
        # Any lazier child would make batch-eager evaluation observable
        # (see module docstring); keep the whole subtree on the row path.
        return VRowSource(node, ctx)
    # NestedLoopJoinNode, SingleRowNode, and anything newer.
    return VRowSource(node, ctx)


def _call_kind(functions: Any, call: Any) -> int:
    """Dispatch code for one aggregate call.

    Specialization applies only when the registry still maps the name to
    the builtin accumulator class — a re-registered aggregate keeps the
    generic (object-based) path and its exact semantics.
    """
    if call.distinct:
        return _K_GENERIC
    if call.argument is None:
        name = call.name.lower()
        if name == "count":
            try:
                if type(functions.aggregate("count")) is CountAccumulator:
                    return _K_COUNT_STAR
            except Exception:
                pass
        return _K_GENERIC
    entry = _BUILTIN_ACCUMULATORS.get(call.name.lower())
    if entry is None:
        return _K_GENERIC
    expected, kind = entry
    try:
        if type(functions.aggregate(call.name)) is expected:
            return kind
    except Exception:
        return _K_GENERIC
    return _K_GENERIC


# ---------------------------------------------------------------------------
# the vector plan
# ---------------------------------------------------------------------------


class VectorPlan:
    """The vectorized twin of a :class:`QueryPlan`.

    ``op_index`` maps ``id(logical node) -> vector operator`` for every
    genuinely vectorized node (EXPLAIN ANALYZE instruments these);
    ``fallback_nodes`` counts row-emit boundaries in the tree.
    """

    def __init__(self, plan: Any, root: VOp,
                 project: Callable[[ColumnBatch], Iterator[Tuple[Any, ...]]],
                 pure_projection: bool) -> None:
        self.plan = plan
        self.root = root
        self._project = project
        self.pure_projection = pure_projection
        self.op_index: Dict[int, VOp] = {}
        self.fallback_nodes = 0
        stack = [root]
        while stack:
            op = stack.pop()
            if op.vectorized:
                self.op_index[id(op.node)] = op
            else:
                self.fallback_nodes += 1
            stack.extend(op.children)

    @property
    def uses_numpy(self) -> bool:
        """True when the ndarray column layer is armed for this plan:
        the ``vector.NUMPY`` flag is on and at least one columnar scan
        feeds it.  (Per-column eligibility is decided at store build;
        the ``minidb.vector.numpy.*`` counters report actual columns.)
        Read at EXPLAIN time, so flag flips show up without replanning.
        """
        import repro.minidb.vector as _vector

        if not _vector.NUMPY:
            return False
        return any(
            isinstance(op, (VScan, VIndexScan))
            for op in self.op_index.values()
        )

    def run(self) -> Tuple[List[str], List[Tuple[Any, ...]]]:
        plan = self.plan
        columns = plan.column_names
        project = self._project
        if OBS.enabled:
            OBS.metrics.inc("minidb.vector.select.count")
            if self.fallback_nodes:
                OBS.metrics.inc(
                    "minidb.vector.fallback.nodes", self.fallback_nodes
                )
        if plan.distinct:
            if plan.post_limit is not None and plan.post_limit <= 0:
                return columns, []
            rows: List[Tuple[Any, ...]] = []
            seen: set = set()
            skipped = 0
            post_offset = plan.post_offset
            post_limit = plan.post_limit
            for chunk in self.root.batches():
                for row in project(chunk):
                    if row in seen:
                        continue
                    seen.add(row)
                    if skipped < post_offset:
                        skipped += 1
                        continue
                    rows.append(row)
                    if post_limit is not None and len(rows) >= post_limit:
                        return columns, rows
            return columns, rows
        rows = []
        for chunk in self.root.batches():
            rows.extend(project(chunk))
        return columns, rows


def _pure_projection_keys(plan: Any) -> Optional[List[str]]:
    """Mirror ``QueryPlan._build_projector``'s pure-reference check."""
    keys: List[str] = []
    for _name, expression in plan.output:
        if isinstance(expression, (ColumnRef, AggregateRef)):
            key = expression.key
            if plan.base_env.get(key) is AMBIGUOUS:
                return None
            keys.append(key)
        else:
            return None
    return keys or None


def _build_projection(
    plan: Any,
) -> Tuple[Optional[Callable[[ColumnBatch], Iterator[Tuple[Any, ...]]]], bool]:
    ctx = plan.base_env
    keys = _pure_projection_keys(plan)
    if keys is not None:

        def project_pure(chunk: ColumnBatch) -> Iterator[Tuple[Any, ...]]:
            length = chunk.length
            gathered: List[List[Any]] = []
            for key in keys:
                column = chunk.columns.get(key)
                if column is None:
                    if length == 0:
                        column = []
                    else:
                        value = ctx.get(key, _MISSING)
                        if value is _MISSING:
                            # itemgetter over a row env raises bare KeyError
                            raise KeyError(key)
                        column = [value] * length
                gathered.append(column)
            return zip(*gathered)

        return project_pure, True
    kernels: List[Kernel] = []
    for _name, expression in plan.output:
        kernel = _try_kernel(expression)
        if kernel is None:
            return None, False
        kernels.append(kernel)

    def project_kernels(chunk: ColumnBatch) -> Iterator[Tuple[Any, ...]]:
        sel = range(chunk.length)
        return zip(*[kernel(ctx, chunk.columns, sel) for kernel in kernels])

    return project_kernels, False


def build_vector_plan(plan: Any) -> Optional[VectorPlan]:
    """Build the vectorized twin of ``plan``, or ``None`` to stay row-wise."""
    ctx = plan.base_env
    root = _build_node(plan.root, ctx)
    if not root.vectorized:
        if OBS.enabled:
            OBS.metrics.inc("minidb.vector.plan.row_path")
        return None
    project, pure = _build_projection(plan)
    if project is None:
        if OBS.enabled:
            OBS.metrics.inc("minidb.vector.plan.row_path")
        return None
    if plan.distinct and plan.post_limit is not None:
        # The dedup loop stops pulling early; only a materializing root
        # plus an error-free projection keeps evaluation sets identical.
        if not (isinstance(root, (VSort, VAggregate)) and pure):
            if OBS.enabled:
                OBS.metrics.inc("minidb.vector.plan.row_path")
            return None
    if OBS.enabled:
        OBS.metrics.inc("minidb.vector.plan.routed")
    return VectorPlan(plan, root, project, pure)
