"""Batch-vectorized executor for minidb (``planner.VECTORIZE`` path).

Public surface: the :class:`ColumnBatch` container and per-table column
store (:mod:`.batch`), the vectorized expression compiler
(:mod:`.kernels`), and the operators plus dual-path router
(:mod:`.ops`).  ``build_vector_plan(plan)`` returns a
:class:`VectorPlan` twin when the plan's root is coverable, else
``None`` and the plan stays on the row path.

``NUMPY`` is the kill-switch for the optional ndarray column layer: it
auto-detects an importable numpy, honours ``REPRO_NUMPY=0``, and tests
flip it directly (``vector.NUMPY = False``).  Submodules read it late
(``_vector.NUMPY`` at call time), so flipping the flag takes effect on
the next column-store rebuild / kernel invocation without re-imports.
The flag lives here — before the submodule imports below — because
:mod:`.batch` and :mod:`.kernels` import this package to consult it.
"""

import os as _os

try:  # pragma: no cover - exercised indirectly via the NUMPY flag
    import numpy as _numpy_module  # noqa: F401
    HAS_NUMPY = True
except Exception:  # ImportError, broken install — degrade to pure python
    HAS_NUMPY = False

#: master switch for ndarray-backed columns: requires numpy, defaults on
#: when available, and ``REPRO_NUMPY=0`` pins it off for a whole run.
NUMPY = HAS_NUMPY and _os.environ.get("REPRO_NUMPY", "1") != "0"

from repro.minidb.vector.batch import (  # noqa: E402
    BATCH_SIZE,
    ColumnBatch,
    iter_batches,
    store_info,
    table_columns,
    table_store,
)
from repro.minidb.vector.kernels import (  # noqa: E402
    KernelUnsupported,
    compile_kernel,
)
from repro.minidb.vector.ops import (  # noqa: E402
    VectorPlan,
    build_vector_plan,
)

__all__ = [
    "BATCH_SIZE",
    "HAS_NUMPY",
    "NUMPY",
    "ColumnBatch",
    "KernelUnsupported",
    "VectorPlan",
    "build_vector_plan",
    "compile_kernel",
    "iter_batches",
    "store_info",
    "table_columns",
    "table_store",
]
