"""Batch-vectorized executor for minidb (``planner.VECTORIZE`` path).

Public surface: the :class:`ColumnBatch` container and per-table column
store (:mod:`.batch`), the vectorized expression compiler
(:mod:`.kernels`), and the operators plus dual-path router
(:mod:`.ops`).  ``build_vector_plan(plan)`` returns a
:class:`VectorPlan` twin when the plan's root is coverable, else
``None`` and the plan stays on the row path.
"""

from repro.minidb.vector.batch import (
    BATCH_SIZE,
    ColumnBatch,
    iter_batches,
    store_info,
    table_columns,
)
from repro.minidb.vector.kernels import KernelUnsupported, compile_kernel
from repro.minidb.vector.ops import VectorPlan, build_vector_plan

__all__ = [
    "BATCH_SIZE",
    "ColumnBatch",
    "KernelUnsupported",
    "VectorPlan",
    "build_vector_plan",
    "compile_kernel",
    "iter_batches",
    "store_info",
    "table_columns",
]
