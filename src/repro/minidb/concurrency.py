"""Readers-writer locking for the concurrent service layer.

minidb's consistency story is built on monotonic version counters
(``Table.data_version``, ``Database.schema_epoch``): every derived cache
validates against them.  That protects *staleness*, but not *torn reads* —
a scan iterating a table while another thread mutates it can observe a row
set that never existed at any version.  :class:`RWLock` closes that gap
with the classic snapshot discipline:

* any number of read statements run concurrently;
* a write statement runs exclusively, so every read sees the table set at
  one exact ``(schema_epoch, data_version)`` point — the same guarantee a
  single-threaded caller always had.

The lock is **reentrant** and **writer-preferring**:

* a thread holding the write lock may re-acquire both locks (transactions
  hold write across ``begin``/``commit`` while their statements re-enter);
* a thread holding a read lock may re-acquire read even while writers are
  queued (blocking a re-entrant read would deadlock);
* new readers queue behind waiting writers, so a steady read load cannot
  starve writes.

Lock *upgrade* (read held, write requested) is refused loudly — granting
it can deadlock two upgraders against each other, and no engine path needs
it: ``INSERT ... SELECT`` runs its inner select inside the already-held
write lock.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Dict, Iterator


class RWLock:
    """A reentrant, writer-preferring readers-writer lock."""

    def __init__(self) -> None:
        self._cond = threading.Condition()
        # thread ident -> reentrant read-hold count (writer threads that
        # re-enter the read side are tracked here too).
        self._read_holds: Dict[int, int] = {}
        self._writer: int | None = None
        self._write_depth = 0
        self._waiting_writers = 0

    # -- read side ---------------------------------------------------------

    def acquire_read(self) -> None:
        me = threading.get_ident()
        with self._cond:
            if self._writer == me or me in self._read_holds:
                # Re-entry (or write-implies-read): never blocks, or a
                # queued writer would deadlock the holder.
                self._read_holds[me] = self._read_holds.get(me, 0) + 1
                return
            while self._writer is not None or self._waiting_writers:
                self._cond.wait()
            self._read_holds[me] = 1

    def release_read(self) -> None:
        me = threading.get_ident()
        with self._cond:
            count = self._read_holds.get(me)
            if not count:
                raise RuntimeError("release_read without a matching acquire")
            if count == 1:
                del self._read_holds[me]
                if not self._read_holds:
                    self._cond.notify_all()
            else:
                self._read_holds[me] = count - 1

    # -- write side --------------------------------------------------------

    def acquire_write(self) -> None:
        me = threading.get_ident()
        with self._cond:
            if self._writer == me:
                self._write_depth += 1
                return
            if me in self._read_holds:
                raise RuntimeError(
                    "cannot upgrade a read lock to a write lock"
                )
            self._waiting_writers += 1
            try:
                while self._writer is not None or self._read_holds:
                    self._cond.wait()
                self._writer = me
                self._write_depth = 1
            finally:
                self._waiting_writers -= 1

    def release_write(self) -> None:
        me = threading.get_ident()
        with self._cond:
            if self._writer != me:
                raise RuntimeError("release_write by a non-owning thread")
            self._write_depth -= 1
            if self._write_depth == 0:
                self._writer = None
                self._cond.notify_all()

    # -- context managers --------------------------------------------------

    @contextmanager
    def read_locked(self) -> Iterator[None]:
        self.acquire_read()
        try:
            yield
        finally:
            self.release_read()

    @contextmanager
    def write_locked(self) -> Iterator[None]:
        self.acquire_write()
        try:
            yield
        finally:
            self.release_write()

    # -- introspection (tests) ---------------------------------------------

    @property
    def active_readers(self) -> int:
        with self._cond:
            return len(self._read_holds)

    @property
    def write_held(self) -> bool:
        with self._cond:
            return self._writer is not None
