"""minidb — the in-memory relational substrate.

A small but real SQL engine: typed tables with key and foreign-key
constraints, hash and sorted secondary indexes, a recursive-descent SQL
parser, a planner with predicate pushdown / index selection / hash joins,
an iterator executor with SQL three-valued logic, snapshot transactions,
and user-defined scalar functions (the hook FlexRecs uses for comparator
functions that cannot be inlined into SQL).

Quick start::

    from repro.minidb import Database

    db = Database()
    db.execute("CREATE TABLE courses (id INTEGER PRIMARY KEY, title TEXT)")
    db.execute("INSERT INTO courses VALUES (1, 'Intro to Programming')")
    print(db.query("SELECT title FROM courses WHERE id = 1").scalar())
"""

from repro.minidb.catalog import Database, IndexInfo
from repro.minidb.executor import Executor, ResultSet
from repro.minidb.expressions import Expression
from repro.minidb.functions import FunctionRegistry
from repro.minidb.indexes import HashIndex, SortedIndex
from repro.minidb.planner import QueryPlan, plan_select
from repro.minidb.schema import Column, ForeignKey, TableSchema, make_schema
from repro.minidb.table import Table
from repro.minidb.types import DataType

__all__ = [
    "Database",
    "IndexInfo",
    "Executor",
    "ResultSet",
    "Expression",
    "FunctionRegistry",
    "HashIndex",
    "SortedIndex",
    "QueryPlan",
    "plan_select",
    "Column",
    "ForeignKey",
    "TableSchema",
    "make_schema",
    "Table",
    "DataType",
]
