"""Scalar and aggregate function registries.

The engine ships a standard library (string, math, date helpers) and — key
for FlexRecs — supports *user-defined functions*.  The paper states that
FlexRecs library functions are "compiled into the SQL statements themselves;
in other cases we can rely on external functions that are called by the SQL
statements": :meth:`FunctionRegistry.register_scalar` is that external
function hook.

Scalar functions receive already-evaluated argument values and must handle
NULL (``None``) inputs; most built-ins are NULL-propagating.

Aggregate functions are implemented as small accumulator classes with
``add`` / ``result``; ``DISTINCT`` is handled by the executor before values
reach the accumulator.
"""

from __future__ import annotations

import datetime
import math
from typing import Any, Callable, Dict, List, Optional

from repro.errors import ExecutionError


def _null_propagating(function: Callable[..., Any]) -> Callable[..., Any]:
    def wrapper(*values: Any) -> Any:
        if any(value is None for value in values):
            return None
        return function(*values)

    wrapper.__name__ = function.__name__
    return wrapper


def _sql_round(value: float, digits: int = 0) -> float:
    factor = 10 ** digits
    # SQL-style half-away-from-zero rounding, not banker's rounding.
    scaled = value * factor
    rounded = math.floor(abs(scaled) + 0.5)
    result = math.copysign(rounded, scaled) / factor
    return result if digits > 0 else float(result)

def _substr(text: str, start: int, length: Optional[int] = None) -> str:
    # SQL SUBSTR is 1-based.
    begin = max(start - 1, 0)
    if length is None:
        return text[begin:]
    if length < 0:
        raise ExecutionError("SUBSTR length must be non-negative")
    return text[begin : begin + length]


def _sqrt(value: float) -> float:
    if value < 0:
        raise ExecutionError("SQRT of negative value")
    return math.sqrt(value)


def _ln(value: float) -> float:
    if value <= 0:
        raise ExecutionError("LN of non-positive value")
    return math.log(value)


def _year(value: datetime.date) -> int:
    return value.year


def _month(value: datetime.date) -> int:
    return value.month


def _coalesce(*values: Any) -> Any:
    for value in values:
        if value is not None:
            return value
    return None


def _nullif(left: Any, right: Any) -> Any:
    if left is not None and left == right:
        return None
    return left


def _sign(value: float) -> int:
    if value > 0:
        return 1
    if value < 0:
        return -1
    return 0


class FunctionRegistry:
    """Holds scalar and aggregate functions by lowercase name."""

    def __init__(self) -> None:
        self._scalars: Dict[str, Callable[..., Any]] = {}
        self._aggregates: Dict[str, Callable[[], "Accumulator"]] = {}
        # Bumped whenever a name starts resolving to a different function,
        # so cached query plans that baked in function results revalidate.
        self.version = 0
        self._install_builtins()

    # -- scalar ------------------------------------------------------------

    def register_scalar(self, name: str, function: Callable[..., Any]) -> None:
        """Register (or replace) a scalar function / UDF.

        Re-registering the *same* function object is a no-op for the
        version counter: the FlexRecs compiler re-registers workflow UDFs
        on every compile, and that must not invalidate cached plans.
        """
        key = name.lower()
        if self._scalars.get(key) is not function:
            self.version += 1
        self._scalars[key] = function

    def scalar(self, name: str) -> Callable[..., Any]:
        try:
            return self._scalars[name.lower()]
        except KeyError:
            raise ExecutionError(f"unknown function {name.upper()!r}") from None

    def has_scalar(self, name: str) -> bool:
        return name.lower() in self._scalars

    # -- aggregate -----------------------------------------------------------

    def register_aggregate(
        self, name: str, factory: Callable[[], "Accumulator"]
    ) -> None:
        key = name.lower()
        if self._aggregates.get(key) is not factory:
            self.version += 1
        self._aggregates[key] = factory

    def aggregate(self, name: str) -> "Accumulator":
        try:
            return self._aggregates[name.lower()]()
        except KeyError:
            raise ExecutionError(
                f"unknown aggregate function {name.upper()!r}"
            ) from None

    def has_aggregate(self, name: str) -> bool:
        return name.lower() in self._aggregates

    # -- builtins -------------------------------------------------------------

    def _install_builtins(self) -> None:
        scalars: Dict[str, Callable[..., Any]] = {
            "abs": _null_propagating(abs),
            "round": _null_propagating(_sql_round),
            "floor": _null_propagating(lambda v: math.floor(v)),
            "ceil": _null_propagating(lambda v: math.ceil(v)),
            "sqrt": _null_propagating(_sqrt),
            "power": _null_propagating(lambda base, exp: float(base) ** exp),
            "exp": _null_propagating(math.exp),
            "ln": _null_propagating(_ln),
            "sign": _null_propagating(_sign),
            "mod": _null_propagating(lambda a, b: a % b),
            "length": _null_propagating(len),
            "lower": _null_propagating(lambda s: s.lower()),
            "upper": _null_propagating(lambda s: s.upper()),
            "trim": _null_propagating(lambda s: s.strip()),
            "ltrim": _null_propagating(lambda s: s.lstrip()),
            "rtrim": _null_propagating(lambda s: s.rstrip()),
            "substr": _null_propagating(_substr),
            "replace": _null_propagating(lambda s, a, b: s.replace(a, b)),
            "concat": _null_propagating(lambda *parts: "".join(str(p) for p in parts)),
            "year": _null_propagating(_year),
            "month": _null_propagating(_month),
            "least": _null_propagating(min),
            "greatest": _null_propagating(max),
            "coalesce": _coalesce,
            "nullif": _nullif,
            "cast_float": _null_propagating(float),
            "cast_int": _null_propagating(int),
            "cast_text": _null_propagating(str),
        }
        self._scalars.update(scalars)
        self._aggregates.update(
            {
                "count": CountAccumulator,
                "sum": SumAccumulator,
                "avg": AvgAccumulator,
                "min": MinAccumulator,
                "max": MaxAccumulator,
                "stddev": StdDevAccumulator,
                "group_concat": GroupConcatAccumulator,
            }
        )


class Accumulator:
    """Base class for aggregate accumulators."""

    def add(self, value: Any) -> None:
        raise NotImplementedError

    def result(self) -> Any:
        raise NotImplementedError


class CountAccumulator(Accumulator):
    """COUNT(expr): counts non-NULL inputs. COUNT(*) feeds a sentinel."""

    def __init__(self) -> None:
        self.count = 0

    def add(self, value: Any) -> None:
        if value is not None:
            self.count += 1

    def result(self) -> int:
        return self.count


class SumAccumulator(Accumulator):
    def __init__(self) -> None:
        self.total: Optional[float] = None

    def add(self, value: Any) -> None:
        if value is None:
            return
        if self.total is None:
            self.total = value
        else:
            self.total += value

    def result(self) -> Optional[float]:
        return self.total


class AvgAccumulator(Accumulator):
    def __init__(self) -> None:
        self.total = 0.0
        self.count = 0

    def add(self, value: Any) -> None:
        if value is None:
            return
        self.total += value
        self.count += 1

    def result(self) -> Optional[float]:
        if self.count == 0:
            return None
        return self.total / self.count


class MinAccumulator(Accumulator):
    def __init__(self) -> None:
        self.best: Any = None

    def add(self, value: Any) -> None:
        if value is None:
            return
        if self.best is None or value < self.best:
            self.best = value

    def result(self) -> Any:
        return self.best


class MaxAccumulator(Accumulator):
    def __init__(self) -> None:
        self.best: Any = None

    def add(self, value: Any) -> None:
        if value is None:
            return
        if self.best is None or value > self.best:
            self.best = value

    def result(self) -> Any:
        return self.best


class StdDevAccumulator(Accumulator):
    """Population standard deviation via Welford's algorithm."""

    def __init__(self) -> None:
        self.count = 0
        self.mean = 0.0
        self.m2 = 0.0

    def add(self, value: Any) -> None:
        if value is None:
            return
        self.count += 1
        delta = value - self.mean
        self.mean += delta / self.count
        self.m2 += delta * (value - self.mean)

    def result(self) -> Optional[float]:
        if self.count == 0:
            return None
        return math.sqrt(self.m2 / self.count)


class GroupConcatAccumulator(Accumulator):
    """Concatenate non-NULL text values with ',' in arrival order."""

    def __init__(self) -> None:
        self.parts: List[str] = []

    def add(self, value: Any) -> None:
        if value is not None:
            self.parts.append(str(value))

    def result(self) -> Optional[str]:
        if not self.parts:
            return None
        return ",".join(self.parts)
