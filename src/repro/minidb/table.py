"""Row storage for a single table.

Rows are stored as Python lists in insertion order.  A primary-key hash map
enforces uniqueness and gives O(1) point lookup; secondary indexes (see
:mod:`repro.minidb.indexes`) are maintained incrementally on every mutation.

Deletes use tombstone-free compaction semantics: a delete physically removes
the row, and row identifiers (``rowid``) are stable handles that are never
reused within a table's lifetime.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.errors import IntegrityError, SchemaError
from repro.minidb.schema import TableSchema
from repro.minidb.types import coerce

Row = Tuple[Any, ...]


class Table:
    """In-memory heap of rows conforming to a :class:`TableSchema`."""

    def __init__(self, schema: TableSchema) -> None:
        self.schema = schema
        self._rows: Dict[int, Row] = {}
        self._next_rowid = 0
        self._pk_positions = tuple(
            schema.column_position(name) for name in schema.primary_key
        )
        self._unique_positions = tuple(
            tuple(schema.column_position(name) for name in key)
            for key in schema.unique_keys
        )
        self._pk_map: Dict[Tuple[Any, ...], int] = {}
        self._unique_maps: List[Dict[Tuple[Any, ...], int]] = [
            {} for _ in self._unique_positions
        ]
        # Secondary indexes registered by the catalog: name -> (index, positions)
        self._indexes: Dict[str, "_IndexHook"] = {}
        # Monotonic version counters consumed by the plan cache.
        # ``data_version`` moves on every mutation; ``indexed_version``
        # moves only when indexed state changes (DML while secondary
        # indexes exist, or index attach/detach).
        self._data_version = 0
        self._indexed_version = 0

    def _bump_versions(self) -> None:
        self._data_version += 1
        if self._indexes:
            self._indexed_version += 1

    @property
    def data_version(self) -> int:
        # Coherency counter for every derived cache of this table's rows:
        # plan-cache snapshots, FlexRecs extend vectors, and the columnar
        # projection in repro.minidb.vector.batch all validate against it.
        return self._data_version

    @property
    def indexed_version(self) -> int:
        return self._indexed_version

    def fast_forward_versions(
        self, data_version: int, indexed_version: int
    ) -> None:
        """Advance the counters to at least the given values.

        Used by :mod:`repro.minidb.persist` when reloading a saved
        database: the bulk load bumps the counters from zero, but a
        restored database must not reuse version numbers the saved one
        already spent — a plan cached against the old instance's state
        could otherwise validate against the reloaded one.  Counters only
        move forward; a manifest older than the live state is a no-op.
        """
        self._data_version = max(self._data_version, data_version)
        self._indexed_version = max(self._indexed_version, indexed_version)

    # -- basic properties --------------------------------------------------

    @property
    def name(self) -> str:
        return self.schema.name

    def __len__(self) -> int:
        return len(self._rows)

    def rows(self) -> Iterator[Row]:
        """Iterate rows in insertion order."""
        return iter(self._rows.values())

    def rows_with_ids(self) -> Iterator[Tuple[int, Row]]:
        return iter(self._rows.items())

    def get(self, rowid: int) -> Row:
        return self._rows[rowid]

    # -- validation ---------------------------------------------------------

    def _normalize(self, values: Sequence[Any]) -> Row:
        columns = self.schema.columns
        if len(values) != len(columns):
            raise SchemaError(
                f"table {self.name!r} expects {len(columns)} values, "
                f"got {len(values)}"
            )
        normalized = []
        for value, column in zip(values, columns):
            coerced = coerce(value, column.dtype)
            if coerced is None and (
                not column.nullable or self.schema.is_pk_column(column.name)
            ):
                raise IntegrityError(
                    f"column {self.name}.{column.name} may not be NULL"
                )
            normalized.append(coerced)
        return tuple(normalized)

    def _pk_of(self, row: Row) -> Optional[Tuple[Any, ...]]:
        if not self._pk_positions:
            return None
        return tuple(row[position] for position in self._pk_positions)

    # -- mutation -----------------------------------------------------------

    def insert(self, values: Sequence[Any]) -> int:
        """Insert one row (positional values), returning its rowid."""
        row = self._normalize(values)
        pk = self._pk_of(row)
        if pk is not None and pk in self._pk_map:
            raise IntegrityError(
                f"duplicate primary key {pk!r} in table {self.name!r}"
            )
        unique_hits = []
        for positions, unique_map in zip(self._unique_positions, self._unique_maps):
            key = tuple(row[position] for position in positions)
            if None not in key and key in unique_map:
                raise IntegrityError(
                    f"unique constraint violated in {self.name!r}: {key!r}"
                )
            unique_hits.append(key)
        rowid = self._next_rowid
        self._next_rowid += 1
        self._rows[rowid] = row
        if pk is not None:
            self._pk_map[pk] = rowid
        for key, unique_map in zip(unique_hits, self._unique_maps):
            if None not in key:
                unique_map[key] = rowid
        for hook in self._indexes.values():
            hook.insert(rowid, row)
        self._bump_versions()
        return rowid

    def insert_dict(self, record: Dict[str, Any]) -> int:
        """Insert a row given a column-name → value mapping.

        Missing columns default to NULL; unknown names raise SchemaError.
        """
        values: List[Any] = [None] * len(self.schema.columns)
        for column_name, value in record.items():
            values[self.schema.column_position(column_name)] = value
        return self.insert(values)

    def delete_rowid(self, rowid: int) -> None:
        self._remove_row(rowid)

    def _remove_row(self, rowid: int) -> None:
        """Physically remove a row, bypassing referential checks."""
        row = self._rows.pop(rowid)
        pk = self._pk_of(row)
        if pk is not None:
            self._pk_map.pop(pk, None)
        for positions, unique_map in zip(self._unique_positions, self._unique_maps):
            key = tuple(row[position] for position in positions)
            if None not in key:
                unique_map.pop(key, None)
        for hook in self._indexes.values():
            hook.delete(rowid, row)
        self._bump_versions()

    def delete_where(self, predicate: Callable[[Row], bool]) -> int:
        """Delete rows matching ``predicate``; return the count removed."""
        doomed = [rowid for rowid, row in self._rows.items() if predicate(row)]
        for rowid in doomed:
            self.delete_rowid(rowid)
        return len(doomed)

    def update_rowid(self, rowid: int, new_values: Sequence[Any]) -> None:
        """Replace the row at ``rowid`` with new (full) values."""
        old = self._rows[rowid]
        row = self._normalize(new_values)
        pk = self._pk_of(row)
        old_pk = self._pk_of(old)
        if pk is not None and pk != old_pk and pk in self._pk_map:
            raise IntegrityError(
                f"duplicate primary key {pk!r} in table {self.name!r}"
            )
        for positions, unique_map in zip(self._unique_positions, self._unique_maps):
            key = tuple(row[position] for position in positions)
            old_key = tuple(old[position] for position in positions)
            if None not in key and key != old_key and key in unique_map:
                raise IntegrityError(
                    f"unique constraint violated in {self.name!r}: {key!r}"
                )
        self._remove_row(rowid)
        # Re-insert under the same rowid to keep handles stable.
        self._rows[rowid] = row
        if pk is not None:
            self._pk_map[pk] = rowid
        for positions, unique_map in zip(self._unique_positions, self._unique_maps):
            key = tuple(row[position] for position in positions)
            if None not in key:
                unique_map[key] = rowid
        for hook in self._indexes.values():
            hook.insert(rowid, row)
        self._bump_versions()

    def update_where(
        self,
        predicate: Callable[[Row], bool],
        transform: Callable[[Row], Sequence[Any]],
    ) -> int:
        """Update all rows matching ``predicate`` via ``transform``."""
        touched = [
            (rowid, row) for rowid, row in list(self._rows.items()) if predicate(row)
        ]
        for rowid, row in touched:
            self.update_rowid(rowid, transform(row))
        return len(touched)

    def clear(self) -> None:
        self._rows.clear()
        self._pk_map.clear()
        for unique_map in self._unique_maps:
            unique_map.clear()
        for hook in self._indexes.values():
            hook.clear()
        self._bump_versions()

    # -- lookup ---------------------------------------------------------------

    def lookup_pk(self, key: Sequence[Any]) -> Optional[Row]:
        """Point lookup by primary key; None when absent."""
        if not self._pk_positions:
            raise SchemaError(f"table {self.name!r} has no primary key")
        rowid = self._pk_map.get(tuple(key))
        return None if rowid is None else self._rows[rowid]

    def contains_pk(self, key: Sequence[Any]) -> bool:
        return bool(self._pk_positions) and tuple(key) in self._pk_map

    def scan_equal(self, column: str, value: Any) -> Iterator[Row]:
        """All rows whose ``column`` equals ``value`` (uses index if present)."""
        position = self.schema.column_position(column)
        for hook in self._indexes.values():
            if hook.positions == (position,):
                for rowid in hook.index.find((value,)):
                    yield self._rows[rowid]
                return
        for row in self._rows.values():
            if row[position] == value:
                yield row

    # -- index plumbing (catalog-managed) -------------------------------------

    def attach_index(self, name: str, index: "Any", columns: Sequence[str]) -> None:
        positions = tuple(self.schema.column_position(c) for c in columns)
        hook = _IndexHook(index, positions)
        for rowid, row in self._rows.items():
            hook.insert(rowid, row)
        self._indexes[name] = hook
        self._indexed_version += 1

    def detach_index(self, name: str) -> None:
        self._indexes.pop(name, None)
        self._indexed_version += 1

    def index_names(self) -> List[str]:
        return list(self._indexes)

    # -- snapshots (transactions) ----------------------------------------------

    def snapshot(self) -> Dict[int, Row]:
        """A shallow copy of the row map (rows are immutable tuples)."""
        return dict(self._rows)

    def restore(self, snap: Dict[int, Row], next_rowid: int) -> None:
        """Restore a prior snapshot, rebuilding key maps and indexes."""
        self._rows = dict(snap)
        self._next_rowid = next_rowid
        self._pk_map = {}
        self._unique_maps = [{} for _ in self._unique_positions]
        for rowid, row in self._rows.items():
            pk = self._pk_of(row)
            if pk is not None:
                self._pk_map[pk] = rowid
            for positions, unique_map in zip(
                self._unique_positions, self._unique_maps
            ):
                key = tuple(row[position] for position in positions)
                if None not in key:
                    unique_map[key] = rowid
        for hook in self._indexes.values():
            hook.clear()
            for rowid, row in self._rows.items():
                hook.insert(rowid, row)
        self._bump_versions()

    @property
    def next_rowid(self) -> int:
        return self._next_rowid


class _IndexHook:
    """Binds a secondary index to the column positions it covers."""

    def __init__(self, index: Any, positions: Tuple[int, ...]) -> None:
        self.index = index
        self.positions = positions

    def _key(self, row: Row) -> Tuple[Any, ...]:
        return tuple(row[position] for position in self.positions)

    def insert(self, rowid: int, row: Row) -> None:
        self.index.insert(self._key(row), rowid)

    def delete(self, rowid: int, row: Row) -> None:
        self.index.delete(self._key(row), rowid)

    def clear(self) -> None:
        self.index.clear()
