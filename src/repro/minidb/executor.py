"""Statement execution: dispatch, DML, DDL, and result materialization.

:class:`Executor` is owned by a :class:`~repro.minidb.catalog.Database` and
is stateless between statements.  SELECT/UNION statements are planned by
:mod:`repro.minidb.planner` and produce a :class:`ResultSet`; DML returns
an affected-row count; DDL returns ``None``.
"""

from __future__ import annotations

import time
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.errors import (
    ExecutionError,
    MiniDBError,
    PlannerError,
    SchemaError,
    UnknownColumnError,
)
from repro.minidb.expressions import Env, Expression
from repro.minidb.plancache import parsed_statement, snapshot_plan
from repro.minidb.planner import (
    QueryPlan,
    plan_children,
    plan_select,
    walk_plan,
)
from repro.obs import OBS
from repro.minidb.schema import Column, TableSchema
from repro.minidb.sql.ast import (
    CreateIndexStatement,
    CreateTableStatement,
    CreateViewStatement,
    DeleteStatement,
    DropIndexStatement,
    DropTableStatement,
    DropViewStatement,
    ExplainStatement,
    InsertStatement,
    SelectStatement,
    Statement,
    UnionStatement,
    UpdateStatement,
)
from repro.minidb.sql.parser import parse_statement
from repro.minidb.types import format_value

Row = Tuple[Any, ...]


class ResultSet:
    """Materialized query output: ordered columns plus row tuples."""

    def __init__(self, columns: List[str], rows: List[Row]) -> None:
        self.columns = columns
        self.rows = rows

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self) -> Iterator[Row]:
        return iter(self.rows)

    def __bool__(self) -> bool:
        return bool(self.rows)

    def column_index(self, name: str) -> int:
        lowered = name.lower()
        for position, column in enumerate(self.columns):
            if column.lower() == lowered:
                return position
        raise UnknownColumnError(f"result has no column {name!r}")

    def column(self, name: str) -> List[Any]:
        position = self.column_index(name)
        return [row[position] for row in self.rows]

    def to_dicts(self) -> List[Dict[str, Any]]:
        return [dict(zip(self.columns, row)) for row in self.rows]

    def first(self) -> Optional[Dict[str, Any]]:
        if not self.rows:
            return None
        return dict(zip(self.columns, self.rows[0]))

    def scalar(self) -> Any:
        """The single value of a one-row, one-column result."""
        if len(self.rows) != 1 or len(self.columns) != 1:
            raise MiniDBError(
                f"scalar() requires a 1x1 result, got "
                f"{len(self.rows)}x{len(self.columns)}"
            )
        return self.rows[0][0]

    def pretty(self, max_rows: int = 20) -> str:
        """A fixed-width text rendering (for examples and the REPL)."""
        shown = self.rows[:max_rows]
        cells = [[format_value(value) for value in row] for row in shown]
        widths = [len(column) for column in self.columns]
        for row in cells:
            for position, cell in enumerate(row):
                widths[position] = max(widths[position], len(cell))
        header = " | ".join(
            column.ljust(width) for column, width in zip(self.columns, widths)
        )
        rule = "-+-".join("-" * width for width in widths)
        body = [
            " | ".join(cell.ljust(width) for cell, width in zip(row, widths))
            for row in cells
        ]
        lines = [header, rule] + body
        if len(self.rows) > max_rows:
            lines.append(f"... ({len(self.rows) - max_rows} more rows)")
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<ResultSet {len(self.rows)} rows x {len(self.columns)} cols>"


class NodeStats:
    """Per-plan-node execution stats collected by EXPLAIN ANALYZE.

    ``time_ms`` is *inclusive* wall time (a parent's clock runs while it
    pulls from its children, as in every EXPLAIN ANALYZE dialect);
    ``rows_in`` is derived after the run as the sum of the children's
    ``rows_out`` — the same stream counted once, so accounting balances
    by construction and the tests can assert it end to end.
    """

    __slots__ = (
        "label", "rows_out", "rows_in", "time_ms", "batches", "children"
    )

    def __init__(self, label: str) -> None:
        self.label = label
        self.rows_out = 0
        self.rows_in = 0
        self.time_ms = 0.0
        #: column batches emitted when the node ran vectorized (0 on the
        #: row path — the two wrappers shadow the same stats object, but
        #: only the executed path's wrapper ever fires)
        self.batches = 0
        self.children: List["NodeStats"] = []

    def to_dict(self) -> Dict[str, Any]:
        return {
            "label": self.label,
            "rows_in": self.rows_in,
            "rows_out": self.rows_out,
            "time_ms": self.time_ms,
            "batches": self.batches,
            "children": [child.to_dict() for child in self.children],
        }


class AnalyzeReport:
    """Result of EXPLAIN ANALYZE: the rows plus the annotated plan."""

    def __init__(
        self,
        result: "ResultSet",
        lines: List[str],
        root: NodeStats,
        total_ms: float,
        cached: bool,
        compiled: bool,
        vectorized: bool = False,
    ) -> None:
        self.result = result
        self.lines = lines
        self.root = root
        self.total_ms = total_ms
        self.cached = cached
        self.compiled = compiled
        self.vectorized = vectorized

    @property
    def text(self) -> str:
        return "\n".join(self.lines)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "total_ms": self.total_ms,
            "cached": self.cached,
            "compiled": self.compiled,
            "vectorized": self.vectorized,
            "row_count": len(self.result),
            "plan": self.root.to_dict(),
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<AnalyzeReport {len(self.result)} rows "
            f"{self.total_ms:.3f}ms cached={self.cached}>"
        )


def _attach_node_stats(node) -> NodeStats:
    """Shadow ``node.rows`` with a counting/timing wrapper.

    The wrapper is installed as an *instance* attribute over the class
    method; callers must remove it afterwards (``del node.__dict__``)
    because cached plans are shared across executions and must never
    stay instrumented — the noninterference suite pins this.
    """
    stats = NodeStats(node.describe()[0])
    original = node.rows
    perf_counter = time.perf_counter

    def timed() -> Iterator[Any]:
        # Some nodes (Sort) do all their work eagerly in rows() itself
        # rather than lazily in a generator — time the call too.
        started = perf_counter()
        iterator = original()
        stats.time_ms += (perf_counter() - started) * 1000.0
        while True:
            started = perf_counter()
            try:
                env = next(iterator)
            except StopIteration:
                stats.time_ms += (perf_counter() - started) * 1000.0
                return
            stats.time_ms += (perf_counter() - started) * 1000.0
            stats.rows_out += 1
            yield env

    node.rows = timed
    return stats


def _attach_vop_stats(vop, stats: NodeStats) -> None:
    """Shadow a vector operator's ``batches`` with a counting wrapper.

    The wrapper feeds the *same* :class:`NodeStats` as the logical node's
    ``rows`` wrapper (keyed by the logical node), so the rendered tree and
    the rows_in derivation are path-agnostic: whichever pipeline actually
    executes contributes the counts.  Same instance-attribute discipline
    as :func:`_attach_node_stats` — callers must pop it afterwards.
    """
    original = vop.batches
    perf_counter = time.perf_counter

    def timed() -> Iterator[Any]:
        started = perf_counter()
        iterator = original()
        stats.time_ms += (perf_counter() - started) * 1000.0
        while True:
            started = perf_counter()
            try:
                chunk = next(iterator)
            except StopIteration:
                stats.time_ms += (perf_counter() - started) * 1000.0
                return
            stats.time_ms += (perf_counter() - started) * 1000.0
            stats.batches += 1
            stats.rows_out += chunk.length
            yield chunk

    vop.batches = timed


def _link_node_stats(node, stats: Dict[int, NodeStats]) -> NodeStats:
    """Build the stats tree and derive rows_in from children's rows_out."""
    own = stats[id(node)]
    for child in plan_children(node):
        child_stats = _link_node_stats(child, stats)
        own.children.append(child_stats)
        own.rows_in += child_stats.rows_out
    return own


def _analyze_node_lines(record: NodeStats, indent: int) -> List[str]:
    batches = f" batches={record.batches}" if record.batches else ""
    lines = [
        "  " * indent
        + f"{record.label} (in={record.rows_in} out={record.rows_out} "
        f"time={record.time_ms:.3f}ms{batches})"
    ]
    for child in record.children:
        lines.extend(_analyze_node_lines(child, indent + 1))
    return lines


def _profile_node_lines(record: NodeStats, indent: int) -> List[str]:
    lines = ["  " * indent + f"{record.label} -> {record.rows_out} rows"]
    for child in record.children:
        lines.extend(_profile_node_lines(child, indent + 1))
    return lines


class Executor:
    """Executes parsed statements against one Database."""

    def __init__(self, database: Any) -> None:
        self.database = database

    # -- entry points -----------------------------------------------------

    def execute_sql(
        self, sql: str, params: Optional[Sequence[Any]] = None
    ) -> Any:
        statement, canonical, _count = parsed_statement(sql)
        return self.execute_statement(
            statement, params=params, canonical=canonical
        )

    #: statement classes that only read; everything else mutates catalog
    #: or table state and takes the exclusive side of the database lock
    READ_STATEMENTS = (SelectStatement, ExplainStatement, UnionStatement)

    def execute_statement(
        self,
        statement: Statement,
        params: Optional[Sequence[Any]] = None,
        canonical: Optional[str] = None,
    ) -> Any:
        if OBS.enabled:
            OBS.metrics.inc(f"minidb.statement.{type(statement).__name__}")
        # Readers-writer discipline: reads share the lock and run in
        # parallel, writes run exclusively, so every statement sees the
        # table set at one exact (schema_epoch, data_version) point.
        rwlock = self.database.rwlock
        if isinstance(statement, self.READ_STATEMENTS):
            with rwlock.read_locked():
                return self._dispatch_statement(
                    statement, params=params, canonical=canonical
                )
        with rwlock.write_locked():
            return self._dispatch_statement(
                statement, params=params, canonical=canonical
            )

    def _dispatch_statement(
        self,
        statement: Statement,
        params: Optional[Sequence[Any]] = None,
        canonical: Optional[str] = None,
    ) -> Any:
        if isinstance(statement, SelectStatement):
            return self._run_select(statement, params=params, canonical=canonical)
        if isinstance(statement, ExplainStatement):
            return self._run_explain(statement, params=params)
        if isinstance(statement, UnionStatement):
            return self._run_union(statement, params=params)
        if isinstance(statement, InsertStatement):
            return self._run_insert(statement, params=params)
        if isinstance(statement, UpdateStatement):
            return self._run_update(statement, params=params)
        if isinstance(statement, DeleteStatement):
            return self._run_delete(statement, params=params)
        if isinstance(statement, CreateTableStatement):
            return self._run_create_table(statement)
        if isinstance(statement, CreateIndexStatement):
            self.database.create_index(
                statement.name, statement.table, statement.columns, statement.kind
            )
            return None
        if isinstance(statement, CreateViewStatement):
            self.database.create_view(statement.name, statement.query)
            return None
        if isinstance(statement, DropTableStatement):
            self.database.drop_table(statement.name, if_exists=statement.if_exists)
            return None
        if isinstance(statement, DropIndexStatement):
            self.database.drop_index(statement.name)
            return None
        if isinstance(statement, DropViewStatement):
            self.database.drop_view(statement.name, if_exists=statement.if_exists)
            return None
        raise MiniDBError(f"unsupported statement {type(statement).__name__}")

    def profile(self, sql: str) -> Tuple[ResultSet, str]:
        """Execute a SELECT and report actual row counts per plan node.

        Legacy row-count rendering kept for compatibility; it shares the
        EXPLAIN ANALYZE instrumentation (see :meth:`analyze`) but reports
        only ``-> N rows`` per operator.
        """
        statement = parse_statement(sql)
        if not isinstance(statement, SelectStatement):
            raise PlannerError("profile supports only SELECT statements")
        with self.database.rwlock.read_locked():
            plan = plan_select(self.database, statement)
            result, root, _total_ms = self._run_instrumented(plan, params=None)
        lines = [f"Project -> {len(result)} rows"]
        lines.extend(_profile_node_lines(root, indent=1))
        return result, "\n".join(lines)

    def analyze(
        self, sql: str, params: Optional[Sequence[Any]] = None
    ) -> AnalyzeReport:
        """EXPLAIN ANALYZE: execute a SELECT, annotate every plan node.

        Accepts plain SELECT text or a full ``EXPLAIN [ANALYZE] SELECT``
        statement; either way the query runs once and the report carries
        the result set alongside per-node rows-in/rows-out and wall time.
        """
        statement, canonical, _count = parsed_statement(sql)
        if isinstance(statement, ExplainStatement):
            statement = statement.query
            canonical = None
        if not isinstance(statement, SelectStatement):
            raise PlannerError("ANALYZE supports only SELECT statements")
        with self.database.rwlock.read_locked():
            return self._analyze_select(
                statement, params=params, canonical=canonical
            )

    def _analyze_select(
        self,
        statement: SelectStatement,
        params: Optional[Sequence[Any]] = None,
        canonical: Optional[str] = None,
    ) -> AnalyzeReport:
        plan, cached = self.plan_for(statement, canonical)
        with plan.exec_lock:
            plan.bind_parameters(params or ())
            result, root, total_ms = self._run_instrumented(plan, params=params)
        lines: List[str] = []
        indent = 0
        if plan.post_limit is not None or plan.post_offset:
            lines.append(
                f"Limit({plan.post_limit} offset {plan.post_offset}) "
                f"(out={len(result)})"
            )
            indent = 1
        lines.append(
            "  " * indent
            + f"{plan.head_line()} (out={len(result)} time={total_ms:.3f}ms)"
        )
        lines.extend(_analyze_node_lines(root, indent + 1))
        # Same marker placement as plain EXPLAIN: first line of the plan.
        if cached:
            lines[0] += " [cached]"
        if getattr(plan, "compiled", False):
            lines[0] += " [compiled-expr]"
        vector_plan = getattr(plan, "vector", None)
        vectorized = vector_plan is not None
        if vectorized:
            lines[0] += " [vectorized]"
            if vector_plan.uses_numpy:
                lines[0] += " [numpy]"
        return AnalyzeReport(
            result=result,
            lines=lines,
            root=root,
            total_ms=total_ms,
            cached=cached,
            compiled=bool(getattr(plan, "compiled", False)),
            vectorized=vectorized,
        )

    def _run_instrumented(
        self, plan: QueryPlan, params: Optional[Sequence[Any]]
    ) -> Tuple[ResultSet, NodeStats, float]:
        """Run ``plan`` with every node's rows() counted and timed.

        Instrumentation shadows each node's ``rows`` with an instance
        attribute and is unconditionally removed afterwards — the plan
        instance may live in the plan cache and must come back pristine.
        """
        nodes = list(walk_plan(plan.root))
        vector_plans = [plan.vector] if plan.vector is not None else []
        for node in nodes:
            inner = getattr(node, "plan", None)
            if inner is not None and getattr(inner, "vector", None) is not None:
                vector_plans.append(inner.vector)
        vops: List[Any] = []
        stats: Dict[int, NodeStats] = {}
        try:
            for node in nodes:
                stats[id(node)] = _attach_node_stats(node)
            # Vectorized twins share the logical node's stats object, so
            # counts land in one place no matter which path executed.
            for vector_plan in vector_plans:
                for node_id, vop in vector_plan.op_index.items():
                    shared = stats.get(node_id)
                    if shared is not None:
                        _attach_vop_stats(vop, shared)
                        vops.append(vop)
            started = time.perf_counter()
            columns, rows = plan.run()
            total_ms = (time.perf_counter() - started) * 1000.0
        finally:
            for node in nodes:
                node.__dict__.pop("rows", None)
            for vop in vops:
                vop.__dict__.pop("batches", None)
        root = _link_node_stats(plan.root, stats)
        return ResultSet(columns, rows), root, total_ms

    def explain(self, sql: str) -> str:
        statement = parse_statement(sql)
        with self.database.rwlock.read_locked():
            return self._explain_parsed(statement)

    def _explain_parsed(self, statement: Statement) -> str:
        if isinstance(statement, SelectStatement):
            return "\n".join(plan_select(self.database, statement).describe())
        if isinstance(statement, UnionStatement):
            lines: List[str] = [
                "Union" + (" All" if statement.all else "")
            ]
            for part in statement.parts:
                lines.extend(
                    "  " + line
                    for line in plan_select(self.database, part).describe()
                )
            return "\n".join(lines)
        raise PlannerError("EXPLAIN supports only SELECT statements")

    # -- queries -----------------------------------------------------------

    def plan_for(
        self, statement: SelectStatement, canonical: Optional[str] = None
    ) -> Tuple[QueryPlan, bool]:
        """Fetch a valid cached plan for ``statement``, or plan and cache it.

        Returns ``(plan, was_cached)``.  Cache entries are keyed by the
        statement's canonical SQL text plus its parameter base (a UNION
        arm's ``?`` placeholders are numbered after the preceding arms',
        so identical text can carry different parameter indices) and
        validated against the database's schema epoch and table/function
        version counters; a stale entry is transparently re-planned here.
        """
        database = self.database
        if canonical is None:
            canonical = statement.to_sql()
        key = (canonical, getattr(statement, "parameter_base", 0))
        entry = database._plan_cache.get(key)
        if entry is not None and entry.is_valid(database):
            if OBS.enabled:
                OBS.metrics.inc("minidb.plan_cache.hit")
            return entry.plan, True
        plan = plan_select(database, statement)
        database._plan_cache.put(key, snapshot_plan(database, plan))
        if OBS.enabled:
            OBS.metrics.inc("minidb.plan_cache.miss")
        return plan, False

    def _run_select(
        self,
        statement: SelectStatement,
        params: Optional[Sequence[Any]] = None,
        canonical: Optional[str] = None,
    ) -> ResultSet:
        if not OBS.enabled:
            plan, _cached = self.plan_for(statement, canonical)
            # Cached plans are shared: binding and running must not
            # interleave with another thread executing the same plan.
            with plan.exec_lock:
                plan.bind_parameters(params or ())
                columns, rows = plan.run()
            return ResultSet(columns, rows)
        with OBS.tracer.span("minidb.select") as span:
            started = time.perf_counter()
            plan, cached = self.plan_for(statement, canonical)
            with plan.exec_lock:
                plan.bind_parameters(params or ())
                columns, rows = plan.run()
            elapsed_ms = (time.perf_counter() - started) * 1000.0
            span.set(rows=len(rows), cached=cached)
            OBS.metrics.inc("minidb.select.count")
            OBS.metrics.observe("minidb.select.ms", elapsed_ms)
            if elapsed_ms >= OBS.slow_log.threshold_ms:
                sql = canonical if canonical is not None else statement.to_sql()
                OBS.slow_log.offer(
                    sql,
                    elapsed_ms,
                    plan="\n".join(plan.describe()),
                    attrs={"rows": len(rows), "cached": cached},
                )
        return ResultSet(columns, rows)

    def _run_explain(
        self,
        statement: ExplainStatement,
        params: Optional[Sequence[Any]] = None,
    ) -> ResultSet:
        if statement.analyze:
            # EXPLAIN ANALYZE runs the query and returns the annotated
            # plan (the rows themselves come back via Database.analyze).
            report = self._analyze_select(statement.query, params=params)
            return ResultSet(
                ["QUERY PLAN"], [(line,) for line in report.lines]
            )
        plan, cached = self.plan_for(statement.query)
        lines = plan.describe()
        head = lines[0] + (" [cached]" if cached else "")
        if getattr(plan, "compiled", False):
            head += " [compiled-expr]"
        vector_plan = getattr(plan, "vector", None)
        if vector_plan is not None:
            head += " [vectorized]"
            if vector_plan.uses_numpy:
                head += " [numpy]"
        return ResultSet(
            ["QUERY PLAN"], [(line,) for line in [head] + lines[1:]]
        )

    def _run_union(
        self,
        statement: UnionStatement,
        params: Optional[Sequence[Any]] = None,
    ) -> ResultSet:
        results = [
            self._run_select(part, params=params) for part in statement.parts
        ]
        width = len(results[0].columns)
        for result in results[1:]:
            if len(result.columns) != width:
                raise ExecutionError(
                    "UNION parts have different column counts: "
                    f"{width} vs {len(result.columns)}"
                )
        rows: List[Row] = []
        if statement.all:
            for result in results:
                rows.extend(result.rows)
        else:
            seen = set()
            for result in results:
                for row in result.rows:
                    if row not in seen:
                        seen.add(row)
                        rows.append(row)
        columns = results[0].columns
        if statement.order_by:
            from repro.minidb.expressions import ColumnRef, order_key

            positions = []
            for item in statement.order_by:
                expression = item.expression
                if not isinstance(expression, ColumnRef) or expression.qualifier:
                    raise PlannerError(
                        "UNION ORDER BY must reference output column names"
                    )
                lowered = expression.column.lower()
                matches = [
                    index
                    for index, column in enumerate(columns)
                    if column.lower() == lowered
                ]
                if not matches:
                    raise UnknownColumnError(
                        f"UNION output has no column {expression.column!r}"
                    )
                positions.append((matches[0], item.descending))
            rows.sort(
                key=lambda row: order_key(
                    [row[position] for position, _d in positions],
                    [descending for _p, descending in positions],
                )
            )
        if statement.limit is not None:
            rows = rows[: statement.limit]
        return ResultSet(columns, rows)

    # -- DML ---------------------------------------------------------------

    def _constant_env(self, params: Optional[Sequence[Any]] = None) -> Env:
        env: Env = {"__functions__": self.database.functions}
        if params is not None:
            env["__params__"] = tuple(params)
        return env

    def _run_insert(
        self,
        statement: InsertStatement,
        params: Optional[Sequence[Any]] = None,
    ) -> int:
        table = self.database.table(statement.table)
        if statement.select is not None:
            source = self._run_select(statement.select, params=params)
            count = 0
            for row in source.rows:
                if statement.columns is not None:
                    if len(row) != len(statement.columns):
                        raise SchemaError(
                            f"INSERT SELECT yields {len(row)} values for "
                            f"{len(statement.columns)} columns"
                        )
                    table.insert_dict(dict(zip(statement.columns, row)))
                else:
                    table.insert(list(row))
                count += 1
            return count
        env = self._constant_env(params)
        count = 0
        for row_exprs in statement.rows:
            values = [expression.evaluate(env) for expression in row_exprs]
            if statement.columns is not None:
                if len(values) != len(statement.columns):
                    raise SchemaError(
                        f"INSERT has {len(values)} values for "
                        f"{len(statement.columns)} columns"
                    )
                record = dict(zip(statement.columns, values))
                table.insert_dict(record)
            else:
                table.insert(values)
            count += 1
        return count

    def _row_env(
        self, table: Any, row: Row, params: Optional[Sequence[Any]] = None
    ) -> Env:
        env = self._constant_env(params)
        for column, value in zip(table.schema.columns, row):
            lowered = column.name.lower()
            env[lowered] = value
            env[f"{table.name.lower()}.{lowered}"] = value
        return env

    def _run_update(
        self,
        statement: UpdateStatement,
        params: Optional[Sequence[Any]] = None,
    ) -> int:
        table = self.database.table(statement.table)
        positions = {
            column.lower(): table.schema.column_position(column)
            for column, _expression in statement.assignments
        }

        def matches(row: Row) -> bool:
            if statement.where is None:
                return True
            env = self._row_env(table, row, params)
            return statement.where.evaluate(env) is True

        def transform(row: Row) -> Sequence[Any]:
            env = self._row_env(table, row, params)
            new_row = list(row)
            for column, expression in statement.assignments:
                new_row[positions[column.lower()]] = expression.evaluate(env)
            return new_row

        return table.update_where(matches, transform)

    def _run_delete(
        self,
        statement: DeleteStatement,
        params: Optional[Sequence[Any]] = None,
    ) -> int:
        table = self.database.table(statement.table)

        def matches(row: Row) -> bool:
            if statement.where is None:
                return True
            env = self._row_env(table, row, params)
            return statement.where.evaluate(env) is True

        return table.delete_where(matches)

    # -- DDL ------------------------------------------------------------------

    def _run_create_table(self, statement: CreateTableStatement) -> None:
        if statement.if_not_exists and self.database.has_table(statement.name):
            return None
        pk_lower = {name.lower() for name in statement.primary_key}
        columns = tuple(
            Column(
                definition.name,
                definition.dtype,
                nullable=not definition.not_null
                and definition.name.lower() not in pk_lower,
            )
            for definition in statement.columns
        )
        schema = TableSchema(
            name=statement.name,
            columns=columns,
            primary_key=statement.primary_key,
            unique_keys=statement.unique_keys,
            foreign_keys=statement.foreign_keys,
        )
        self.database.create_table(schema)
        return None
