"""Table schemas: columns, keys, and constraint declarations.

A :class:`TableSchema` is immutable once constructed and is shared by the
storage layer, the SQL planner, and the FlexRecs compiler (which needs to
know column names/types to type-check workflows before emitting SQL).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import SchemaError, UnknownColumnError
from repro.minidb.types import DataType

_IDENT_OK = set("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_")


def _check_identifier(name: str, kind: str) -> None:
    if not name:
        raise SchemaError(f"{kind} name must be non-empty")
    if name[0].isdigit():
        raise SchemaError(f"{kind} name {name!r} must not start with a digit")
    if not set(name) <= _IDENT_OK:
        raise SchemaError(f"{kind} name {name!r} contains invalid characters")


@dataclass(frozen=True)
class Column:
    """One column: a name, a type, and a NOT NULL flag."""

    name: str
    dtype: DataType
    nullable: bool = True

    def __post_init__(self) -> None:
        _check_identifier(self.name, "column")


@dataclass(frozen=True)
class ForeignKey:
    """Declares that ``columns`` reference ``ref_table``'s ``ref_columns``."""

    columns: Tuple[str, ...]
    ref_table: str
    ref_columns: Tuple[str, ...]

    def __post_init__(self) -> None:
        if len(self.columns) != len(self.ref_columns):
            raise SchemaError(
                "foreign key column count mismatch: "
                f"{self.columns} -> {self.ref_columns}"
            )
        if not self.columns:
            raise SchemaError("foreign key must name at least one column")


@dataclass(frozen=True)
class TableSchema:
    """An ordered collection of columns plus key constraints.

    ``primary_key`` may span multiple columns (Comments in the paper has a
    four-column key).  ``unique_keys`` are additional uniqueness constraints.
    """

    name: str
    columns: Tuple[Column, ...]
    primary_key: Tuple[str, ...] = ()
    unique_keys: Tuple[Tuple[str, ...], ...] = ()
    foreign_keys: Tuple[ForeignKey, ...] = ()
    _index: Dict[str, int] = field(init=False, repr=False, compare=False, default_factory=dict)

    def __post_init__(self) -> None:
        _check_identifier(self.name, "table")
        if not self.columns:
            raise SchemaError(f"table {self.name!r} must have at least one column")
        index: Dict[str, int] = {}
        for position, column in enumerate(self.columns):
            key = column.name.lower()
            if key in index:
                raise SchemaError(
                    f"duplicate column {column.name!r} in table {self.name!r}"
                )
            index[key] = position
        object.__setattr__(self, "_index", index)
        for key_columns in (self.primary_key,) + self.unique_keys:
            for column_name in key_columns:
                if column_name.lower() not in index:
                    raise SchemaError(
                        f"key column {column_name!r} not in table {self.name!r}"
                    )
        for fk in self.foreign_keys:
            for column_name in fk.columns:
                if column_name.lower() not in index:
                    raise SchemaError(
                        f"foreign-key column {column_name!r} not in table {self.name!r}"
                    )
        # Primary-key columns are implicitly NOT NULL; enforce at insert time
        # via has_pk_column checks in the Table layer.

    # -- lookup ----------------------------------------------------------

    def column_position(self, name: str) -> int:
        """Position of ``name`` (case-insensitive) or raise UnknownColumnError."""
        try:
            return self._index[name.lower()]
        except KeyError:
            raise UnknownColumnError(
                f"table {self.name!r} has no column {name!r}"
            ) from None

    def column(self, name: str) -> Column:
        return self.columns[self.column_position(name)]

    def has_column(self, name: str) -> bool:
        return name.lower() in self._index

    @property
    def column_names(self) -> List[str]:
        return [column.name for column in self.columns]

    def is_pk_column(self, name: str) -> bool:
        lowered = name.lower()
        return any(lowered == key.lower() for key in self.primary_key)

    # -- derivation ------------------------------------------------------

    def renamed(self, new_name: str) -> "TableSchema":
        """The same schema under a different table name (used by aliases)."""
        return TableSchema(
            name=new_name,
            columns=self.columns,
            primary_key=self.primary_key,
            unique_keys=self.unique_keys,
            foreign_keys=self.foreign_keys,
        )


def make_schema(
    name: str,
    columns: Sequence[Tuple[str, DataType]],
    primary_key: Iterable[str] = (),
    unique_keys: Iterable[Iterable[str]] = (),
    foreign_keys: Iterable[ForeignKey] = (),
    not_null: Iterable[str] = (),
) -> TableSchema:
    """Convenience constructor used throughout the application schemas.

    ``not_null`` lists column names that must be declared non-nullable in
    addition to primary-key columns (which are always non-nullable).
    """
    not_null_set = {column_name.lower() for column_name in not_null}
    pk = tuple(primary_key)
    pk_set = {column_name.lower() for column_name in pk}
    built = tuple(
        Column(
            column_name,
            dtype,
            nullable=column_name.lower() not in (not_null_set | pk_set),
        )
        for column_name, dtype in columns
    )
    return TableSchema(
        name=name,
        columns=built,
        primary_key=pk,
        unique_keys=tuple(tuple(key) for key in unique_keys),
        foreign_keys=tuple(foreign_keys),
    )
