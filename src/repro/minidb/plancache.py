"""Prepared statements and the plan/statement caches.

This is the statement-to-execution fast path: repeated SQL skips the
lexer, the parser, and the planner.

Two cache layers cooperate:

* a **statement cache** (module-level, parse is pure) mapping raw SQL text
  to its parsed statement, its canonical rendering, and its ``?`` count;
* a **plan cache** (one per :class:`~repro.minidb.catalog.Database`)
  mapping a SELECT's ``(canonical text, parameter base)`` to a
  :class:`CachedPlan` — the base distinguishes UNION arms whose text
  matches a standalone statement but whose ``?`` placeholders are
  numbered after the preceding arms'.

A cached plan is *validated* on every hit against the database's schema
epoch (bumped by all DDL), each referenced table's ``indexed_version``
(bumped by DML that touches indexed state), the function-registry version,
and — for plans whose IN/EXISTS subqueries were snapshotted at plan time —
each table's ``data_version``.  A stale entry is transparently re-planned
from the already-parsed statement, so callers never observe staleness.
"""

from __future__ import annotations

from typing import Any, Optional, Tuple

from repro.caching import LRUCache
from repro.errors import ExecutionError

__all__ = [
    "LRUCache",
    "CachedPlan",
    "PreparedStatement",
    "snapshot_plan",
    "parsed_statement",
    "clear_statement_cache",
]


class CachedPlan:
    """A planned SELECT plus the version vector it was planned under."""

    __slots__ = (
        "plan",
        "schema_epoch",
        "functions_version",
        "index_versions",
        "data_versions",
    )

    def __init__(
        self,
        plan: Any,
        schema_epoch: int,
        functions_version: int,
        index_versions: Tuple[Tuple[Any, int], ...],
        data_versions: Tuple[Tuple[Any, int], ...],
    ) -> None:
        self.plan = plan
        self.schema_epoch = schema_epoch
        self.functions_version = functions_version
        self.index_versions = index_versions
        self.data_versions = data_versions

    def is_valid(self, database: Any) -> bool:
        if self.schema_epoch != database.schema_epoch:
            return False
        if self.functions_version != database.functions.version:
            return False
        for table, version in self.index_versions:
            if table.indexed_version != version:
                return False
        for table, version in self.data_versions:
            if table.data_version != version:
                return False
        return True


def snapshot_plan(database: Any, plan: Any) -> CachedPlan:
    """Capture the validation vector for a freshly built plan."""
    tables = getattr(plan, "tables", ())
    uses_snapshot = getattr(plan, "uses_snapshot", False)
    return CachedPlan(
        plan=plan,
        schema_epoch=database.schema_epoch,
        functions_version=database.functions.version,
        index_versions=tuple(
            (table, table.indexed_version) for table in tables
        ),
        # Plans that resolved IN/EXISTS subqueries baked row data into
        # literals; they additionally pin every referenced table's data.
        data_versions=tuple(
            (table, table.data_version) for table in tables
        )
        if uses_snapshot
        else (),
    )


# Parsing is pure, so parsed statements are shared across databases.
_STATEMENT_CACHE = LRUCache(maxsize=512)


def parsed_statement(sql: str) -> Tuple[Any, Optional[str], int]:
    """Parse (with caching) one statement.

    Returns ``(statement, canonical, parameter_count)`` where
    ``canonical`` is the statement's ``to_sql()`` rendering for SELECTs
    (the text component of the plan-cache key — equivalent queries that
    differ only in formatting share one plan) and ``None`` for
    everything else.
    """
    cached = _STATEMENT_CACHE.get(sql)
    if cached is not None:
        return cached
    from repro.minidb.sql.ast import SelectStatement
    from repro.minidb.sql.parser import parse_statement

    statement = parse_statement(sql)
    canonical = (
        statement.to_sql() if isinstance(statement, SelectStatement) else None
    )
    entry = (statement, canonical, getattr(statement, "parameter_count", 0))
    _STATEMENT_CACHE.put(sql, entry)
    return entry


def clear_statement_cache() -> None:
    _STATEMENT_CACHE.clear()


class PreparedStatement:
    """A re-executable handle for one SQL statement with ``?`` binding.

    >>> statement = db.prepare("SELECT Title FROM Courses WHERE CourseID = ?")
    >>> statement.execute(210).scalar()

    Execution routes through the owning database's plan cache, so the
    plan is built once and transparently re-planned after DDL or after
    DML that invalidates it.  Bindings are re-installed fresh on every
    ``execute`` and never leak between executions.
    """

    def __init__(self, database: Any, sql: str) -> None:
        self.database = database
        self.sql = sql
        statement, canonical, parameter_count = parsed_statement(sql)
        self.statement = statement
        self.canonical = canonical
        self.parameter_count = parameter_count
        # Plan SELECTs eagerly: prepare() fails fast on bad references and
        # the first execute() is already warm.
        if canonical is not None:
            database._get_executor().plan_for(statement, canonical)

    def execute(self, *params: Any) -> Any:
        if len(params) != self.parameter_count:
            raise ExecutionError(
                f"prepared statement expects {self.parameter_count} "
                f"parameter(s), got {len(params)}"
            )
        executor = self.database._get_executor()
        return executor.execute_statement(
            self.statement, params=params, canonical=self.canonical
        )

    def query(self, *params: Any) -> Any:
        """Execute and require a ResultSet (SELECT/UNION statements)."""
        from repro.minidb.executor import ResultSet

        result = self.execute(*params)
        if not isinstance(result, ResultSet):
            raise ExecutionError("query() requires a SELECT statement")
        return result

    def explain(self) -> str:
        """Render the plan this statement would execute right now."""
        if self.canonical is None:
            raise ExecutionError("explain() requires a SELECT statement")
        plan, _cached = self.database._get_executor().plan_for(
            self.statement, self.canonical
        )
        return "\n".join(plan.describe())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<PreparedStatement {self.sql!r}>"
