"""Physical planning for SELECT statements.

The planner turns a parsed :class:`SelectStatement` into a tree of plan
nodes, applying three classic optimizations:

* **predicate pushdown** — WHERE conjuncts that reference a single base
  table move into that table's scan (and can then use an index);
* **index selection** — a pushed equality conjunct on an indexed column
  becomes an index lookup; range conjuncts use a sorted index;
* **hash joins** — INNER/LEFT joins whose ON condition contains
  equi-conjuncts between the two sides build a hash table on the right
  input instead of a nested loop.

Rows flowing through the plan are *environments*: dicts mapping column
names (``binding.column`` and, when unambiguous, bare ``column``) to
values, plus the reserved ``__functions__`` registry entry.  This uniform
representation keeps expression evaluation identical across scans, joins,
aggregation and sorting.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Optional, Sequence, Set, Tuple, Union

from repro.errors import (
    AmbiguousColumnError,
    PlannerError,
    UnknownColumnError,
)
from repro.minidb.expressions import (
    AMBIGUOUS,
    Between,
    BinaryOp,
    Case,
    ColumnRef,
    Env,
    ExistsSubquery,
    Expression,
    FunctionCall,
    InList,
    InSubquery,
    IsNull,
    Like,
    Literal,
    UnaryOp,
    conjoin,
    conjuncts,
    order_key,
)
from repro.minidb.sql.ast import (
    AggregateRef,
    JoinClause,
    OrderItem,
    SelectItem,
    SelectStatement,
    SubqueryRef,
    TableRef,
)

Row = Tuple[Any, ...]


class Binding:
    """One FROM-clause input: its name and the columns it exposes."""

    def __init__(self, name: str, columns: Sequence[str]) -> None:
        self.name = name
        self.columns = list(columns)
        self.column_set = {column.lower() for column in columns}

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Binding({self.name!r}, {self.columns})"


class PlanNode:
    """Base class for physical plan operators."""

    #: env keys this subtree contributes (used for LEFT-join NULL padding)
    env_keys: List[str]

    def rows(self) -> Iterator[Env]:
        raise NotImplementedError

    def describe(self) -> List[str]:
        raise NotImplementedError


class ScanNode(PlanNode):
    """Sequential or index-assisted scan of a base table."""

    def __init__(
        self,
        table: Any,
        binding: Binding,
        base_env: Env,
        bare_columns: Set[str],
        predicate: Optional[Expression] = None,
        access: Optional["IndexAccess"] = None,
    ) -> None:
        self.table = table
        self.binding = binding
        self.base_env = base_env
        self.predicate = predicate
        self.access = access
        prefix = binding.name.lower() + "."
        self._keys = []
        for column in table.schema.column_names:
            lowered = column.lower()
            bare = lowered if lowered in bare_columns else None
            self._keys.append((prefix + lowered, bare))
        self.env_keys = [qualified for qualified, _bare in self._keys] + [
            bare for _qualified, bare in self._keys if bare
        ]

    def _emit(self, row: Row) -> Env:
        env = dict(self.base_env)
        for (qualified, bare), value in zip(self._keys, row):
            env[qualified] = value
            if bare:
                env[bare] = value
        return env

    def rows(self) -> Iterator[Env]:
        source = (
            self.access.rows(self.table)
            if self.access is not None
            else self.table.rows()
        )
        if self.predicate is None:
            for row in source:
                yield self._emit(row)
        else:
            for row in source:
                env = self._emit(row)
                if self.predicate.evaluate(env) is True:
                    yield env

    def describe(self) -> List[str]:
        if self.access is not None:
            line = f"IndexScan({self.table.name} AS {self.binding.name} {self.access.describe()})"
        else:
            line = f"SeqScan({self.table.name} AS {self.binding.name})"
        if self.predicate is not None:
            line += f" filter={self.predicate.to_sql()}"
        return [line]


class IndexAccess:
    """An access path through a secondary index."""

    def __init__(
        self,
        index_info: Any,
        equal_key: Optional[Tuple[Any, ...]] = None,
        low: Optional[Tuple[Any, ...]] = None,
        high: Optional[Tuple[Any, ...]] = None,
        low_inclusive: bool = True,
        high_inclusive: bool = True,
    ) -> None:
        self.index_info = index_info
        self.equal_key = equal_key
        self.low = low
        self.high = high
        self.low_inclusive = low_inclusive
        self.high_inclusive = high_inclusive

    def rows(self, table: Any) -> Iterator[Row]:
        index = self.index_info.index
        if self.equal_key is not None:
            for rowid in list(index.find(self.equal_key)):
                yield table.get(rowid)
        else:
            for rowid in list(
                index.range(
                    self.low, self.high, self.low_inclusive, self.high_inclusive
                )
            ):
                yield table.get(rowid)

    def describe(self) -> str:
        name = self.index_info.name
        if self.equal_key is not None:
            return f"using {name} = {self.equal_key!r}"
        bounds = []
        if self.low is not None:
            op = ">=" if self.low_inclusive else ">"
            bounds.append(f"{op} {self.low!r}")
        if self.high is not None:
            op = "<=" if self.high_inclusive else "<"
            bounds.append(f"{op} {self.high!r}")
        return f"using {name} range {' and '.join(bounds)}"


class PrimaryKeyAccess:
    """Point lookup through the table's primary-key map."""

    def __init__(self, key: Tuple[Any, ...]) -> None:
        self.key = key

    def rows(self, table: Any) -> Iterator[Row]:
        row = table.lookup_pk(self.key)
        if row is not None:
            yield row

    def describe(self) -> str:
        return f"using primary key = {self.key!r}"


class SubqueryScanNode(PlanNode):
    """Executes a planned sub-select and streams its rows as env fragments."""

    def __init__(
        self,
        plan: "QueryPlan",
        binding: Binding,
        base_env: Env,
        bare_columns: Set[str],
    ) -> None:
        self.plan = plan
        self.binding = binding
        self.base_env = base_env
        prefix = binding.name.lower() + "."
        self._keys = []
        for column in binding.columns:
            lowered = column.lower()
            bare = lowered if lowered in bare_columns else None
            self._keys.append((prefix + lowered, bare))
        self.env_keys = [qualified for qualified, _bare in self._keys] + [
            bare for _qualified, bare in self._keys if bare
        ]

    def rows(self) -> Iterator[Env]:
        _columns, rows = self.plan.run()
        for row in rows:
            env = dict(self.base_env)
            for (qualified, bare), value in zip(self._keys, row):
                env[qualified] = value
                if bare:
                    env[bare] = value
            yield env

    def describe(self) -> List[str]:
        inner = ["  " + line for line in self.plan.describe()]
        return [f"SubqueryScan(AS {self.binding.name})"] + inner


class HashJoinNode(PlanNode):
    """Equi-join: builds a hash table on the right, probes with the left."""

    def __init__(
        self,
        left: PlanNode,
        right: PlanNode,
        left_keys: List[Expression],
        right_keys: List[Expression],
        residual: Optional[Expression],
        left_outer: bool,
    ) -> None:
        self.left = left
        self.right = right
        self.left_keys = left_keys
        self.right_keys = right_keys
        self.residual = residual
        self.left_outer = left_outer
        self.env_keys = left.env_keys + right.env_keys

    def rows(self) -> Iterator[Env]:
        table: Dict[Tuple[Any, ...], List[Env]] = {}
        for env in self.right.rows():
            key = tuple(expr.evaluate(env) for expr in self.right_keys)
            if any(part is None for part in key):
                continue  # NULL never equi-joins
            table.setdefault(key, []).append(env)
        padding = {key: None for key in self.right.env_keys}
        for left_env in self.left.rows():
            key = tuple(expr.evaluate(left_env) for expr in self.left_keys)
            matched = False
            if not any(part is None for part in key):
                for right_env in table.get(key, ()):
                    merged = {**left_env, **right_env}
                    if (
                        self.residual is None
                        or self.residual.evaluate(merged) is True
                    ):
                        matched = True
                        yield merged
            if not matched and self.left_outer:
                yield {**left_env, **padding}

    def describe(self) -> List[str]:
        kind = "LeftHashJoin" if self.left_outer else "HashJoin"
        keys = ", ".join(
            f"{l.to_sql()}={r.to_sql()}"
            for l, r in zip(self.left_keys, self.right_keys)
        )
        line = f"{kind}(on {keys})"
        if self.residual is not None:
            line += f" residual={self.residual.to_sql()}"
        return [line] + [
            "  " + inner for inner in self.left.describe() + self.right.describe()
        ]


class NestedLoopJoinNode(PlanNode):
    """General join: materializes the right side, loops per left row."""

    def __init__(
        self,
        left: PlanNode,
        right: PlanNode,
        condition: Optional[Expression],
        left_outer: bool,
    ) -> None:
        self.left = left
        self.right = right
        self.condition = condition
        self.left_outer = left_outer
        self.env_keys = left.env_keys + right.env_keys

    def rows(self) -> Iterator[Env]:
        right_rows = list(self.right.rows())
        padding = {key: None for key in self.right.env_keys}
        for left_env in self.left.rows():
            matched = False
            for right_env in right_rows:
                merged = {**left_env, **right_env}
                if self.condition is None or self.condition.evaluate(merged) is True:
                    matched = True
                    yield merged
            if not matched and self.left_outer:
                yield {**left_env, **padding}

    def describe(self) -> List[str]:
        kind = "LeftNestedLoopJoin" if self.left_outer else "NestedLoopJoin"
        line = kind + (
            f"(on {self.condition.to_sql()})" if self.condition is not None else "(cross)"
        )
        return [line] + [
            "  " + inner for inner in self.left.describe() + self.right.describe()
        ]


class FilterNode(PlanNode):
    def __init__(self, child: PlanNode, predicate: Expression) -> None:
        self.child = child
        self.predicate = predicate
        self.env_keys = child.env_keys

    def rows(self) -> Iterator[Env]:
        for env in self.child.rows():
            if self.predicate.evaluate(env) is True:
                yield env

    def describe(self) -> List[str]:
        return [f"Filter({self.predicate.to_sql()})"] + [
            "  " + line for line in self.child.describe()
        ]


class SingleRowNode(PlanNode):
    """FROM-less SELECT: one empty row carrying only the base env."""

    def __init__(self, base_env: Env) -> None:
        self.base_env = base_env
        self.env_keys = []

    def rows(self) -> Iterator[Env]:
        yield dict(self.base_env)

    def describe(self) -> List[str]:
        return ["SingleRow"]


class AggregateNode(PlanNode):
    """Hash aggregation over optional GROUP BY expressions.

    With no GROUP BY, a single global group is produced even over empty
    input (COUNT(*) of an empty table is 0).  Non-aggregated select
    expressions over grouped rows see a representative (first) row of each
    group, MySQL-style; the application schemas never rely on this.
    """

    def __init__(
        self,
        child: PlanNode,
        group_exprs: List[Expression],
        aggregate_calls: List[Any],
        base_env: Env,
        functions: Any,
    ) -> None:
        self.child = child
        self.group_exprs = group_exprs
        self.aggregate_calls = aggregate_calls
        self.base_env = base_env
        self.functions = functions
        self.env_keys = child.env_keys + [
            f"__agg_{index}" for index in range(len(aggregate_calls))
        ]

    def rows(self) -> Iterator[Env]:
        groups: Dict[Tuple[Any, ...], Dict[str, Any]] = {}
        order: List[Tuple[Any, ...]] = []
        for env in self.child.rows():
            key = tuple(expr.evaluate(env) for expr in self.group_exprs)
            state = groups.get(key)
            if state is None:
                state = {
                    "env": env,
                    "accumulators": [
                        self.functions.aggregate(call.name)
                        for call in self.aggregate_calls
                    ],
                    "distinct_seen": [
                        set() if call.distinct else None
                        for call in self.aggregate_calls
                    ],
                }
                groups[key] = state
                order.append(key)
            for call, accumulator, seen in zip(
                self.aggregate_calls,
                state["accumulators"],
                state["distinct_seen"],
            ):
                if call.argument is None:  # COUNT(*)
                    value: Any = 1
                else:
                    value = call.argument.evaluate(env)
                if seen is not None:
                    if value is None or value in seen:
                        continue
                    seen.add(value)
                accumulator.add(value)
        if not groups and not self.group_exprs:
            # Global aggregate over empty input.
            env = dict(self.base_env)
            for index, call in enumerate(self.aggregate_calls):
                accumulator = self.functions.aggregate(call.name)
                env[f"__agg_{index}"] = accumulator.result()
            yield env
            return
        for key in order:
            state = groups[key]
            env = dict(state["env"])
            for index, accumulator in enumerate(state["accumulators"]):
                env[f"__agg_{index}"] = accumulator.result()
            yield env

    def describe(self) -> List[str]:
        groups = ", ".join(expr.to_sql() for expr in self.group_exprs) or "<global>"
        calls = ", ".join(call.to_sql() for call in self.aggregate_calls)
        return [f"Aggregate(group by {groups}; {calls})"] + [
            "  " + line for line in self.child.describe()
        ]


class SortNode(PlanNode):
    def __init__(self, child: PlanNode, order_items: List[OrderItem]) -> None:
        self.child = child
        self.order_items = order_items
        self.env_keys = child.env_keys

    def rows(self) -> Iterator[Env]:
        materialized = list(self.child.rows())
        descending = [item.descending for item in self.order_items]
        materialized.sort(
            key=lambda env: order_key(
                [item.expression.evaluate(env) for item in self.order_items],
                descending,
            )
        )
        return iter(materialized)

    def describe(self) -> List[str]:
        spec = ", ".join(item.to_sql() for item in self.order_items)
        return [f"Sort({spec})"] + ["  " + line for line in self.child.describe()]


class LimitNode(PlanNode):
    def __init__(
        self, child: PlanNode, limit: Optional[int], offset: Optional[int]
    ) -> None:
        self.child = child
        self.limit = limit
        self.offset = offset or 0
        self.env_keys = child.env_keys

    def rows(self) -> Iterator[Env]:
        if self.limit is not None and self.limit <= 0:
            return
        produced = 0
        skipped = 0
        for env in self.child.rows():
            if skipped < self.offset:
                skipped += 1
                continue
            produced += 1
            yield env
            # Stop *before* pulling another row from the child, so scans
            # under a LIMIT terminate as early as possible.
            if self.limit is not None and produced >= self.limit:
                return

    def describe(self) -> List[str]:
        return [f"Limit({self.limit} offset {self.offset})"] + [
            "  " + line for line in self.child.describe()
        ]


class QueryPlan:
    """A complete plan: the env pipeline plus the output projection."""

    def __init__(
        self,
        root: PlanNode,
        output: List[Tuple[str, Expression]],
        distinct: bool,
    ) -> None:
        self.root = root
        self.output = output
        self.distinct = distinct

    @property
    def column_names(self) -> List[str]:
        return [name for name, _expr in self.output]

    def run(self) -> Tuple[List[str], List[Row]]:
        rows: List[Row] = []
        seen: Optional[Set[Row]] = set() if self.distinct else None
        for env in self.root.rows():
            row = tuple(expr.evaluate(env) for _name, expr in self.output)
            if seen is not None:
                if row in seen:
                    continue
                seen.add(row)
            rows.append(row)
        return self.column_names, rows

    def describe(self) -> List[str]:
        spec = ", ".join(
            f"{expr.to_sql()} AS {name}" for name, expr in self.output
        )
        head = f"Project({spec})"
        if self.distinct:
            head = "Distinct " + head
        return [head] + ["  " + line for line in self.root.describe()]


# ---------------------------------------------------------------------------
# planning
# ---------------------------------------------------------------------------


def plan_select(database: Any, statement: SelectStatement) -> QueryPlan:
    """Build a :class:`QueryPlan` for a SELECT statement."""
    return _Planner(database).plan(statement)


class _Planner:
    def __init__(self, database: Any) -> None:
        self.database = database

    # -- binding resolution -------------------------------------------------

    def _binding_for(self, item: Union[TableRef, SubqueryRef]) -> Tuple[Binding, Any]:
        """Resolve a FROM item to (binding, payload).

        Payload is the Table for base tables, or a planned QueryPlan for
        subqueries and views (a view behaves like an inlined subquery).
        """
        if isinstance(item, TableRef):
            if self.database.has_view(item.name):
                view_plan = _Planner(self.database).plan(
                    self.database.view(item.name)
                )
                return Binding(item.binding, view_plan.column_names), view_plan
            table = self.database.table(item.name)
            return Binding(item.binding, table.schema.column_names), table
        sub_plan = _Planner(self.database).plan(item.query)
        return Binding(item.binding, sub_plan.column_names), sub_plan

    def plan(self, statement: SelectStatement) -> QueryPlan:
        base_env: Env = {"__functions__": self.database.functions}

        # Uncorrelated IN/EXISTS subqueries are resolved once, here, into
        # literal lists/booleans.  The statement itself is never mutated
        # (views keep their stored form and re-resolve on every use).
        where = self._resolve_subqueries(statement.where)
        having = self._resolve_subqueries(statement.having)

        from_items: List[Union[TableRef, SubqueryRef]] = []
        join_specs: List[JoinClause] = []
        if statement.from_item is not None:
            from_items.append(statement.from_item)
            join_specs = [
                JoinClause(
                    join_type=join.join_type,
                    table=join.table,
                    condition=self._resolve_subqueries(join.condition),
                )
                for join in statement.joins
            ]
            from_items.extend(join.table for join in join_specs)

        resolved: List[Tuple[Binding, Any]] = [
            self._binding_for(item) for item in from_items
        ]
        bindings = [binding for binding, _payload in resolved]

        names_seen: Set[str] = set()
        for binding in bindings:
            lowered = binding.name.lower()
            if lowered in names_seen:
                raise PlannerError(
                    f"duplicate table alias {binding.name!r}; use AS to rename"
                )
            names_seen.add(lowered)

        # Bare column names usable without qualification.
        column_owners: Dict[str, int] = {}
        for binding in bindings:
            for column in binding.column_set:
                column_owners[column] = column_owners.get(column, 0) + 1
        unambiguous = {
            column for column, count in column_owners.items() if count == 1
        }
        for column, count in column_owners.items():
            if count > 1:
                base_env[column] = AMBIGUOUS

        # Which bindings sit on the NULL-padded side of a LEFT join?
        nullable_bindings: Set[str] = set()
        for join in join_specs:
            if join.join_type == "LEFT":
                nullable_bindings.add(join.table.binding.lower())

        # WHERE pushdown bookkeeping.
        where_conjuncts = conjuncts(where)
        pushed: Dict[str, List[Expression]] = {}
        remaining: List[Expression] = []
        for conjunct in where_conjuncts:
            targets = self._referenced_bindings(conjunct, bindings, unambiguous)
            if len(targets) == 1:
                target = next(iter(targets))
                if target not in nullable_bindings:
                    pushed.setdefault(target, []).append(conjunct)
                    continue
            remaining.append(conjunct)

        # Build leaf nodes.
        leaves: Dict[str, PlanNode] = {}
        for (binding, payload), item in zip(resolved, from_items):
            key = binding.name.lower()
            local = pushed.get(key, [])
            if isinstance(payload, QueryPlan):
                # Subquery or view: scan its planned output.
                node: PlanNode = SubqueryScanNode(
                    payload, binding, base_env, unambiguous
                )
                predicate = conjoin(local)
                if predicate is not None:
                    node = FilterNode(node, predicate)
            else:
                node = self._build_scan(
                    payload, binding, base_env, unambiguous, local
                )
            leaves[key] = node

        # Join tree, left-deep in syntactic order.
        if not bindings:
            current: PlanNode = SingleRowNode(base_env)
        else:
            current = leaves[bindings[0].name.lower()]
            covered = {bindings[0].name.lower()}
            for join in join_specs:
                right_key = join.table.binding.lower()
                right = leaves[right_key]
                current = self._build_join(
                    current, right, covered, right_key, join, bindings, unambiguous
                )
                covered.add(right_key)

        predicate = conjoin(remaining)
        if predicate is not None:
            current = FilterNode(current, predicate)

        # Aggregation.
        if statement.aggregates or statement.group_by:
            current = AggregateNode(
                current,
                statement.group_by,
                statement.aggregates,
                base_env,
                self.database.functions,
            )
        if having is not None:
            current = FilterNode(current, having)

        # Output projection spec (before sort so aliases can be resolved).
        output = self._output_spec(statement, bindings)

        if statement.order_by:
            items = [
                OrderItem(
                    self._resolve_order_expression(
                        item.expression, output, bindings
                    ),
                    item.descending,
                )
                for item in statement.order_by
            ]
            current = SortNode(current, items)
        if statement.limit is not None or statement.offset is not None:
            current = LimitNode(current, statement.limit, statement.offset)

        return QueryPlan(current, output, statement.distinct)

    # -- scan construction ----------------------------------------------------

    def _build_scan(
        self,
        table: Any,
        binding: Binding,
        base_env: Env,
        unambiguous: Set[str],
        local_conjuncts: List[Expression],
    ) -> PlanNode:
        access, residual = self._choose_access(table, binding, local_conjuncts)
        predicate = conjoin(residual)
        return ScanNode(
            table,
            binding,
            base_env,
            unambiguous,
            predicate=predicate,
            access=access,
        )

    def _choose_access(
        self,
        table: Any,
        binding: Binding,
        local_conjuncts: List[Expression],
    ) -> Tuple[Optional[IndexAccess], List[Expression]]:
        """Pick an index access path from pushed-down conjuncts."""
        indexes = self.database.indexes_on(table.name)
        single_column = {
            info.columns[0].lower(): info
            for info in indexes
            if len(info.columns) == 1
        }

        def column_of(expr: Expression) -> Optional[str]:
            if isinstance(expr, ColumnRef):
                qualifier_ok = (
                    expr.qualifier is None
                    or expr.qualifier.lower() == binding.name.lower()
                )
                if qualifier_ok:
                    return expr.column.lower()
            return None

        # Primary-key point lookup: equality literals covering the whole key.
        pk = tuple(name.lower() for name in table.schema.primary_key)
        if pk:
            equalities: Dict[str, Tuple[int, Any]] = {}
            for position, conjunct in enumerate(local_conjuncts):
                if isinstance(conjunct, BinaryOp) and conjunct.op == "=":
                    for lhs, rhs in (
                        (conjunct.left, conjunct.right),
                        (conjunct.right, conjunct.left),
                    ):
                        column = column_of(lhs)
                        if (
                            column in pk
                            and isinstance(rhs, Literal)
                            and rhs.value is not None
                            and column not in equalities
                        ):
                            equalities[column] = (position, rhs.value)
            if len(equalities) == len(pk):
                used_positions = {position for position, _v in equalities.values()}
                residual = [
                    conjunct
                    for position, conjunct in enumerate(local_conjuncts)
                    if position not in used_positions
                ]
                key = tuple(equalities[column][1] for column in pk)
                return PrimaryKeyAccess(key), residual

        if not single_column:
            return None, local_conjuncts

        # Equality first: col = literal.
        for position, conjunct in enumerate(local_conjuncts):
            if isinstance(conjunct, BinaryOp) and conjunct.op == "=":
                for lhs, rhs in (
                    (conjunct.left, conjunct.right),
                    (conjunct.right, conjunct.left),
                ):
                    column = column_of(lhs)
                    if column in single_column and isinstance(rhs, Literal):
                        if rhs.value is None:
                            continue
                        residual = (
                            local_conjuncts[:position]
                            + local_conjuncts[position + 1 :]
                        )
                        access = IndexAccess(
                            single_column[column], equal_key=(rhs.value,)
                        )
                        return access, residual

        # Then ranges over a sorted index.
        for column, info in single_column.items():
            if info.kind != "sorted":
                continue
            low = high = None
            low_inclusive = high_inclusive = True
            used: List[int] = []
            for position, conjunct in enumerate(local_conjuncts):
                if not (
                    isinstance(conjunct, BinaryOp)
                    and conjunct.op in (">", ">=", "<", "<=")
                ):
                    continue
                operator = conjunct.op
                lhs, rhs = conjunct.left, conjunct.right
                target = column_of(lhs)
                literal: Optional[Literal] = (
                    rhs if isinstance(rhs, Literal) else None
                )
                if target != column or literal is None:
                    # Try the flipped form: literal OP column.
                    target = column_of(rhs)
                    literal = lhs if isinstance(lhs, Literal) else None
                    if target != column or literal is None:
                        continue
                    operator = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}[operator]
                if literal.value is None:
                    continue
                if operator in (">", ">="):
                    if low is None or (literal.value,) > low:
                        low = (literal.value,)
                        low_inclusive = operator == ">="
                        used.append(position)
                else:
                    if high is None or (literal.value,) < high:
                        high = (literal.value,)
                        high_inclusive = operator == "<="
                        used.append(position)
            if low is not None or high is not None:
                residual = [
                    conjunct
                    for position, conjunct in enumerate(local_conjuncts)
                    if position not in used
                ]
                access = IndexAccess(
                    info,
                    low=low,
                    high=high,
                    low_inclusive=low_inclusive,
                    high_inclusive=high_inclusive,
                )
                return access, residual
        return None, local_conjuncts

    # -- join construction ------------------------------------------------------

    def _build_join(
        self,
        left: PlanNode,
        right: PlanNode,
        covered: Set[str],
        right_key: str,
        join: JoinClause,
        bindings: List[Binding],
        unambiguous: Set[str],
    ) -> PlanNode:
        left_outer = join.join_type == "LEFT"
        if join.join_type == "CROSS" or join.condition is None:
            return NestedLoopJoinNode(left, right, None, left_outer=False)
        equi_left: List[Expression] = []
        equi_right: List[Expression] = []
        residual: List[Expression] = []
        for conjunct in conjuncts(join.condition):
            pair = self._equi_pair(
                conjunct, covered, right_key, bindings, unambiguous
            )
            if pair is not None:
                equi_left.append(pair[0])
                equi_right.append(pair[1])
            else:
                residual.append(conjunct)
        if equi_left:
            return HashJoinNode(
                left,
                right,
                equi_left,
                equi_right,
                conjoin(residual),
                left_outer,
            )
        return NestedLoopJoinNode(left, right, join.condition, left_outer)

    def _equi_pair(
        self,
        conjunct: Expression,
        covered: Set[str],
        right_key: str,
        bindings: List[Binding],
        unambiguous: Set[str],
    ) -> Optional[Tuple[Expression, Expression]]:
        """If ``conjunct`` is left_expr = right_expr across the join, split it."""
        if not (isinstance(conjunct, BinaryOp) and conjunct.op == "="):
            return None
        left_refs = self._referenced_bindings(conjunct.left, bindings, unambiguous)
        right_refs = self._referenced_bindings(conjunct.right, bindings, unambiguous)
        if left_refs <= covered and right_refs == {right_key}:
            return conjunct.left, conjunct.right
        if right_refs <= covered and left_refs == {right_key}:
            return conjunct.right, conjunct.left
        return None

    # -- helpers -----------------------------------------------------------

    def _referenced_bindings(
        self,
        expression: Expression,
        bindings: List[Binding],
        unambiguous: Set[str],
    ) -> Set[str]:
        result: Set[str] = set()
        for reference in expression.columns_referenced():
            if "." in reference:
                qualifier, column = reference.split(".", 1)
                lowered = qualifier.lower()
                match = next(
                    (b for b in bindings if b.name.lower() == lowered), None
                )
                if match is None:
                    raise UnknownColumnError(
                        f"unknown table alias {qualifier!r} in {reference!r}"
                    )
                if column.lower() not in match.column_set:
                    raise UnknownColumnError(
                        f"table {qualifier!r} has no column {column!r}"
                    )
                result.add(lowered)
            else:
                lowered = reference.lower()
                owners = [
                    binding
                    for binding in bindings
                    if lowered in binding.column_set
                ]
                if not owners:
                    raise UnknownColumnError(f"unknown column {reference!r}")
                if len(owners) > 1:
                    raise AmbiguousColumnError(
                        f"column {reference!r} is ambiguous; qualify it"
                    )
                result.add(owners[0].name.lower())
        return result

    def _output_spec(
        self,
        statement: SelectStatement,
        bindings: List[Binding],
    ) -> List[Tuple[str, Expression]]:
        output: List[Tuple[str, Expression]] = []
        for item in statement.items:
            if item.is_star:
                targets = (
                    bindings
                    if item.star_qualifier == ""
                    else [
                        binding
                        for binding in bindings
                        if binding.name.lower() == item.star_qualifier.lower()
                    ]
                )
                if item.star_qualifier != "" and not targets:
                    raise PlannerError(
                        f"unknown alias {item.star_qualifier!r} in select list"
                    )
                if not bindings:
                    raise PlannerError("SELECT * requires a FROM clause")
                for binding in targets:
                    for column in binding.columns:
                        output.append(
                            (
                                column,
                                ColumnRef(column=column, qualifier=binding.name),
                            )
                        )
                continue
            # Validate column references now so bad selects fail at plan
            # time (views rely on this for create-time validation).
            self._referenced_bindings(item.expression, bindings, set())
            name = item.alias
            if name is None:
                if isinstance(item.expression, ColumnRef):
                    name = item.expression.column
                elif isinstance(item.expression, AggregateRef):
                    name = item.expression.call.name
                else:
                    name = item.expression.to_sql()
            output.append((name, item.expression))
        return output

    def _resolve_subqueries(
        self, expression: Optional[Expression]
    ) -> Optional[Expression]:
        """Replace uncorrelated IN/EXISTS subqueries with their values.

        ``x IN (SELECT ...)`` becomes an :class:`InList` of literals (the
        subquery must yield exactly one column) and ``EXISTS (SELECT
        ...)`` becomes a boolean literal.  Nested occurrences inside
        AND/OR/NOT/CASE/functions are handled; unchanged subtrees are
        returned as-is (no needless copying).
        """
        if expression is None:
            return None
        if isinstance(expression, InSubquery):
            sub_plan = _Planner(self.database).plan(expression.query)
            columns, rows = sub_plan.run()
            if len(columns) != 1:
                raise PlannerError(
                    "IN (SELECT ...) must yield exactly one column, got "
                    f"{len(columns)}"
                )
            operand = self._resolve_subqueries(expression.operand)
            return InList(
                operand,
                [Literal(row[0]) for row in rows],
                negated=expression.negated,
            ) if rows else InList(
                operand, [], negated=expression.negated
            )
        if isinstance(expression, ExistsSubquery):
            sub_plan = _Planner(self.database).plan(expression.query)
            exists = False
            for _env in sub_plan.root.rows():
                exists = True
                break
            return Literal(exists != expression.negated)
        if isinstance(expression, BinaryOp):
            left = self._resolve_subqueries(expression.left)
            right = self._resolve_subqueries(expression.right)
            if left is expression.left and right is expression.right:
                return expression
            return BinaryOp(expression.op, left, right)
        if isinstance(expression, UnaryOp):
            operand = self._resolve_subqueries(expression.operand)
            if operand is expression.operand:
                return expression
            return UnaryOp(expression.op, operand)
        if isinstance(expression, IsNull):
            operand = self._resolve_subqueries(expression.operand)
            if operand is expression.operand:
                return expression
            return IsNull(operand, negated=expression.negated)
        if isinstance(expression, InList):
            operand = self._resolve_subqueries(expression.operand)
            items = [self._resolve_subqueries(item) for item in expression.items]
            if operand is expression.operand and all(
                new is old for new, old in zip(items, expression.items)
            ):
                return expression
            return InList(operand, items, negated=expression.negated)
        if isinstance(expression, Between):
            operand = self._resolve_subqueries(expression.operand)
            low = self._resolve_subqueries(expression.low)
            high = self._resolve_subqueries(expression.high)
            if (
                operand is expression.operand
                and low is expression.low
                and high is expression.high
            ):
                return expression
            return Between(operand, low, high, negated=expression.negated)
        if isinstance(expression, Like):
            operand = self._resolve_subqueries(expression.operand)
            pattern = self._resolve_subqueries(expression.pattern)
            if operand is expression.operand and pattern is expression.pattern:
                return expression
            return Like(
                operand,
                pattern,
                negated=expression.negated,
                case_insensitive=expression.case_insensitive,
            )
        if isinstance(expression, Case):
            branches = [
                (
                    self._resolve_subqueries(condition),
                    self._resolve_subqueries(value),
                )
                for condition, value in expression.branches
            ]
            default = self._resolve_subqueries(expression.default)
            return Case(branches, default)
        if isinstance(expression, FunctionCall):
            arguments = [
                self._resolve_subqueries(argument)
                for argument in expression.arguments
            ]
            if all(
                new is old
                for new, old in zip(arguments, expression.arguments)
            ):
                return expression
            return FunctionCall(expression.name, arguments)
        return expression

    def _resolve_order_expression(
        self,
        expression: Expression,
        output: List[Tuple[str, Expression]],
        bindings: List[Binding],
    ) -> Expression:
        """ORDER BY may name a select alias or a 1-based output position.

        A bare name that is also a base column resolves to the base column;
        otherwise it resolves to the matching select-list expression.
        """
        if isinstance(expression, ColumnRef) and expression.qualifier is None:
            lowered = expression.column.lower()
            resolvable = any(
                lowered in binding.column_set for binding in bindings
            )
            if not resolvable:
                for name, expr in output:
                    if name.lower() == lowered:
                        return expr
        if isinstance(expression, Literal) and isinstance(expression.value, int):
            position = expression.value
            if 1 <= position <= len(output):
                return output[position - 1][1]
            raise PlannerError(f"ORDER BY position {position} out of range")
        return expression
