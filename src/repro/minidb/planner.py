"""Physical planning for SELECT statements.

The planner turns a parsed :class:`SelectStatement` into a tree of plan
nodes, applying three classic optimizations:

* **predicate pushdown** — WHERE conjuncts that reference a single base
  table move into that table's scan (and can then use an index);
* **index selection** — a pushed equality conjunct on an indexed column
  becomes an index lookup; range conjuncts use a sorted index;
* **hash joins** — INNER/LEFT joins whose ON condition contains
  equi-conjuncts between the two sides build a hash table on the right
  input instead of a nested loop.

Rows flowing through the plan are *environments*: dicts mapping column
names (``binding.column`` and, when unambiguous, bare ``column``) to
values, plus the reserved ``__functions__`` registry entry.  This uniform
representation keeps expression evaluation identical across scans, joins,
aggregation and sorting.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from operator import itemgetter
from typing import Any, Dict, Iterator, List, Optional, Sequence, Set, Tuple, Union

from repro.errors import (
    AmbiguousColumnError,
    PlannerError,
    UnknownColumnError,
)
from repro.minidb.expressions import (
    AMBIGUOUS,
    Between,
    BinaryOp,
    Case,
    ColumnRef,
    Env,
    ExistsSubquery,
    Expression,
    FunctionCall,
    InList,
    InSubquery,
    IsNull,
    Like,
    Literal,
    UnaryOp,
    conjoin,
    conjuncts,
    order_key,
)
from repro.minidb.sql.ast import (
    AggregateRef,
    JoinClause,
    OrderItem,
    SelectItem,
    SelectStatement,
    SubqueryRef,
    TableRef,
)

Row = Tuple[Any, ...]

#: Kill-switch for the execution fast path: closure-compiled
#: expressions, trivial-subquery flattening, single-key join/group
#: hashing, and itemgetter row emission.  Flipping it off makes newly
#: built plans use the tree-walking interpreted pipeline — the benchmarks
#: use that to measure the pre-fast-path baseline, and it is an escape
#: hatch if a compiled closure misbehaves.  Cached plans built under the
#: previous setting keep their shape; call ``Database.clear_plan_cache()``
#: after changing it.
COMPILE_EXPRESSIONS = True

#: Kill-switch for the batch-vectorized executor (``repro.minidb.vector``).
#: When on, ``plan_select`` attaches a vectorized twin to every plan whose
#: root the batch path covers; ``QueryPlan.run`` routes through it.  Same
#: caching caveat as COMPILE_EXPRESSIONS: plans keep the shape they were
#: built with until ``Database.clear_plan_cache()``.
VECTORIZE = True

#: Serializes scoped overrides of the two module flags above.  The flags
#: are process-global, so the historical save/set/restore pattern was not
#: reentrant: two threads interleaving their restores could leave a flag
#: permanently flipped.  All scoped flag changes now go through
#: :func:`flag_overrides`, which holds this (reentrant) lock for the
#: duration of the override — concurrent overriders serialize, nested
#: overrides on one thread compose, and the restore always lands.
_FLAG_LOCK = threading.RLock()


@contextmanager
def flag_overrides(
    compile_expressions: Optional[bool] = None,
    vectorize: Optional[bool] = None,
) -> Iterator[None]:
    """Temporarily override the planner kill-switches, thread-safely.

    ``None`` leaves a flag untouched.  Plans built inside the scope bake
    the overridden flags in (as always); the plan cache keyed on prior
    flags is unaffected because callers that care (the testkit oracle)
    use fresh databases per run.
    """
    global COMPILE_EXPRESSIONS, VECTORIZE
    with _FLAG_LOCK:
        saved = (COMPILE_EXPRESSIONS, VECTORIZE)
        if compile_expressions is not None:
            COMPILE_EXPRESSIONS = compile_expressions
        if vectorize is not None:
            VECTORIZE = vectorize
        try:
            yield
        finally:
            COMPILE_EXPRESSIONS, VECTORIZE = saved


def compile_expression(expression: Expression) -> Any:
    if COMPILE_EXPRESSIONS:
        return expression.compile()
    return expression.evaluate


def _row_emitter(
    keys: List[Tuple[int, str, Optional[str]]]
) -> Tuple[List[str], Any]:
    """(env keys, row picker) for emitting a row tuple into an env dict.

    ``keys`` holds ``(row_index, qualified_name, bare_name_or_None)``
    triples; row indices need not be contiguous (pruned scans skip
    columns nothing references).  The picker pulls the qualified values
    followed by the duplicated bare-name values out of a row tuple in one
    C-level call, so emitting is a dict copy plus a single ``update``.
    """
    emit_keys = [qualified for _index, qualified, _bare in keys] + [
        bare for _index, _qualified, bare in keys if bare
    ]
    indices = [index for index, _qualified, _bare in keys] + [
        index for index, _qualified, bare in keys if bare
    ]
    if not indices:
        return emit_keys, lambda row: ()
    if len(indices) == 1:
        only = indices[0]
        return emit_keys, lambda row: (row[only],)
    return emit_keys, itemgetter(*indices)


class Binding:
    """One FROM-clause input: its name and the columns it exposes."""

    def __init__(self, name: str, columns: Sequence[str]) -> None:
        self.name = name
        self.columns = list(columns)
        self.column_set = {column.lower() for column in columns}

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Binding({self.name!r}, {self.columns})"


class PlanNode:
    """Base class for physical plan operators."""

    #: env keys this subtree contributes (used for LEFT-join NULL padding)
    env_keys: List[str]

    def rows(self) -> Iterator[Env]:
        raise NotImplementedError

    def describe(self) -> List[str]:
        raise NotImplementedError


class ScanNode(PlanNode):
    """Sequential or index-assisted scan of a base table."""

    def __init__(
        self,
        table: Any,
        binding: Binding,
        base_env: Env,
        bare_columns: Set[str],
        predicate: Optional[Expression] = None,
        access: Optional["IndexAccess"] = None,
        needed: Optional[Set[str]] = None,
    ) -> None:
        self.table = table
        self.binding = binding
        self.base_env = base_env
        self.predicate = predicate
        self._predicate = (
            compile_expression(predicate) if predicate is not None else None
        )
        self.access = access
        prefix = binding.name.lower() + "."
        self._keys = []
        for index, column in enumerate(table.schema.column_names):
            lowered = column.lower()
            qualified = prefix + lowered
            if (
                needed is not None
                and qualified not in needed
                and lowered not in needed
            ):
                continue  # nothing in the statement can touch this column
            bare = lowered if lowered in bare_columns else None
            if bare and needed is not None and lowered not in needed:
                bare = None  # only qualified references exist
            self._keys.append((index, qualified, bare))
        self.env_keys = [qualified for _index, qualified, _bare in self._keys] + [
            bare for _index, _qualified, bare in self._keys if bare
        ]
        # Hot path: one C-level itemgetter + dict update per row instead
        # of a Python loop over columns.
        self._emit_keys, self._pick = _row_emitter(self._keys)
        self._fast_emit = COMPILE_EXPRESSIONS

    def _emit(self, row: Row) -> Env:
        env = dict(self.base_env)
        if self._fast_emit:
            env.update(zip(self._emit_keys, self._pick(row)))
            return env
        for index, qualified, bare in self._keys:
            value = row[index]
            env[qualified] = value
            if bare:
                env[bare] = value
        return env

    def rows(self) -> Iterator[Env]:
        source = (
            self.access.rows(self.table)
            if self.access is not None
            else self.table.rows()
        )
        predicate = self._predicate
        if self._fast_emit:
            # Inlined _emit: per-row function-call overhead matters here.
            base_env = self.base_env
            emit_keys = self._emit_keys
            pick = self._pick
            if predicate is None:
                for row in source:
                    env = dict(base_env)
                    env.update(zip(emit_keys, pick(row)))
                    yield env
            else:
                for row in source:
                    env = dict(base_env)
                    env.update(zip(emit_keys, pick(row)))
                    if predicate(env) is True:
                        yield env
            return
        if predicate is None:
            for row in source:
                yield self._emit(row)
        else:
            for row in source:
                env = self._emit(row)
                if predicate(env) is True:
                    yield env

    def describe(self) -> List[str]:
        if self.access is not None:
            line = f"IndexScan({self.table.name} AS {self.binding.name} {self.access.describe()})"
        else:
            line = f"SeqScan({self.table.name} AS {self.binding.name})"
        if self.predicate is not None:
            line += f" filter={self.predicate.to_sql()}"
        return [line]


class IndexAccess:
    """An access path through a secondary index."""

    def __init__(
        self,
        index_info: Any,
        equal_key: Optional[Tuple[Any, ...]] = None,
        low: Optional[Tuple[Any, ...]] = None,
        high: Optional[Tuple[Any, ...]] = None,
        low_inclusive: bool = True,
        high_inclusive: bool = True,
    ) -> None:
        self.index_info = index_info
        self.equal_key = equal_key
        self.low = low
        self.high = high
        self.low_inclusive = low_inclusive
        self.high_inclusive = high_inclusive

    def rows(self, table: Any) -> Iterator[Row]:
        index = self.index_info.index
        if self.equal_key is not None:
            for rowid in list(index.find(self.equal_key)):
                yield table.get(rowid)
        else:
            for rowid in list(
                index.range(
                    self.low, self.high, self.low_inclusive, self.high_inclusive
                )
            ):
                yield table.get(rowid)

    def describe(self) -> str:
        name = self.index_info.name
        if self.equal_key is not None:
            return f"using {name} = {self.equal_key!r}"
        bounds = []
        if self.low is not None:
            op = ">=" if self.low_inclusive else ">"
            bounds.append(f"{op} {self.low!r}")
        if self.high is not None:
            op = "<=" if self.high_inclusive else "<"
            bounds.append(f"{op} {self.high!r}")
        return f"using {name} range {' and '.join(bounds)}"


class PrimaryKeyAccess:
    """Point lookup through the table's primary-key map."""

    def __init__(self, key: Tuple[Any, ...]) -> None:
        self.key = key

    def rows(self, table: Any) -> Iterator[Row]:
        row = table.lookup_pk(self.key)
        if row is not None:
            yield row

    def describe(self) -> str:
        return f"using primary key = {self.key!r}"


class SubqueryScanNode(PlanNode):
    """Executes a planned sub-select and streams its rows as env fragments."""

    def __init__(
        self,
        plan: "QueryPlan",
        binding: Binding,
        base_env: Env,
        bare_columns: Set[str],
    ) -> None:
        self.plan = plan
        self.binding = binding
        self.base_env = base_env
        prefix = binding.name.lower() + "."
        self._keys = []
        for index, column in enumerate(binding.columns):
            lowered = column.lower()
            bare = lowered if lowered in bare_columns else None
            self._keys.append((index, prefix + lowered, bare))
        self.env_keys = [qualified for _index, qualified, _bare in self._keys] + [
            bare for _index, _qualified, bare in self._keys if bare
        ]
        self._emit_keys, self._pick = _row_emitter(self._keys)
        self._fast_emit = COMPILE_EXPRESSIONS

    def rows(self) -> Iterator[Env]:
        _columns, rows = self.plan.run()
        base_env = self.base_env
        if self._fast_emit:
            emit_keys = self._emit_keys
            pick = self._pick
            for row in rows:
                env = dict(base_env)
                env.update(zip(emit_keys, pick(row)))
                yield env
            return
        for row in rows:
            env = dict(base_env)
            for index, qualified, bare in self._keys:
                value = row[index]
                env[qualified] = value
                if bare:
                    env[bare] = value
            yield env

    def describe(self) -> List[str]:
        inner = ["  " + line for line in self.plan.describe()]
        return [f"SubqueryScan(AS {self.binding.name})"] + inner


class HashJoinNode(PlanNode):
    """Equi-join: builds a hash table on the right, probes with the left."""

    def __init__(
        self,
        left: PlanNode,
        right: PlanNode,
        left_keys: List[Expression],
        right_keys: List[Expression],
        residual: Optional[Expression],
        left_outer: bool,
    ) -> None:
        self.left = left
        self.right = right
        self.left_keys = left_keys
        self.right_keys = right_keys
        self.residual = residual
        self.left_outer = left_outer
        self._left_keys = [compile_expression(expr) for expr in left_keys]
        self._right_keys = [compile_expression(expr) for expr in right_keys]
        self._residual = (
            compile_expression(residual) if residual is not None else None
        )
        self._single_key = COMPILE_EXPRESSIONS and len(self._right_keys) == 1
        self.env_keys = left.env_keys + right.env_keys

    def rows(self) -> Iterator[Env]:
        # Single-column equi-joins (the overwhelmingly common case) hash
        # the bare value, skipping per-row tuple construction.
        if self._single_key:
            yield from self._rows_single_key()
            return
        table: Dict[Tuple[Any, ...], List[Env]] = {}
        right_keys = self._right_keys
        for env in self.right.rows():
            key = tuple(expr(env) for expr in right_keys)
            if any(part is None for part in key):
                continue  # NULL never equi-joins
            table.setdefault(key, []).append(env)
        padding = {key: None for key in self.right.env_keys}
        left_keys = self._left_keys
        residual = self._residual
        for left_env in self.left.rows():
            key = tuple(expr(left_env) for expr in left_keys)
            matched = False
            if not any(part is None for part in key):
                for right_env in table.get(key, ()):
                    merged = {**left_env, **right_env}
                    if residual is None or residual(merged) is True:
                        matched = True
                        yield merged
            if not matched and self.left_outer:
                yield {**left_env, **padding}

    def _rows_single_key(self) -> Iterator[Env]:
        table: Dict[Any, List[Env]] = {}
        right_key = self._right_keys[0]
        for env in self.right.rows():
            key = right_key(env)
            if key is None:
                continue  # NULL never equi-joins
            bucket = table.get(key)
            if bucket is None:
                table[key] = [env]
            else:
                bucket.append(env)
        left_key = self._left_keys[0]
        residual = self._residual
        table_get = table.get
        if not self.left_outer:
            # Inner join: no match bookkeeping, no NULL padding.
            if residual is None:
                for left_env in self.left.rows():
                    bucket = table_get(left_key(left_env))
                    if bucket is None:
                        continue
                    for right_env in bucket:
                        yield {**left_env, **right_env}
                return
            for left_env in self.left.rows():
                bucket = table_get(left_key(left_env))
                if bucket is None:
                    continue
                for right_env in bucket:
                    merged = {**left_env, **right_env}
                    if residual(merged) is True:
                        yield merged
            return
        padding = {key: None for key in self.right.env_keys}
        empty: List[Env] = []
        for left_env in self.left.rows():
            key = left_key(left_env)
            matched = False
            if key is not None:
                for right_env in table.get(key, empty):
                    merged = {**left_env, **right_env}
                    if residual is None or residual(merged) is True:
                        matched = True
                        yield merged
            if not matched and self.left_outer:
                yield {**left_env, **padding}

    def describe(self) -> List[str]:
        kind = "LeftHashJoin" if self.left_outer else "HashJoin"
        keys = ", ".join(
            f"{l.to_sql()}={r.to_sql()}"
            for l, r in zip(self.left_keys, self.right_keys)
        )
        line = f"{kind}(on {keys})"
        if self.residual is not None:
            line += f" residual={self.residual.to_sql()}"
        return [line] + [
            "  " + inner for inner in self.left.describe() + self.right.describe()
        ]


class NestedLoopJoinNode(PlanNode):
    """General join: materializes the right side, loops per left row."""

    def __init__(
        self,
        left: PlanNode,
        right: PlanNode,
        condition: Optional[Expression],
        left_outer: bool,
    ) -> None:
        self.left = left
        self.right = right
        self.condition = condition
        self.left_outer = left_outer
        self._condition = (
            compile_expression(condition) if condition is not None else None
        )
        self.env_keys = left.env_keys + right.env_keys

    def rows(self) -> Iterator[Env]:
        right_rows = list(self.right.rows())
        padding = {key: None for key in self.right.env_keys}
        condition = self._condition
        for left_env in self.left.rows():
            matched = False
            for right_env in right_rows:
                merged = {**left_env, **right_env}
                if condition is None or condition(merged) is True:
                    matched = True
                    yield merged
            if not matched and self.left_outer:
                yield {**left_env, **padding}

    def describe(self) -> List[str]:
        kind = "LeftNestedLoopJoin" if self.left_outer else "NestedLoopJoin"
        line = kind + (
            f"(on {self.condition.to_sql()})" if self.condition is not None else "(cross)"
        )
        return [line] + [
            "  " + inner for inner in self.left.describe() + self.right.describe()
        ]


class FilterNode(PlanNode):
    def __init__(self, child: PlanNode, predicate: Expression) -> None:
        self.child = child
        self.predicate = predicate
        self._predicate = compile_expression(predicate)
        self.env_keys = child.env_keys

    def rows(self) -> Iterator[Env]:
        predicate = self._predicate
        for env in self.child.rows():
            if predicate(env) is True:
                yield env

    def describe(self) -> List[str]:
        return [f"Filter({self.predicate.to_sql()})"] + [
            "  " + line for line in self.child.describe()
        ]


class SingleRowNode(PlanNode):
    """FROM-less SELECT: one empty row carrying only the base env."""

    def __init__(self, base_env: Env) -> None:
        self.base_env = base_env
        self.env_keys = []

    def rows(self) -> Iterator[Env]:
        yield dict(self.base_env)

    def describe(self) -> List[str]:
        return ["SingleRow"]


class AggregateNode(PlanNode):
    """Hash aggregation over optional GROUP BY expressions.

    With no GROUP BY, a single global group is produced even over empty
    input (COUNT(*) of an empty table is 0).  Non-aggregated select
    expressions over grouped rows see a representative (first) row of each
    group, MySQL-style; the application schemas never rely on this.
    """

    def __init__(
        self,
        child: PlanNode,
        group_exprs: List[Expression],
        aggregate_calls: List[Any],
        base_env: Env,
        functions: Any,
    ) -> None:
        self.child = child
        self.group_exprs = group_exprs
        self.aggregate_calls = aggregate_calls
        self.base_env = base_env
        self.functions = functions
        self._group = [compile_expression(expr) for expr in group_exprs]
        self._single_group = (
            self._group[0]
            if COMPILE_EXPRESSIONS and len(self._group) == 1
            else None
        )
        self._arguments = [
            compile_expression(call.argument) if call.argument is not None else None
            for call in aggregate_calls
        ]
        self.env_keys = child.env_keys + [
            f"__agg_{index}" for index in range(len(aggregate_calls))
        ]

    def rows(self) -> Iterator[Env]:
        groups: Dict[Any, Dict[str, Any]] = {}
        order: List[Any] = []
        group_exprs = self._group
        arguments = self._arguments
        # Single-expression GROUP BY keys on the bare value; multi-column
        # (and the global group's empty tuple) keys on a tuple.
        single = self._single_group
        for env in self.child.rows():
            if single is not None:
                key: Any = single(env)
            else:
                key = tuple(expr(env) for expr in group_exprs)
            state = groups.get(key)
            if state is None:
                state = (
                    env,
                    [
                        self.functions.aggregate(call.name)
                        for call in self.aggregate_calls
                    ],
                    [
                        set() if call.distinct else None
                        for call in self.aggregate_calls
                    ],
                )
                groups[key] = state
                order.append(key)
            for argument, accumulator, seen in zip(
                arguments, state[1], state[2]
            ):
                if argument is None:  # COUNT(*)
                    value: Any = 1
                else:
                    value = argument(env)
                if seen is not None:
                    if value is None or value in seen:
                        continue
                    seen.add(value)
                accumulator.add(value)
        if not groups and not self.group_exprs:
            # Global aggregate over empty input.
            env = dict(self.base_env)
            for index, call in enumerate(self.aggregate_calls):
                accumulator = self.functions.aggregate(call.name)
                env[f"__agg_{index}"] = accumulator.result()
            yield env
            return
        for key in order:
            first_env, accumulators, _seen = groups[key]
            env = dict(first_env)
            for index, accumulator in enumerate(accumulators):
                env[f"__agg_{index}"] = accumulator.result()
            yield env

    def describe(self) -> List[str]:
        groups = ", ".join(expr.to_sql() for expr in self.group_exprs) or "<global>"
        calls = ", ".join(call.to_sql() for call in self.aggregate_calls)
        return [f"Aggregate(group by {groups}; {calls})"] + [
            "  " + line for line in self.child.describe()
        ]


class SortNode(PlanNode):
    def __init__(self, child: PlanNode, order_items: List[OrderItem]) -> None:
        self.child = child
        self.order_items = order_items
        self._keys = [compile_expression(item.expression) for item in order_items]
        self.env_keys = child.env_keys

    def rows(self) -> Iterator[Env]:
        materialized = list(self.child.rows())
        descending = [item.descending for item in self.order_items]
        keys = self._keys
        materialized.sort(
            key=lambda env: order_key(
                [expr(env) for expr in keys],
                descending,
            )
        )
        return iter(materialized)

    def describe(self) -> List[str]:
        spec = ", ".join(item.to_sql() for item in self.order_items)
        return [f"Sort({spec})"] + ["  " + line for line in self.child.describe()]


class LimitNode(PlanNode):
    def __init__(
        self, child: PlanNode, limit: Optional[int], offset: Optional[int]
    ) -> None:
        self.child = child
        self.limit = limit
        self.offset = offset or 0
        self.env_keys = child.env_keys

    def rows(self) -> Iterator[Env]:
        if self.limit is not None and self.limit <= 0:
            return
        produced = 0
        skipped = 0
        for env in self.child.rows():
            if skipped < self.offset:
                skipped += 1
                continue
            produced += 1
            yield env
            # Stop *before* pulling another row from the child, so scans
            # under a LIMIT terminate as early as possible.
            if self.limit is not None and produced >= self.limit:
                return

    def describe(self) -> List[str]:
        return [f"Limit({self.limit} offset {self.offset})"] + [
            "  " + line for line in self.child.describe()
        ]


class QueryPlan:
    """A complete plan: the env pipeline plus the output projection.

    Plans are reusable: the plan cache hands the same instance back for
    repeated executions of one query, and :meth:`bind_parameters` installs
    fresh ``?`` bindings into every scope's base env before each run.
    """

    def __init__(
        self,
        root: PlanNode,
        output: List[Tuple[str, Expression]],
        distinct: bool,
        base_env: Optional[Env] = None,
        post_limit: Optional[int] = None,
        post_offset: Optional[int] = None,
    ) -> None:
        self.root = root
        self.output = output
        self.distinct = distinct
        # LIMIT/OFFSET of a DISTINCT query truncate the *deduplicated*
        # stream, so they apply here rather than as a LimitNode.
        self.post_limit = post_limit
        self.post_offset = post_offset or 0
        self.base_env = base_env if base_env is not None else {}
        #: whether this plan was built under the compiled-expression
        #: pipeline (EXPLAIN reports it; cached plans keep their shape
        #: even if COMPILE_EXPRESSIONS is flipped later)
        self.compiled = COMPILE_EXPRESSIONS
        self._output = [compile_expression(expr) for _name, expr in output]
        self._project = self._build_projector()
        #: base tables referenced anywhere in this plan tree (cache keys)
        self.tables: Tuple[Any, ...] = ()
        #: True when planning baked IN/EXISTS subquery *data* into literals
        self.uses_snapshot = False
        self._param_envs: Optional[List[Env]] = None
        #: vectorized twin (``repro.minidb.vector.VectorPlan``) when this
        #: plan routed through the batch executor, else None (row path)
        self.vector: Optional[Any] = None
        #: serializes bind_parameters+run: cached plans are shared
        #: mutable objects, so two threads executing the same cached
        #: query must not interleave their parameter bindings
        self.exec_lock = threading.Lock()

    def _build_projector(self) -> Any:
        """env -> output row tuple, in one C-level call when possible.

        A projection made purely of column/aggregate references (the
        common case) becomes an ``itemgetter`` over validated env keys.
        Bare columns that resolve to the AMBIGUOUS sentinel keep the
        compiled path so the runtime error is preserved.
        """
        keys: Optional[List[str]] = [] if COMPILE_EXPRESSIONS else None
        if keys is not None:
            for _name, expression in self.output:
                if isinstance(expression, (ColumnRef, AggregateRef)):
                    key = expression.key
                    if self.base_env.get(key) is AMBIGUOUS:
                        keys = None
                        break
                    keys.append(key)
                else:
                    keys = None
                    break
        if keys is None or not keys:
            compiled = tuple(self._output)

            def project(env: Env) -> Row:
                return tuple(expression(env) for expression in compiled)

            return project
        if len(keys) == 1:
            only = keys[0]
            return lambda env: (env[only],)
        return itemgetter(*keys)

    @property
    def column_names(self) -> List[str]:
        return [name for name, _expr in self.output]

    def bind_parameters(self, params: Sequence[Any]) -> None:
        """Install ``?`` bindings into every scope of the plan tree.

        Nodes within one planner scope share a single base-env dict, so
        one write reaches every row env copied from it; nested subquery
        plans carry their own.  Called on *every* execution (with ``()``
        when no parameters were supplied) so bindings never leak from a
        prior run.
        """
        if self._param_envs is None:
            envs: List[Env] = []
            seen_ids: Set[int] = set()

            def record(env: Optional[Env]) -> None:
                if env is not None and id(env) not in seen_ids:
                    seen_ids.add(id(env))
                    envs.append(env)

            def walk(node: Any) -> None:
                record(getattr(node, "base_env", None))
                for attribute in ("child", "left", "right"):
                    branch = getattr(node, attribute, None)
                    if branch is not None:
                        walk(branch)
                inner = getattr(node, "plan", None)
                if inner is not None:
                    record(inner.base_env)
                    walk(inner.root)

            record(self.base_env)
            walk(self.root)
            self._param_envs = envs
        bound = tuple(params)
        for env in self._param_envs:
            env["__params__"] = bound

    def run(self) -> Tuple[List[str], List[Row]]:
        if self.vector is not None:
            return self.vector.run()
        project = self._project
        if self.distinct:
            if self.post_limit is not None and self.post_limit <= 0:
                return self.column_names, []
            rows: List[Row] = []
            seen: Set[Row] = set()
            skipped = 0
            for env in self.root.rows():
                row = project(env)
                if row in seen:
                    continue
                seen.add(row)
                if skipped < self.post_offset:
                    skipped += 1
                    continue
                rows.append(row)
                if self.post_limit is not None and len(rows) >= self.post_limit:
                    break
        else:
            rows = [project(env) for env in self.root.rows()]
        return self.column_names, rows

    def head_line(self) -> str:
        """The projection head line of :meth:`describe` (no tree, no Limit)."""
        spec = ", ".join(
            f"{expr.to_sql()} AS {name}" for name, expr in self.output
        )
        head = f"Project({spec})"
        if self.distinct:
            head = "Distinct " + head
        return head

    def describe(self) -> List[str]:
        lines = [self.head_line()] + [
            "  " + line for line in self.root.describe()
        ]
        if self.post_limit is not None or self.post_offset:
            lines = [f"Limit({self.post_limit} offset {self.post_offset})"] + [
                "  " + line for line in lines
            ]
        return lines


def plan_children(node: PlanNode) -> Iterator[PlanNode]:
    """Direct children of a physical plan node (incl. subquery roots)."""
    for attribute in ("child", "left", "right"):
        value = getattr(node, attribute, None)
        if isinstance(value, PlanNode):
            yield value
    inner = getattr(node, "plan", None)
    if isinstance(inner, QueryPlan):
        yield inner.root


def walk_plan(node: PlanNode) -> Iterator[PlanNode]:
    """Pre-order traversal of a plan tree, descending into subplans."""
    yield node
    for child in plan_children(node):
        yield from walk_plan(child)


# ---------------------------------------------------------------------------
# planning
# ---------------------------------------------------------------------------


def plan_select(database: Any, statement: SelectStatement) -> QueryPlan:
    """Build a :class:`QueryPlan` for a SELECT statement.

    The returned plan carries the metadata the plan cache validates on
    every hit: the base tables it touches and whether planning snapshotted
    subquery data into literals.
    """
    context = _PlanContext()
    plan = _Planner(database, context).plan(statement)
    plan.tables = tuple(context.tables)
    plan.uses_snapshot = context.uses_snapshot
    if VECTORIZE:
        # Deferred import: the vector package imports planner node types.
        from repro.minidb.vector import build_vector_plan

        for node in walk_plan(plan.root):
            inner = getattr(node, "plan", None)
            if isinstance(inner, QueryPlan) and inner.vector is None:
                inner.vector = build_vector_plan(inner)
        plan.vector = build_vector_plan(plan)
    return plan


class _PlanContext:
    """Metadata accumulated across a whole plan tree (incl. subplans)."""

    def __init__(self) -> None:
        self.tables: List[Any] = []
        self._table_ids: Set[int] = set()
        self.uses_snapshot = False

    def record_table(self, table: Any) -> None:
        if id(table) not in self._table_ids:
            self._table_ids.add(id(table))
            self.tables.append(table)


class _Planner:
    def __init__(
        self, database: Any, context: Optional[_PlanContext] = None
    ) -> None:
        self.database = database
        self._context = context if context is not None else _PlanContext()

    # -- binding resolution -------------------------------------------------

    def _binding_for(self, item: Union[TableRef, SubqueryRef]) -> Tuple[Binding, Any]:
        """Resolve a FROM item to (binding, payload).

        Payload is the Table for base tables, or a planned QueryPlan for
        subqueries and views (a view behaves like an inlined subquery).
        """
        if isinstance(item, TableRef):
            if self.database.has_view(item.name):
                view_plan = _Planner(self.database, self._context).plan(
                    self.database.view(item.name)
                )
                return Binding(item.binding, view_plan.column_names), view_plan
            table = self.database.table(item.name)
            self._context.record_table(table)
            return Binding(item.binding, table.schema.column_names), table
        flattened = self._flatten_subquery(item.query)
        if flattened is not None:
            self._context.record_table(flattened)
            return (
                Binding(item.binding, flattened.schema.column_names),
                flattened,
            )
        sub_plan = _Planner(self.database, self._context).plan(item.query)
        return Binding(item.binding, sub_plan.column_names), sub_plan

    def _flatten_subquery(self, query: SelectStatement) -> Optional[Any]:
        """The base table behind a trivial ``SELECT <all columns> FROM t``.

        The FlexRecs compiler wraps every table access in exactly this
        shape; scanning the table directly skips a SubqueryScan
        re-materialization per row (and lets pushed predicates reach the
        table's indexes).  Returns None when the subquery is anything
        more than a full-width, order-preserving projection.
        """
        if (
            not COMPILE_EXPRESSIONS
            or not isinstance(query, SelectStatement)
            or query.distinct
            or query.joins
            or query.where is not None
            or query.group_by
            or query.having is not None
            or query.order_by
            or query.limit is not None
            or query.offset is not None
            or query.aggregates
            or not isinstance(query.from_item, TableRef)
            or self.database.has_view(query.from_item.name)
            or not self.database.has_table(query.from_item.name)
        ):
            return None
        table = self.database.table(query.from_item.name)
        schema_columns = table.schema.column_names
        if len(query.items) != len(schema_columns):
            return None
        binding_name = query.from_item.binding.lower()
        for item, column in zip(query.items, schema_columns):
            expression = item.expression
            if (
                item.star_qualifier is not None
                or not isinstance(expression, ColumnRef)
                or expression.column.lower() != column.lower()
                or (
                    expression.qualifier is not None
                    and expression.qualifier.lower() != binding_name
                )
                or (item.alias is not None and item.alias.lower() != column.lower())
            ):
                return None
        return table

    def plan(self, statement: SelectStatement) -> QueryPlan:
        base_env: Env = {"__functions__": self.database.functions}

        # Uncorrelated IN/EXISTS subqueries are resolved once, here, into
        # literal lists/booleans.  The statement itself is never mutated
        # (views keep their stored form and re-resolve on every use).
        where = self._resolve_subqueries(statement.where)
        having = self._resolve_subqueries(statement.having)

        from_items: List[Union[TableRef, SubqueryRef]] = []
        join_specs: List[JoinClause] = []
        if statement.from_item is not None:
            from_items.append(statement.from_item)
            join_specs = [
                JoinClause(
                    join_type=join.join_type,
                    table=join.table,
                    condition=self._resolve_subqueries(join.condition),
                )
                for join in statement.joins
            ]
            from_items.extend(join.table for join in join_specs)

        resolved: List[Tuple[Binding, Any]] = [
            self._binding_for(item) for item in from_items
        ]
        bindings = [binding for binding, _payload in resolved]

        names_seen: Set[str] = set()
        for binding in bindings:
            lowered = binding.name.lower()
            if lowered in names_seen:
                raise PlannerError(
                    f"duplicate table alias {binding.name!r}; use AS to rename"
                )
            names_seen.add(lowered)

        # Bare column names usable without qualification.
        column_owners: Dict[str, int] = {}
        for binding in bindings:
            for column in binding.column_set:
                column_owners[column] = column_owners.get(column, 0) + 1
        unambiguous = {
            column for column, count in column_owners.items() if count == 1
        }
        for column, count in column_owners.items():
            if count > 1:
                base_env[column] = AMBIGUOUS

        # Which bindings sit on the NULL-padded side of a LEFT join?
        nullable_bindings: Set[str] = set()
        for join in join_specs:
            if join.join_type == "LEFT":
                nullable_bindings.add(join.table.binding.lower())

        # WHERE pushdown bookkeeping.
        where_conjuncts = conjuncts(where)
        pushed: Dict[str, List[Expression]] = {}
        remaining: List[Expression] = []
        for conjunct in where_conjuncts:
            targets = self._referenced_bindings(conjunct, bindings, unambiguous)
            if len(targets) == 1:
                target = next(iter(targets))
                if target not in nullable_bindings:
                    pushed.setdefault(target, []).append(conjunct)
                    continue
            remaining.append(conjunct)

        # Build leaf nodes.
        needed = self._pruned_columns(statement, where, having, join_specs)
        leaves: Dict[str, PlanNode] = {}
        for (binding, payload), item in zip(resolved, from_items):
            key = binding.name.lower()
            local = pushed.get(key, [])
            if isinstance(payload, QueryPlan):
                # Subquery or view: scan its planned output.
                node: PlanNode = SubqueryScanNode(
                    payload, binding, base_env, unambiguous
                )
                predicate = conjoin(local)
                if predicate is not None:
                    node = FilterNode(node, predicate)
            else:
                node = self._build_scan(
                    payload, binding, base_env, unambiguous, local, needed
                )
            leaves[key] = node

        # Join tree, left-deep in syntactic order.
        if not bindings:
            current: PlanNode = SingleRowNode(base_env)
        else:
            current = leaves[bindings[0].name.lower()]
            covered = {bindings[0].name.lower()}
            for join in join_specs:
                right_key = join.table.binding.lower()
                right = leaves[right_key]
                current = self._build_join(
                    current, right, covered, right_key, join, bindings, unambiguous
                )
                covered.add(right_key)

        predicate = conjoin(remaining)
        if predicate is not None:
            current = FilterNode(current, predicate)

        # Aggregation.
        if statement.aggregates or statement.group_by:
            current = AggregateNode(
                current,
                statement.group_by,
                statement.aggregates,
                base_env,
                self.database.functions,
            )
        if having is not None:
            current = FilterNode(current, having)

        # Output projection spec (before sort so aliases can be resolved).
        output = self._output_spec(statement, bindings)

        if statement.order_by:
            items = [
                OrderItem(
                    self._resolve_order_expression(
                        item.expression, output, bindings
                    ),
                    item.descending,
                )
                for item in statement.order_by
            ]
            current = SortNode(current, items)
        post_limit = post_offset = None
        if statement.limit is not None or statement.offset is not None:
            if statement.distinct:
                # SQL truncates *after* deduplication (DISTINCT, then
                # ORDER BY, then LIMIT/OFFSET).  The dedup happens at
                # projection time in QueryPlan.run, so the truncation
                # has to move above it too; a LimitNode here would cut
                # pre-dedup rows and under-produce.
                post_limit, post_offset = statement.limit, statement.offset
            else:
                current = LimitNode(current, statement.limit, statement.offset)

        return QueryPlan(
            current,
            output,
            statement.distinct,
            base_env=base_env,
            post_limit=post_limit,
            post_offset=post_offset,
        )

    # -- scan construction ----------------------------------------------------

    def _build_scan(
        self,
        table: Any,
        binding: Binding,
        base_env: Env,
        unambiguous: Set[str],
        local_conjuncts: List[Expression],
        needed: Optional[Set[str]] = None,
    ) -> PlanNode:
        access, residual = self._choose_access(table, binding, local_conjuncts)
        predicate = conjoin(residual)
        return ScanNode(
            table,
            binding,
            base_env,
            unambiguous,
            predicate=predicate,
            access=access,
            needed=needed,
        )

    def _pruned_columns(
        self,
        statement: SelectStatement,
        where: Optional[Expression],
        having: Optional[Expression],
        join_specs: List[JoinClause],
    ) -> Optional[Set[str]]:
        """Every column name the statement can touch, or None to keep all.

        Scans then emit only the columns something references.  ``SELECT
        *`` (or the interpreted baseline) disables pruning; collection is
        conservative — a bare name keeps that column in every table that
        has it.
        """
        if not COMPILE_EXPRESSIONS:
            return None
        refs: List[str] = []
        for item in statement.items:
            if item.is_star:
                return None
            item.expression._collect_columns(refs)
        for call in statement.aggregates:
            if call.argument is not None:
                call.argument._collect_columns(refs)
        for expression in statement.group_by:
            expression._collect_columns(refs)
        if where is not None:
            where._collect_columns(refs)
        if having is not None:
            having._collect_columns(refs)
        for join in join_specs:
            if join.condition is not None:
                join.condition._collect_columns(refs)
        for order in statement.order_by:
            order.expression._collect_columns(refs)
        return {name.lower() for name in refs}

    def _choose_access(
        self,
        table: Any,
        binding: Binding,
        local_conjuncts: List[Expression],
    ) -> Tuple[Optional[IndexAccess], List[Expression]]:
        """Pick an index access path from pushed-down conjuncts."""
        indexes = self.database.indexes_on(table.name)
        single_column = {
            info.columns[0].lower(): info
            for info in indexes
            if len(info.columns) == 1
        }

        def column_of(expr: Expression) -> Optional[str]:
            if isinstance(expr, ColumnRef):
                qualifier_ok = (
                    expr.qualifier is None
                    or expr.qualifier.lower() == binding.name.lower()
                )
                if qualifier_ok:
                    return expr.column.lower()
            return None

        # Primary-key point lookup: equality literals covering the whole key.
        pk = tuple(name.lower() for name in table.schema.primary_key)
        if pk:
            equalities: Dict[str, Tuple[int, Any]] = {}
            for position, conjunct in enumerate(local_conjuncts):
                if isinstance(conjunct, BinaryOp) and conjunct.op == "=":
                    for lhs, rhs in (
                        (conjunct.left, conjunct.right),
                        (conjunct.right, conjunct.left),
                    ):
                        column = column_of(lhs)
                        if (
                            column in pk
                            and isinstance(rhs, Literal)
                            and rhs.value is not None
                            and column not in equalities
                        ):
                            equalities[column] = (position, rhs.value)
            if len(equalities) == len(pk):
                used_positions = {position for position, _v in equalities.values()}
                residual = [
                    conjunct
                    for position, conjunct in enumerate(local_conjuncts)
                    if position not in used_positions
                ]
                key = tuple(equalities[column][1] for column in pk)
                return PrimaryKeyAccess(key), residual

        if not single_column:
            return None, local_conjuncts

        # Equality first: col = literal.
        for position, conjunct in enumerate(local_conjuncts):
            if isinstance(conjunct, BinaryOp) and conjunct.op == "=":
                for lhs, rhs in (
                    (conjunct.left, conjunct.right),
                    (conjunct.right, conjunct.left),
                ):
                    column = column_of(lhs)
                    if column in single_column and isinstance(rhs, Literal):
                        if rhs.value is None:
                            continue
                        residual = (
                            local_conjuncts[:position]
                            + local_conjuncts[position + 1 :]
                        )
                        access = IndexAccess(
                            single_column[column], equal_key=(rhs.value,)
                        )
                        return access, residual

        # Then ranges over a sorted index.
        for column, info in single_column.items():
            if info.kind != "sorted":
                continue
            low = high = None
            low_inclusive = high_inclusive = True
            used: List[int] = []
            for position, conjunct in enumerate(local_conjuncts):
                if not (
                    isinstance(conjunct, BinaryOp)
                    and conjunct.op in (">", ">=", "<", "<=")
                ):
                    continue
                operator = conjunct.op
                lhs, rhs = conjunct.left, conjunct.right
                target = column_of(lhs)
                literal: Optional[Literal] = (
                    rhs if isinstance(rhs, Literal) else None
                )
                if target != column or literal is None:
                    # Try the flipped form: literal OP column.
                    target = column_of(rhs)
                    literal = lhs if isinstance(lhs, Literal) else None
                    if target != column or literal is None:
                        continue
                    operator = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}[operator]
                if literal.value is None:
                    continue
                if operator in (">", ">="):
                    if low is None or (literal.value,) > low:
                        low = (literal.value,)
                        low_inclusive = operator == ">="
                        used.append(position)
                else:
                    if high is None or (literal.value,) < high:
                        high = (literal.value,)
                        high_inclusive = operator == "<="
                        used.append(position)
            if low is not None or high is not None:
                residual = [
                    conjunct
                    for position, conjunct in enumerate(local_conjuncts)
                    if position not in used
                ]
                access = IndexAccess(
                    info,
                    low=low,
                    high=high,
                    low_inclusive=low_inclusive,
                    high_inclusive=high_inclusive,
                )
                return access, residual
        return None, local_conjuncts

    # -- join construction ------------------------------------------------------

    def _build_join(
        self,
        left: PlanNode,
        right: PlanNode,
        covered: Set[str],
        right_key: str,
        join: JoinClause,
        bindings: List[Binding],
        unambiguous: Set[str],
    ) -> PlanNode:
        left_outer = join.join_type == "LEFT"
        if join.join_type == "CROSS" or join.condition is None:
            return NestedLoopJoinNode(left, right, None, left_outer=False)
        equi_left: List[Expression] = []
        equi_right: List[Expression] = []
        residual: List[Expression] = []
        for conjunct in conjuncts(join.condition):
            pair = self._equi_pair(
                conjunct, covered, right_key, bindings, unambiguous
            )
            if pair is not None:
                equi_left.append(pair[0])
                equi_right.append(pair[1])
            else:
                residual.append(conjunct)
        if equi_left:
            return HashJoinNode(
                left,
                right,
                equi_left,
                equi_right,
                conjoin(residual),
                left_outer,
            )
        return NestedLoopJoinNode(left, right, join.condition, left_outer)

    def _equi_pair(
        self,
        conjunct: Expression,
        covered: Set[str],
        right_key: str,
        bindings: List[Binding],
        unambiguous: Set[str],
    ) -> Optional[Tuple[Expression, Expression]]:
        """If ``conjunct`` is left_expr = right_expr across the join, split it."""
        if not (isinstance(conjunct, BinaryOp) and conjunct.op == "="):
            return None
        left_refs = self._referenced_bindings(conjunct.left, bindings, unambiguous)
        right_refs = self._referenced_bindings(conjunct.right, bindings, unambiguous)
        if left_refs <= covered and right_refs == {right_key}:
            return conjunct.left, conjunct.right
        if right_refs <= covered and left_refs == {right_key}:
            return conjunct.right, conjunct.left
        return None

    # -- helpers -----------------------------------------------------------

    def _referenced_bindings(
        self,
        expression: Expression,
        bindings: List[Binding],
        unambiguous: Set[str],
    ) -> Set[str]:
        result: Set[str] = set()
        for reference in expression.columns_referenced():
            if "." in reference:
                qualifier, column = reference.split(".", 1)
                lowered = qualifier.lower()
                match = next(
                    (b for b in bindings if b.name.lower() == lowered), None
                )
                if match is None:
                    raise UnknownColumnError(
                        f"unknown table alias {qualifier!r} in {reference!r}"
                    )
                if column.lower() not in match.column_set:
                    raise UnknownColumnError(
                        f"table {qualifier!r} has no column {column!r}"
                    )
                result.add(lowered)
            else:
                lowered = reference.lower()
                owners = [
                    binding
                    for binding in bindings
                    if lowered in binding.column_set
                ]
                if not owners:
                    raise UnknownColumnError(f"unknown column {reference!r}")
                if len(owners) > 1:
                    raise AmbiguousColumnError(
                        f"column {reference!r} is ambiguous; qualify it"
                    )
                result.add(owners[0].name.lower())
        return result

    def _output_spec(
        self,
        statement: SelectStatement,
        bindings: List[Binding],
    ) -> List[Tuple[str, Expression]]:
        output: List[Tuple[str, Expression]] = []
        for item in statement.items:
            if item.is_star:
                targets = (
                    bindings
                    if item.star_qualifier == ""
                    else [
                        binding
                        for binding in bindings
                        if binding.name.lower() == item.star_qualifier.lower()
                    ]
                )
                if item.star_qualifier != "" and not targets:
                    raise PlannerError(
                        f"unknown alias {item.star_qualifier!r} in select list"
                    )
                if not bindings:
                    raise PlannerError("SELECT * requires a FROM clause")
                for binding in targets:
                    for column in binding.columns:
                        output.append(
                            (
                                column,
                                ColumnRef(column=column, qualifier=binding.name),
                            )
                        )
                continue
            # Validate column references now so bad selects fail at plan
            # time (views rely on this for create-time validation).
            self._referenced_bindings(item.expression, bindings, set())
            name = item.alias
            if name is None:
                if isinstance(item.expression, ColumnRef):
                    name = item.expression.column
                elif isinstance(item.expression, AggregateRef):
                    name = item.expression.call.name
                else:
                    name = item.expression.to_sql()
            output.append((name, item.expression))
        return output

    def _resolve_subqueries(
        self, expression: Optional[Expression]
    ) -> Optional[Expression]:
        """Replace uncorrelated IN/EXISTS subqueries with their values.

        ``x IN (SELECT ...)`` becomes an :class:`InList` of literals (the
        subquery must yield exactly one column) and ``EXISTS (SELECT
        ...)`` becomes a boolean literal.  Nested occurrences inside
        AND/OR/NOT/CASE/functions are handled; unchanged subtrees are
        returned as-is (no needless copying).
        """
        if expression is None:
            return None
        if isinstance(expression, InSubquery):
            if expression.has_parameters:
                raise PlannerError(
                    "parameters (?) are not supported inside IN (SELECT ...) "
                    "subqueries: the subquery is resolved at plan time, "
                    "before bindings exist; inline the value or rewrite as "
                    "a join"
                )
            sub_plan = _Planner(self.database, self._context).plan(
                expression.query
            )
            self._context.uses_snapshot = True
            columns, rows = sub_plan.run()
            if len(columns) != 1:
                raise PlannerError(
                    "IN (SELECT ...) must yield exactly one column, got "
                    f"{len(columns)}"
                )
            operand = self._resolve_subqueries(expression.operand)
            return InList(
                operand,
                [Literal(row[0]) for row in rows],
                negated=expression.negated,
            ) if rows else InList(
                operand, [], negated=expression.negated
            )
        if isinstance(expression, ExistsSubquery):
            if expression.has_parameters:
                raise PlannerError(
                    "parameters (?) are not supported inside EXISTS "
                    "(SELECT ...) subqueries: the subquery is resolved at "
                    "plan time, before bindings exist; inline the value or "
                    "rewrite as a join"
                )
            sub_plan = _Planner(self.database, self._context).plan(
                expression.query
            )
            self._context.uses_snapshot = True
            exists = False
            for _env in sub_plan.root.rows():
                exists = True
                break
            return Literal(exists != expression.negated)
        if isinstance(expression, BinaryOp):
            left = self._resolve_subqueries(expression.left)
            right = self._resolve_subqueries(expression.right)
            if left is expression.left and right is expression.right:
                return expression
            return BinaryOp(expression.op, left, right)
        if isinstance(expression, UnaryOp):
            operand = self._resolve_subqueries(expression.operand)
            if operand is expression.operand:
                return expression
            return UnaryOp(expression.op, operand)
        if isinstance(expression, IsNull):
            operand = self._resolve_subqueries(expression.operand)
            if operand is expression.operand:
                return expression
            return IsNull(operand, negated=expression.negated)
        if isinstance(expression, InList):
            operand = self._resolve_subqueries(expression.operand)
            items = [self._resolve_subqueries(item) for item in expression.items]
            if operand is expression.operand and all(
                new is old for new, old in zip(items, expression.items)
            ):
                return expression
            return InList(operand, items, negated=expression.negated)
        if isinstance(expression, Between):
            operand = self._resolve_subqueries(expression.operand)
            low = self._resolve_subqueries(expression.low)
            high = self._resolve_subqueries(expression.high)
            if (
                operand is expression.operand
                and low is expression.low
                and high is expression.high
            ):
                return expression
            return Between(operand, low, high, negated=expression.negated)
        if isinstance(expression, Like):
            operand = self._resolve_subqueries(expression.operand)
            pattern = self._resolve_subqueries(expression.pattern)
            if operand is expression.operand and pattern is expression.pattern:
                return expression
            return Like(
                operand,
                pattern,
                negated=expression.negated,
                case_insensitive=expression.case_insensitive,
            )
        if isinstance(expression, Case):
            branches = [
                (
                    self._resolve_subqueries(condition),
                    self._resolve_subqueries(value),
                )
                for condition, value in expression.branches
            ]
            default = self._resolve_subqueries(expression.default)
            return Case(branches, default)
        if isinstance(expression, FunctionCall):
            arguments = [
                self._resolve_subqueries(argument)
                for argument in expression.arguments
            ]
            if all(
                new is old
                for new, old in zip(arguments, expression.arguments)
            ):
                return expression
            return FunctionCall(expression.name, arguments)
        return expression

    def _resolve_order_expression(
        self,
        expression: Expression,
        output: List[Tuple[str, Expression]],
        bindings: List[Binding],
    ) -> Expression:
        """ORDER BY may name a select alias or a 1-based output position.

        A bare name that is also a base column resolves to the base column;
        otherwise it resolves to the matching select-list expression.
        """
        if isinstance(expression, ColumnRef) and expression.qualifier is None:
            lowered = expression.column.lower()
            resolvable = any(
                lowered in binding.column_set for binding in bindings
            )
            if not resolvable:
                for name, expr in output:
                    if name.lower() == lowered:
                        return expr
        if isinstance(expression, Literal) and isinstance(expression.value, int):
            position = expression.value
            if 1 <= position <= len(output):
                return output[position - 1][1]
            raise PlannerError(f"ORDER BY position {position} out of range")
        return expression
