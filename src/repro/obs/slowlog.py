"""Slow-query log: retain the top-K slowest queries over a threshold.

Every query whose wall time crosses ``threshold_ms`` is offered to the
log; only the K slowest are retained (a min-heap keyed by duration, so
the cheapest retained entry is evicted first).  Each entry keeps the SQL
text, duration, an optional rendered plan, and arbitrary attributes —
enough to replay the query offline with EXPLAIN ANALYZE.
"""

from __future__ import annotations

import heapq
import itertools
import threading
from typing import Any, Dict, List, Optional

__all__ = ["SlowQueryEntry", "SlowQueryLog"]


class SlowQueryEntry:
    """One retained slow query."""

    __slots__ = ("sql", "duration_ms", "plan", "attrs")

    def __init__(
        self,
        sql: str,
        duration_ms: float,
        plan: Optional[str] = None,
        attrs: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.sql = sql
        self.duration_ms = duration_ms
        self.plan = plan
        self.attrs = attrs or {}

    def to_dict(self) -> Dict[str, Any]:
        return {
            "sql": self.sql,
            "duration_ms": self.duration_ms,
            "plan": self.plan,
            "attrs": dict(self.attrs),
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<SlowQuery {self.duration_ms:.3f}ms {self.sql[:40]!r}>"


class SlowQueryLog:
    """Threshold-gated, top-K bounded log of the slowest queries."""

    def __init__(self, threshold_ms: float = 10.0, top_k: int = 32) -> None:
        if top_k < 1:
            raise ValueError("top_k must be at least 1")
        self.threshold_ms = float(threshold_ms)
        self.top_k = top_k
        self._lock = threading.Lock()
        # Min-heap of (duration_ms, tiebreak, entry); the tiebreak keeps
        # heap comparisons away from SlowQueryEntry itself.
        self._heap: List[Any] = []
        self._tiebreak = itertools.count()
        self._offered = 0
        self._retained_total = 0

    def offer(
        self,
        sql: str,
        duration_ms: float,
        plan: Optional[str] = None,
        attrs: Optional[Dict[str, Any]] = None,
    ) -> bool:
        """Record the query if it is slow enough; returns True if kept."""
        with self._lock:
            self._offered += 1
            if duration_ms < self.threshold_ms:
                return False
            if (
                len(self._heap) >= self.top_k
                and duration_ms <= self._heap[0][0]
            ):
                return False
            entry = SlowQueryEntry(sql, duration_ms, plan, attrs)
            item = (duration_ms, next(self._tiebreak), entry)
            if len(self._heap) >= self.top_k:
                heapq.heapreplace(self._heap, item)
            else:
                heapq.heappush(self._heap, item)
            self._retained_total += 1
            return True

    def entries(self) -> List[SlowQueryEntry]:
        """Retained entries, slowest first."""
        with self._lock:
            items = sorted(self._heap, key=lambda item: -item[0])
        return [entry for _, _, entry in items]

    def stats(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "threshold_ms": self.threshold_ms,
                "top_k": self.top_k,
                "offered": self._offered,
                "retained_total": self._retained_total,
                "retained_now": len(self._heap),
            }

    def export(self) -> List[Dict[str, Any]]:
        return [entry.to_dict() for entry in self.entries()]

    def __len__(self) -> int:
        with self._lock:
            return len(self._heap)

    def clear(self) -> None:
        with self._lock:
            self._heap.clear()
            self._offered = 0
            self._retained_total = 0
