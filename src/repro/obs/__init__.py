"""repro.obs — zero-dependency observability: spans, metrics, slow log.

One module-level singleton, :data:`OBS`, is the process-wide switchboard.
Instrumented call sites follow a single discipline:

* **hot paths** guard explicitly — ``if OBS.enabled: OBS.metrics.inc(...)``
  — so the disabled cost is one attribute load and a branch, with no
  allocation and no function call;
* **cool paths** may use ``with OBS.span("name"):`` which returns a
  shared no-op context manager when disabled.

``OBS`` is disabled by default.  ``OBS.enable()`` turns everything on;
``OBS.reset()`` clears all recorded state (and is called from the test
fixtures so suites never observe each other's residue).  The components
are importable on their own (:class:`~repro.obs.trace.Tracer`,
:class:`~repro.obs.metrics.MetricsRegistry`,
:class:`~repro.obs.slowlog.SlowQueryLog`) for private/per-worker use —
benchmark workers accumulate into private registries and merge them, and
the merge is associative and commutative by construction.

``python -m repro.obs`` renders a human-readable report from a metrics
snapshot JSON file (see :mod:`repro.obs.report`).
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from .metrics import COUNT_EDGES, DEFAULT_MS_EDGES, Histogram, MetricsRegistry
from .slowlog import SlowQueryEntry, SlowQueryLog
from .trace import NOOP_SPAN, SpanRecord, Tracer

__all__ = [
    "OBS",
    "ObsState",
    "Tracer",
    "SpanRecord",
    "MetricsRegistry",
    "Histogram",
    "SlowQueryLog",
    "SlowQueryEntry",
    "DEFAULT_MS_EDGES",
    "COUNT_EDGES",
    "NOOP_SPAN",
]


class ObsState:
    """Enable switch plus the tracer/metrics/slow-log trio."""

    __slots__ = ("enabled", "tracer", "metrics", "slow_log")

    def __init__(
        self,
        ring_size: int = 2048,
        slow_threshold_ms: float = 10.0,
        slow_top_k: int = 32,
    ) -> None:
        self.enabled = False
        self.tracer = Tracer(ring_size=ring_size)
        self.metrics = MetricsRegistry()
        self.slow_log = SlowQueryLog(
            threshold_ms=slow_threshold_ms, top_k=slow_top_k
        )

    def enable(self) -> "ObsState":
        self.enabled = True
        return self

    def disable(self) -> "ObsState":
        self.enabled = False
        return self

    def reset(self) -> "ObsState":
        """Drop all recorded spans/metrics/slow queries (keeps config)."""
        self.tracer.clear()
        self.metrics.clear()
        self.slow_log.clear()
        return self

    def span(self, name: str, attrs: Optional[Dict[str, Any]] = None):
        """A span when enabled, the shared no-op otherwise.

        Convenient for cool paths; hot paths should guard with
        ``if OBS.enabled:`` and call ``self.tracer.span`` directly.
        """
        if self.enabled:
            return self.tracer.span(name, attrs)
        return NOOP_SPAN

    def snapshot(self) -> Dict[str, Any]:
        """JSON-ready dump of metrics + slow log + span count."""
        return {
            "enabled": self.enabled,
            "metrics": self.metrics.snapshot(),
            "slow_queries": self.slow_log.export(),
            "slow_log": self.slow_log.stats(),
            "span_count": len(self.tracer),
        }


OBS = ObsState()
