"""Render metrics/slow-log snapshots as a human-readable report.

The input is the JSON produced by :meth:`repro.obs.ObsState.snapshot`
(or just its ``metrics`` sub-object) — the same shape the benchmarks
hook dumps to ``benchmarks/out/obs_metrics.json``.  Multiple snapshot
files merge before rendering (counters/gauges add, histograms add
bucket-wise), mirroring :meth:`MetricsRegistry.merge`.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Optional

from .metrics import Histogram, MetricsRegistry

__all__ = [
    "registry_from_snapshot",
    "merge_snapshots",
    "render_report",
    "load_snapshot",
]


def load_snapshot(path: str) -> Dict[str, Any]:
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


def _metrics_section(snapshot: Dict[str, Any]) -> Dict[str, Any]:
    if "metrics" in snapshot and isinstance(snapshot["metrics"], dict):
        return snapshot["metrics"]
    return snapshot


def registry_from_snapshot(snapshot: Dict[str, Any]) -> MetricsRegistry:
    """Rebuild a live registry from a snapshot dict."""
    section = _metrics_section(snapshot)
    registry = MetricsRegistry()
    for name, value in section.get("counters", {}).items():
        registry.inc(name, int(value))
    for name, value in section.get("gauges", {}).items():
        registry.set_gauge(name, float(value))
    for name, dump in section.get("histograms", {}).items():
        histogram = Histogram(tuple(dump["edges"]))
        histogram.counts = [int(c) for c in dump["counts"]]
        histogram.count = int(dump["count"])
        histogram.total = float(dump["total"])
        histogram.min = dump.get("min")
        histogram.max = dump.get("max")
        registry._histograms[name] = histogram  # rebuilt verbatim
    return registry


def merge_snapshots(snapshots: Iterable[Dict[str, Any]]) -> MetricsRegistry:
    registry = MetricsRegistry()
    for snapshot in snapshots:
        registry.merge(registry_from_snapshot(snapshot))
    return registry


def _format_number(value: Optional[float]) -> str:
    if value is None:
        return "-"
    if isinstance(value, int) or float(value).is_integer():
        return f"{int(value)}"
    return f"{value:.3f}"


def render_report(
    registry: MetricsRegistry,
    slow_queries: Optional[List[Dict[str, Any]]] = None,
) -> str:
    """A plain-text report: counters, gauges, histograms, slow queries."""
    lines: List[str] = []
    snapshot = registry.snapshot()

    counters = snapshot["counters"]
    if counters:
        lines.append("counters:")
        width = max(len(name) for name in counters)
        for name in sorted(counters):
            lines.append(f"  {name:<{width}}  {counters[name]}")

    gauges = snapshot["gauges"]
    if gauges:
        if lines:
            lines.append("")
        lines.append("gauges:")
        width = max(len(name) for name in gauges)
        for name in sorted(gauges):
            lines.append(
                f"  {name:<{width}}  {_format_number(gauges[name])}"
            )

    histograms = snapshot["histograms"]
    if histograms:
        if lines:
            lines.append("")
        lines.append("histograms:")
        for name in sorted(histograms):
            dump = histograms[name]
            lines.append(
                "  {name}  n={n} mean={mean} p50={p50} p95={p95} "
                "p99={p99} min={mn} max={mx}".format(
                    name=name,
                    n=dump["count"],
                    mean=_format_number(dump["mean"]),
                    p50=_format_number(dump["p50"]),
                    p95=_format_number(dump["p95"]),
                    p99=_format_number(dump["p99"]),
                    mn=_format_number(dump["min"]),
                    mx=_format_number(dump["max"]),
                )
            )

    if slow_queries:
        if lines:
            lines.append("")
        lines.append(f"slow queries (top {len(slow_queries)}):")
        for entry in slow_queries:
            lines.append(
                f"  {entry['duration_ms']:.3f}ms  {entry['sql']}"
            )
            if entry.get("plan"):
                for plan_line in entry["plan"].splitlines():
                    lines.append(f"    | {plan_line}")

    if not lines:
        lines.append("(empty snapshot)")
    return "\n".join(lines)
