"""Mergeable metrics: counters, gauges, and fixed-bucket histograms.

The registry is designed around one algebraic requirement: **merge is
associative and commutative**.  Benchmarks and (later) parallel workers
each accumulate into a private registry, and any merge order yields the
same totals — counters add, gauges add, histograms add bucket-wise
(identical edges are required, and every histogram for a given metric
name is created from the same edge preset, so merges never mix shapes).

Histograms use fixed bucket edges chosen at creation (latency-style
millisecond edges by default, or a coarse count preset for cardinality
metrics).  Quantile estimates interpolate within the owning bucket and
are clamped to the observed ``[min, max]``, so an estimate can never
escape the bucket edges that bound it.

Thread safety: every mutating entry point takes the registry lock, so N
threads incrementing one registry lose no updates (pinned by the
concurrency smoke test before any async/sharding work builds on this).
"""

from __future__ import annotations

import threading
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "DEFAULT_MS_EDGES",
    "COUNT_EDGES",
    "Histogram",
    "MetricsRegistry",
]

# Latency edges (milliseconds): sub-0.1ms guard-level costs up through
# multi-second outliers, roughly geometric.
DEFAULT_MS_EDGES: Tuple[float, ...] = (
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
    25.0,
    50.0,
    100.0,
    250.0,
    500.0,
    1000.0,
    2500.0,
)

# Cardinality edges (row counts, candidate counts, ...).
COUNT_EDGES: Tuple[float, ...] = (
    1.0,
    2.0,
    5.0,
    10.0,
    25.0,
    50.0,
    100.0,
    250.0,
    500.0,
    1000.0,
    5000.0,
    10000.0,
)


class Histogram:
    """Fixed-bucket histogram with an overflow bucket and min/max/sum.

    Buckets are half-open ``(prev_edge, edge]`` intervals plus a final
    ``(last_edge, +inf)`` overflow bucket, so ``len(counts) ==
    len(edges) + 1`` and every observation lands in exactly one bucket:
    counts are conserved under any sequence of merges.
    """

    __slots__ = ("edges", "counts", "count", "total", "min", "max")

    def __init__(self, edges: Sequence[float] = DEFAULT_MS_EDGES) -> None:
        if not edges:
            raise ValueError("histogram needs at least one bucket edge")
        ordered = tuple(float(edge) for edge in edges)
        if any(b <= a for a, b in zip(ordered, ordered[1:])):
            raise ValueError("histogram edges must be strictly increasing")
        self.edges = ordered
        self.counts = [0] * (len(ordered) + 1)
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        value = float(value)
        self.counts[self._bucket_index(value)] += 1
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    def _bucket_index(self, value: float) -> int:
        # Linear scan: edge lists are short (~15) and this is only hit
        # when observability is enabled.
        for index, edge in enumerate(self.edges):
            if value <= edge:
                return index
        return len(self.edges)

    @property
    def mean(self) -> Optional[float]:
        if self.count == 0:
            return None
        return self.total / self.count

    def quantile(self, q: float) -> Optional[float]:
        """Estimate the q-quantile (0 <= q <= 1) from bucket counts.

        Interpolates linearly within the bucket that holds the target
        rank and clamps to the observed ``[min, max]``, so the estimate
        is always bounded by the edges of its bucket.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be within [0, 1]")
        if self.count == 0 or self.min is None or self.max is None:
            return None
        if q == 0.0:
            return self.min
        if q == 1.0:
            return self.max
        rank = q * self.count
        cumulative = 0
        for index, bucket_count in enumerate(self.counts):
            if bucket_count == 0:
                continue
            previous = cumulative
            cumulative += bucket_count
            if cumulative >= rank:
                lower = self.min if index == 0 else self.edges[index - 1]
                upper = (
                    self.max
                    if index == len(self.edges)
                    else self.edges[index]
                )
                lower = max(lower, self.min)
                upper = min(upper, self.max)
                if upper <= lower:
                    return max(self.min, min(lower, self.max))
                fraction = (rank - previous) / bucket_count
                fraction = min(1.0, max(0.0, fraction))
                estimate = lower + (upper - lower) * fraction
                return max(self.min, min(estimate, self.max))
        return self.max

    def merge(self, other: "Histogram") -> None:
        """Fold ``other`` into this histogram (bucket-wise addition)."""
        if self.edges != other.edges:
            raise ValueError(
                "cannot merge histograms with different bucket edges"
            )
        for index, bucket_count in enumerate(other.counts):
            self.counts[index] += bucket_count
        self.count += other.count
        self.total += other.total
        if other.min is not None and (self.min is None or other.min < self.min):
            self.min = other.min
        if other.max is not None and (self.max is None or other.max > self.max):
            self.max = other.max

    def copy(self) -> "Histogram":
        clone = Histogram(self.edges)
        clone.counts = list(self.counts)
        clone.count = self.count
        clone.total = self.total
        clone.min = self.min
        clone.max = self.max
        return clone

    def snapshot(self) -> Dict[str, Any]:
        return {
            "edges": list(self.edges),
            "counts": list(self.counts),
            "count": self.count,
            "total": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
            "p50": self.quantile(0.5),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Histogram n={self.count} mean={self.mean}>"


class MetricsRegistry:
    """Named counters, gauges, and histograms behind one lock."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, int] = {}
        self._gauges: Dict[str, float] = {}
        self._histograms: Dict[str, Histogram] = {}

    # -- write path ---------------------------------------------------------

    def inc(self, name: str, amount: int = 1) -> None:
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + amount

    def set_gauge(self, name: str, value: float) -> None:
        with self._lock:
            self._gauges[name] = float(value)

    def add_gauge(self, name: str, delta: float) -> None:
        with self._lock:
            self._gauges[name] = self._gauges.get(name, 0.0) + float(delta)

    def observe(
        self,
        name: str,
        value: float,
        edges: Sequence[float] = DEFAULT_MS_EDGES,
    ) -> None:
        with self._lock:
            histogram = self._histograms.get(name)
            if histogram is None:
                histogram = Histogram(edges)
                self._histograms[name] = histogram
            histogram.observe(value)

    # -- read path ----------------------------------------------------------

    def counter(self, name: str) -> int:
        with self._lock:
            return self._counters.get(name, 0)

    def gauge(self, name: str) -> Optional[float]:
        with self._lock:
            return self._gauges.get(name)

    def histogram(self, name: str) -> Optional[Histogram]:
        with self._lock:
            histogram = self._histograms.get(name)
            return histogram.copy() if histogram is not None else None

    def counters(self) -> Dict[str, int]:
        with self._lock:
            return dict(self._counters)

    def names(self) -> List[str]:
        with self._lock:
            return sorted(
                set(self._counters)
                | set(self._gauges)
                | set(self._histograms)
            )

    def snapshot(self) -> Dict[str, Any]:
        """A JSON-ready copy of everything in the registry."""
        with self._lock:
            return {
                "counters": dict(self._counters),
                "gauges": dict(self._gauges),
                "histograms": {
                    name: histogram.snapshot()
                    for name, histogram in self._histograms.items()
                },
            }

    # -- algebra ------------------------------------------------------------

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold ``other`` into this registry.

        Counters and gauges add; histograms add bucket-wise.  Addition is
        associative and commutative, so merging worker registries in any
        order (or any grouping) produces identical totals — the property
        suite pins this.
        """
        with other._lock:
            other_counters = dict(other._counters)
            other_gauges = dict(other._gauges)
            other_histograms = {
                name: histogram.copy()
                for name, histogram in other._histograms.items()
            }
        with self._lock:
            for name, value in other_counters.items():
                self._counters[name] = self._counters.get(name, 0) + value
            for name, value in other_gauges.items():
                self._gauges[name] = self._gauges.get(name, 0.0) + value
            for name, histogram in other_histograms.items():
                mine = self._histograms.get(name)
                if mine is None:
                    self._histograms[name] = histogram
                else:
                    mine.merge(histogram)

    @classmethod
    def merged(
        cls, registries: Iterable["MetricsRegistry"]
    ) -> "MetricsRegistry":
        result = cls()
        for registry in registries:
            result.merge(registry)
        return result

    def clear(self) -> None:
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()
