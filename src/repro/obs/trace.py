"""Context-local tracing: nested spans with a bounded ring-buffer recorder.

A **span** is one timed operation (a query, a search, a cloud build)
carrying a name, attributes, and a wall-clock duration.  Spans nest: the
tracer keeps a per-thread stack, so a span opened while another is active
records that parent and its depth — ``app.search_courses`` encloses
``search.query`` encloses ``minidb.execute``.

Finished spans land in a fixed-size ring buffer (old spans age out, the
recorder never grows unboundedly) and can be exported as plain dicts or
JSON for offline analysis.  All public entry points are thread-safe: the
span *stack* is thread-local, the *ring* is shared under a lock.

The tracer itself never checks whether observability is enabled — the
instrumentation sites guard with ``OBS.enabled`` before touching it, so
the disabled fast path costs one attribute read and a branch, with no
allocation (see :mod:`repro.obs`).
"""

from __future__ import annotations

import json
import threading
import time
from collections import deque
from typing import Any, Dict, Iterator, List, Optional

__all__ = ["SpanRecord", "Tracer", "NOOP_SPAN"]


class SpanRecord:
    """One finished span, as stored in the ring buffer."""

    __slots__ = (
        "name",
        "attrs",
        "started",
        "duration_ms",
        "depth",
        "parent",
        "thread_id",
        "index",
    )

    def __init__(
        self,
        name: str,
        attrs: Optional[Dict[str, Any]],
        started: float,
        duration_ms: float,
        depth: int,
        parent: Optional[str],
        thread_id: int,
        index: int,
    ) -> None:
        self.name = name
        self.attrs = attrs or {}
        self.started = started
        self.duration_ms = duration_ms
        self.depth = depth
        self.parent = parent
        self.thread_id = thread_id
        self.index = index

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "attrs": dict(self.attrs),
            "started": self.started,
            "duration_ms": self.duration_ms,
            "depth": self.depth,
            "parent": self.parent,
            "thread_id": self.thread_id,
            "index": self.index,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<Span {self.name} {self.duration_ms:.3f}ms depth={self.depth}>"
        )


class _ActiveSpan:
    """Context manager for one in-flight span."""

    __slots__ = ("_tracer", "name", "attrs", "_started")

    def __init__(
        self, tracer: "Tracer", name: str, attrs: Optional[Dict[str, Any]]
    ) -> None:
        self._tracer = tracer
        self.name = name
        self.attrs = dict(attrs) if attrs else {}
        self._started = 0.0

    def set(self, **attrs: Any) -> "_ActiveSpan":
        """Attach attributes to the span while it is open."""
        self.attrs.update(attrs)
        return self

    def __enter__(self) -> "_ActiveSpan":
        self._tracer._push(self)
        self._started = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, traceback) -> bool:
        duration_ms = (time.perf_counter() - self._started) * 1000.0
        if exc_type is not None:
            self.attrs.setdefault("error", exc_type.__name__)
        self._tracer._finish(self, duration_ms)
        return False


class _NoopSpan:
    """Shared do-nothing span used whenever tracing is disabled.

    A single module-level instance is handed to every caller, so the
    disabled path allocates nothing.
    """

    __slots__ = ()

    def set(self, **attrs: Any) -> "_NoopSpan":
        return self

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, exc_type, exc, traceback) -> bool:
        return False


NOOP_SPAN = _NoopSpan()


class Tracer:
    """Records nested spans into a bounded ring buffer."""

    def __init__(self, ring_size: int = 2048) -> None:
        self._ring: deque = deque(maxlen=ring_size)
        self._lock = threading.Lock()
        self._local = threading.local()
        self._sequence = 0

    # -- span lifecycle -----------------------------------------------------

    def span(self, name: str, attrs: Optional[Dict[str, Any]] = None):
        """Open a nested span; use as a context manager."""
        return _ActiveSpan(self, name, attrs)

    def record(
        self,
        name: str,
        duration_ms: float,
        attrs: Optional[Dict[str, Any]] = None,
    ) -> SpanRecord:
        """Record an already-measured operation as a completed span.

        Used by call sites that time themselves (e.g. the search engine
        measures ``elapsed_ms`` into its own result object and reports
        the *same* number here — one measurement, two views).
        """
        stack = self._stack()
        parent = stack[-1].name if stack else None
        return self._append(
            name, attrs, time.perf_counter(), duration_ms, len(stack), parent
        )

    # -- inspection ---------------------------------------------------------

    def records(self) -> List[SpanRecord]:
        """Finished spans, oldest first (a snapshot copy)."""
        with self._lock:
            return list(self._ring)

    def __len__(self) -> int:
        with self._lock:
            return len(self._ring)

    def __iter__(self) -> Iterator[SpanRecord]:
        return iter(self.records())

    def export(self) -> List[Dict[str, Any]]:
        """The ring buffer as plain dicts (JSON-ready)."""
        return [record.to_dict() for record in self.records()]

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.export(), indent=indent, default=str)

    def active_depth(self) -> int:
        """Nesting depth of the calling thread's open spans."""
        return len(self._stack())

    def clear(self) -> None:
        with self._lock:
            self._ring.clear()

    # -- internals ----------------------------------------------------------

    def _stack(self) -> List[_ActiveSpan]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def _push(self, span: _ActiveSpan) -> None:
        self._stack().append(span)

    def _finish(self, span: _ActiveSpan, duration_ms: float) -> None:
        stack = self._stack()
        # Tolerate mis-nested exits (a span closed twice, or closed on a
        # different thread): drop back to the matching frame if present.
        if stack and stack[-1] is span:
            stack.pop()
        elif span in stack:  # pragma: no cover - defensive
            del stack[stack.index(span) :]
        parent = stack[-1].name if stack else None
        self._append(
            span.name,
            span.attrs,
            span._started,
            duration_ms,
            len(stack),
            parent,
        )

    def _append(
        self,
        name: str,
        attrs: Optional[Dict[str, Any]],
        started: float,
        duration_ms: float,
        depth: int,
        parent: Optional[str],
    ) -> SpanRecord:
        with self._lock:
            index = self._sequence
            self._sequence += 1
            record = SpanRecord(
                name=name,
                attrs=attrs,
                started=started,
                duration_ms=duration_ms,
                depth=depth,
                parent=parent,
                thread_id=threading.get_ident(),
                index=index,
            )
            self._ring.append(record)
        return record
