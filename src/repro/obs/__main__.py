"""``python -m repro.obs`` — render observability snapshots.

Usage::

    python -m repro.obs report benchmarks/out/obs_metrics.json
    python -m repro.obs report a.json b.json        # merge, then render
    python -m repro.obs report --json merged.json   # merged JSON instead
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from .report import load_snapshot, merge_snapshots, render_report


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Render observability metrics snapshots.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    report_parser = subparsers.add_parser(
        "report", help="render one or more snapshot JSON files"
    )
    report_parser.add_argument(
        "snapshots", nargs="+", help="snapshot JSON file(s) to merge+render"
    )
    report_parser.add_argument(
        "--json",
        action="store_true",
        help="emit the merged snapshot as JSON instead of text",
    )

    args = parser.parse_args(argv)

    if args.command == "report":
        snapshots = [load_snapshot(path) for path in args.snapshots]
        registry = merge_snapshots(snapshots)
        slow_queries = []
        for snapshot in snapshots:
            slow_queries.extend(snapshot.get("slow_queries", []))
        slow_queries.sort(key=lambda entry: -entry["duration_ms"])
        if args.json:
            print(json.dumps(registry.snapshot(), indent=2, default=str))
        else:
            print(render_report(registry, slow_queries or None))
        return 0
    return 2  # pragma: no cover - argparse enforces a command


if __name__ == "__main__":
    sys.exit(main())
