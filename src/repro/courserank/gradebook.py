"""Grade distributions: official vs self-reported.

Section 2.2 ("It's the Data, Stupid" / privacy): only the School of
Engineering agreed to release official distributions; for other courses
CourseRank displays the distribution of self-reported grades; and no
distribution at all is shown for classes with very few students, "since
that may disclose information about individual students".

This module computes both kinds of distribution; the disclosure decision
itself (k-anonymity threshold, which source to show) lives in
:mod:`repro.courserank.privacy`.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.courserank.models import GradeDistribution
from repro.courserank.schema import GRADE_BUCKETS
from repro.minidb.catalog import Database


class GradeBook:
    """Distribution queries over OfficialGrades and Enrollments."""

    def __init__(self, database: Database) -> None:
        self.database = database

    def official_distribution(
        self, course_id: int, year: Optional[int] = None
    ) -> Optional[GradeDistribution]:
        """The registrar's histogram, or None when not on file."""
        where = f"WHERE CourseID = {course_id}"
        if year is not None:
            where += f" AND Year = {year}"
        result = self.database.query(
            f"SELECT Bucket, SUM(GradeCount) AS n FROM OfficialGrades "
            f"{where} GROUP BY Bucket"
        )
        if not result.rows:
            return None
        counts = {bucket: 0 for bucket in GRADE_BUCKETS}
        for bucket, count in result.rows:
            counts[bucket] = int(count)
        return GradeDistribution(
            course_id=course_id, counts=counts, source="official"
        )

    def self_reported_distribution(
        self, course_id: int
    ) -> Optional[GradeDistribution]:
        """Histogram of grades students entered in the Planner."""
        result = self.database.query(
            "SELECT Grade, COUNT(*) AS n FROM Enrollments "
            f"WHERE CourseID = {course_id} AND Grade IS NOT NULL "
            "GROUP BY Grade"
        )
        if not result.rows:
            return None
        counts = {bucket: 0 for bucket in GRADE_BUCKETS}
        for bucket, count in result.rows:
            if bucket in counts:
                counts[bucket] = count
        return GradeDistribution(
            course_id=course_id, counts=counts, source="self-reported"
        )

    def department_releases_official(self, course_id: int) -> bool:
        """Does this course's department release official distributions?"""
        value = self.database.query(
            "SELECT d.ReleasesOfficialGrades FROM Courses c "
            "JOIN Departments d ON c.DepID = d.DepID "
            f"WHERE c.CourseID = {course_id}"
        )
        if not value.rows:
            return False
        return bool(value.rows[0][0])

    def distribution_agreement(self, course_id: int) -> Optional[float]:
        """Total-variation agreement between official and self-reported.

        Returns ``1 - 0.5 * Σ|p_official - p_self|`` in [0, 1], or None
        when either distribution is missing.  The paper observes official
        Engineering distributions are "very close" to self-reported ones,
        "validating our claim that students are entering valid data" —
        the L1 experiment checks this holds on the synthetic population.
        """
        official = self.official_distribution(course_id)
        self_reported = self.self_reported_distribution(course_id)
        if official is None or self_reported is None:
            return None
        official_fracs = official.fractions()
        self_fracs = self_reported.fractions()
        distance = 0.5 * sum(
            abs(official_fracs[bucket] - self_fracs[bucket])
            for bucket in GRADE_BUCKETS
        )
        return 1.0 - distance

    def courses_with_official_grades(self) -> List[int]:
        result = self.database.query(
            "SELECT DISTINCT CourseID FROM OfficialGrades ORDER BY CourseID"
        )
        return [row[0] for row in result.rows]
