"""FlexRecs wiring: the recommendation feature of the site.

"FlexRecs lets us experiment with different recommendation strategies
(workflows), and offer users options for personalizing recommendations"
(Section 3.2).  This module is the *site administrator* surface: a
registry of named strategies (the prebuilt ones plus any custom workflow
factory the administrator registers), per-user personalization
parameters, an execution-path switch (direct vs compiled SQL, on any
registered execution backend), and the post-filter removing courses the
student already took.

Backend selection: ``RecommendationService(db, backend="sqlite3")`` (or
the ``REPRO_BACKEND`` environment variable) routes the compiled-SQL path
through any driver registered with :mod:`repro.backends` — the same
workflow objects run unchanged, rendered in the target engine's dialect.
``path`` may also name a registered backend directly per call.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional

from repro.errors import FlexRecsError
from repro.core import strategies
from repro.obs import OBS
from repro.core.workflow import Recommendation, RecommendStats, Workflow
from repro.minidb.catalog import Database

StrategyFactory = Callable[..., Workflow]

#: strategies available out of the box, keyed by the name users pick
DEFAULT_STRATEGIES: Dict[str, StrategyFactory] = {
    "related_courses": strategies.related_courses,
    "collaborative_filtering": strategies.collaborative_filtering,
    "collaborative_filtering_fresh": strategies.collaborative_filtering_fresh,
    "similar_grade_students": strategies.similar_grade_students,
    "grade_based_filtering": strategies.grade_based_filtering,
    "similar_students_pearson": strategies.similar_students_pearson,
    "recommended_majors": strategies.recommended_majors,
    "recommended_quarters": strategies.recommended_quarters,
    "courses_taken_together": strategies.courses_taken_together,
    "similar_audience_courses": strategies.similar_audience_courses,
    "graph_rank_courses": strategies.graph_rank_courses,
    "similar_by_folkrank": strategies.similar_by_folkrank,
}


class RecommendationService:
    """Executes named recommendation strategies for users."""

    def __init__(
        self,
        database: Database,
        use_compiled_sql: bool = True,
        backend: Optional[str] = None,
    ) -> None:
        from repro.backends.registry import default_backend_name

        self.database = database
        self.use_compiled_sql = use_compiled_sql
        #: name of the execution backend the compiled-SQL path routes
        #: through; ``None`` in the constructor defers to REPRO_BACKEND
        #: (default: the in-process minidb engine)
        self.backend_name = backend or default_backend_name()
        # Instantiated drivers, created lazily per backend name so an
        # external engine's data mirror persists (and stays version-
        # synced) across calls.
        self._backends: Dict[str, Any] = {}
        self._registry: Dict[str, StrategyFactory] = dict(DEFAULT_STRATEGIES)
        #: RecommendStats of the most recent direct-path run (the SQL
        #: paths execute inside the engine and record none)
        self.last_stats: List[RecommendStats] = []

    def backend(self, name: Optional[str] = None) -> Any:
        """The (lazily created, cached) driver for ``name``.

        Defaults to this service's configured backend.  Drivers are
        bound to the service's catalog database and reused across calls
        so snapshot syncs stay incremental.
        """
        from repro.backends.registry import create_backend

        key = (name or self.backend_name).lower()
        driver = self._backends.get(key)
        if driver is None:
            driver = create_backend(key, self.database)
            self._backends[key] = driver
        return driver

    # -- administrator surface ----------------------------------------------

    def register(self, name: str, factory: StrategyFactory) -> None:
        """Register a custom strategy (the FlexRecs admin tool)."""
        if not callable(factory):
            raise FlexRecsError("strategy factory must be callable")
        self._registry[name] = factory

    def register_dsl(self, name: str, text: str) -> Workflow:
        """Register a strategy written in the textual workflow language.

        The text may contain ``{param}`` placeholders filled from the
        keyword arguments at run time, e.g. ``filter [SuID = {student_id}]``.
        The workflow is validated once now (with placeholders filled by
        ``0``) so syntax errors surface at registration.
        """
        from repro.core.dsl import parse_workflow

        class _Probe(dict):
            def __missing__(self, key):
                return "1"  # valid for ids, counts, and top-k alike

        probe = parse_workflow(text.format_map(_Probe()), name=name)
        probe.validate(self.database)

        def factory(**params: Any) -> Workflow:
            return parse_workflow(text.format(**params), name=name)

        self._registry[name] = factory
        return probe

    def available(self) -> List[str]:
        return sorted(self._registry)

    def build(self, name: str, **params: Any) -> Workflow:
        factory = self._registry.get(name)
        if factory is None:
            raise FlexRecsError(
                f"unknown strategy {name!r}; available: {self.available()}"
            )
        return factory(**params)

    # -- execution ------------------------------------------------------------

    def run(
        self,
        name: str,
        path: Optional[str] = None,
        optimize: bool = False,
        **params: Any,
    ) -> Recommendation:
        """Run a strategy.

        ``path`` forces 'direct', 'sql' (one compiled statement on the
        configured backend), 'staged' (a sequence of SQL calls with temp
        tables), or the name of any registered execution backend
        ('minidb', 'sqlite3', ...).  ``optimize=True`` applies the
        algebraic rewriter first.
        """
        workflow = self.build(name, **params)
        return self.run_workflow(workflow, path=path, optimize=optimize)

    def run_workflow(
        self,
        workflow: Workflow,
        path: Optional[str] = None,
        optimize: bool = False,
    ) -> Recommendation:
        if optimize:
            from repro.core.optimizer import optimize as rewrite

            workflow = rewrite(workflow, self.database)
        if getattr(workflow, "direct_only", False):
            # Graph-backed workflows have no SQL form on any backend;
            # whatever path was configured or requested, they run on the
            # reference executor.
            path = "direct"
        if path is None:
            path = "sql" if self.use_compiled_sql else "direct"
        with OBS.span(
            "recommend.run", {"workflow": workflow.name, "path": path}
        ):
            if path == "sql":
                # The classic in-engine path when the service targets
                # minidb; otherwise render + execute on the configured
                # backend (same workflow object, different dialect).
                if self.backend_name == "minidb":
                    return workflow.run_sql(self.database)
                return workflow.run_backend(self.backend())
            if path == "direct":
                recommendation = workflow.run(self.database)
                self.last_stats = recommendation.stats
                return recommendation
            if path == "staged":
                from repro.core.staged import run_staged

                workflow.validate(self.database)
                return run_staged(workflow, self.database)
            from repro.backends.registry import REGISTRY

            if REGISTRY.is_registered(path):
                return workflow.run_backend(self.backend(path))
        raise FlexRecsError(f"unknown execution path {path!r}")

    # -- course recommendation post-processing --------------------------------

    def courses_for_student(
        self,
        suid: int,
        strategy: str = "collaborative_filtering",
        top_k: int = 10,
        exclude_taken: bool = True,
        path: Optional[str] = None,
        **params: Any,
    ) -> Recommendation:
        """Course recommendations with the already-taken filter applied.

        "If a course A has as a prerequisite a course B, then A should
        not be recommended independently" — we additionally flag rows
        whose prerequisites the student has not completed.
        """
        params.setdefault("student_id", suid)
        params.setdefault("top_k", top_k + 50 if exclude_taken else top_k)
        recommendation = self.run(strategy, path=path, **params)
        if "CourseID" not in recommendation.columns:
            return recommendation
        taken = set(
            self.database.query(
                f"SELECT CourseID FROM Enrollments WHERE SuID = {suid}"
            ).column("CourseID")
        )
        prereqs = self._prerequisites_of(
            [row["CourseID"] for row in recommendation.rows]
        )
        rows = []
        for row in recommendation.rows:
            course_id = row["CourseID"]
            if exclude_taken and course_id in taken:
                continue
            missing = [
                prereq
                for prereq in prereqs.get(course_id, ())
                if prereq not in taken
            ]
            annotated = dict(row)
            annotated["missing_prerequisites"] = missing
            rows.append(annotated)
            if len(rows) >= top_k:
                break
        columns = list(recommendation.columns) + ["missing_prerequisites"]
        return Recommendation(
            columns=columns, rows=rows, stats=recommendation.stats
        )

    def _prerequisites_of(self, course_ids: List[int]) -> Dict[int, List[int]]:
        if not course_ids:
            return {}
        listed = ", ".join(str(course_id) for course_id in set(course_ids))
        rows = self.database.query(
            "SELECT CourseID, PrereqID FROM Prerequisites "
            f"WHERE CourseID IN ({listed})"
        ).rows
        grouped: Dict[int, List[int]] = {}
        for course_id, prereq in rows:
            grouped.setdefault(course_id, []).append(prereq)
        return grouped
