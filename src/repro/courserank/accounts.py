"""Constituencies and authorization.

CourseRank has three very distinct user types (Section 2.1): students,
faculty, and staff — plus the property that, unlike open social sites,
every user is validated against official university identities ("real
ids" in Table 1).  This module models that: users register against an
existing Student or Instructor record, and every write action is gated by
a role → action permission table.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict, FrozenSet, Optional

from repro.errors import AuthorizationError, CourseRankError
from repro.minidb.catalog import Database


class Role(Enum):
    STUDENT = "student"
    FACULTY = "faculty"
    STAFF = "staff"

    @classmethod
    def parse(cls, text: str) -> "Role":
        for role in cls:
            if role.value == text:
                return role
        raise CourseRankError(f"unknown role {text!r}")


@dataclass(frozen=True)
class User:
    """An authenticated user: account id, username, role, person link."""

    user_id: int
    username: str
    role: Role
    person_id: Optional[int] = None  # SuID for students, InstructorID for faculty


#: which actions each constituency may perform
PERMISSIONS: Dict[str, FrozenSet[Role]] = {
    # student contributions
    "comment": frozenset({Role.STUDENT}),
    "rate": frozenset({Role.STUDENT}),
    "vote_comment": frozenset({Role.STUDENT}),
    "plan": frozenset({Role.STUDENT}),
    "enroll": frozenset({Role.STUDENT}),
    "ask_question": frozenset({Role.STUDENT}),
    "answer_question": frozenset({Role.STUDENT, Role.FACULTY, Role.STAFF}),
    "report_textbook": frozenset({Role.STUDENT, Role.FACULTY}),
    # faculty features
    "faculty_note": frozenset({Role.FACULTY}),
    "compare_courses": frozenset({Role.FACULTY, Role.STAFF}),
    # staff features
    "define_requirement": frozenset({Role.STAFF}),
    "seed_faq": frozenset({Role.STAFF}),
    "advise_student": frozenset({Role.STAFF}),
    # everyone
    "search": frozenset({Role.STUDENT, Role.FACULTY, Role.STAFF}),
    "view_course": frozenset({Role.STUDENT, Role.FACULTY, Role.STAFF}),
    "recommend": frozenset({Role.STUDENT, Role.FACULTY, Role.STAFF}),
}


class AccountManager:
    """Registration, lookup, and authorization against the Users table."""

    def __init__(self, database: Database) -> None:
        self.database = database

    # -- registration ------------------------------------------------------

    def _next_user_id(self) -> int:
        current = self.database.query(
            "SELECT MAX(UserID) FROM Users"
        ).scalar()
        return (current or 0) + 1

    def register(
        self,
        username: str,
        role: Role,
        person_id: Optional[int] = None,
    ) -> User:
        """Create an account, validating the person link per constituency.

        Students must reference an existing Students row and faculty an
        Instructors row — the paper's "Restricted Access": CourseRank can
        validate that a user really is a student or professor.
        """
        if not username:
            raise CourseRankError("username must be non-empty")
        if role is Role.STUDENT:
            if person_id is None or not self._exists(
                "Students", "SuID", person_id
            ):
                raise AuthorizationError(
                    f"student registration requires a valid SuID, got {person_id!r}"
                )
        elif role is Role.FACULTY:
            if person_id is None or not self._exists(
                "Instructors", "InstructorID", person_id
            ):
                raise AuthorizationError(
                    "faculty registration requires a valid InstructorID, "
                    f"got {person_id!r}"
                )
        user_id = self._next_user_id()
        self.database.table("Users").insert(
            [user_id, username, role.value, person_id]
        )
        return User(
            user_id=user_id, username=username, role=role, person_id=person_id
        )

    def _exists(self, table: str, column: str, value: int) -> bool:
        result = self.database.query(
            f"SELECT COUNT(*) FROM {table} WHERE {column} = {int(value)}"
        )
        return result.scalar() > 0

    # -- lookup ---------------------------------------------------------------

    def authenticate(self, username: str) -> User:
        """Look up a user by username (the university SSO already vouched)."""
        table = self.database.table("Users")
        for row in table.scan_equal("Username", username):
            user_id, name, role_text, person_id = row
            return User(
                user_id=user_id,
                username=name,
                role=Role.parse(role_text),
                person_id=person_id,
            )
        raise AuthorizationError(f"unknown user {username!r}")

    def get(self, user_id: int) -> User:
        row = self.database.table("Users").lookup_pk((user_id,))
        if row is None:
            raise AuthorizationError(f"unknown user id {user_id}")
        return User(
            user_id=row[0],
            username=row[1],
            role=Role.parse(row[2]),
            person_id=row[3],
        )

    # -- authorization -----------------------------------------------------

    def authorize(self, user: User, action: str) -> None:
        """Raise :class:`AuthorizationError` unless ``user`` may ``action``."""
        allowed = PERMISSIONS.get(action)
        if allowed is None:
            raise CourseRankError(f"unknown action {action!r}")
        if user.role not in allowed:
            raise AuthorizationError(
                f"{user.role.value} accounts may not {action.replace('_', ' ')}"
            )

    def can(self, user: User, action: str) -> bool:
        try:
            self.authorize(user, action)
        except AuthorizationError:
            return False
        return True

    def count_by_role(self) -> Dict[str, int]:
        result = self.database.query(
            "SELECT Role, COUNT(*) AS n FROM Users GROUP BY Role"
        )
        return {row[0]: row[1] for row in result.rows}
