"""The incentive-point scheme.

Section 2.2 ("Meaningful Incentives") describes Yahoo! Answers' scoring
scheme — best answer 10 points, daily login 1 point, voting for what
becomes the best answer 1 point — and argues points alone don't make
users contribute *sensibly*; CourseRank's real incentive is useful tools.
We implement the ledger anyway (it's part of the system the paper
sketches) with a Y!-Answers-style schedule extended to CourseRank
actions, plus the audit queries the L1 experiment uses.
"""

from __future__ import annotations

import datetime
from typing import Dict, List, Optional, Tuple

from repro.errors import CourseRankError
from repro.minidb.catalog import Database

#: points awarded per action (Yahoo! Answers-inspired, Section 2.2)
POINT_SCHEDULE: Dict[str, int] = {
    "daily_login": 1,
    "ask_question": 2,
    "answer_question": 3,
    "best_answer": 10,
    "vote_for_best_answer": 1,
    "comment": 5,
    "rate_course": 1,
    "report_textbook": 2,
    "enter_courses": 3,
    "share_plan": 1,
}


class IncentiveLedger:
    """Append-only point ledger over the PointsLedger relation."""

    def __init__(self, database: Database) -> None:
        self.database = database

    def _next_entry_id(self) -> int:
        current = self.database.query(
            "SELECT MAX(EntryID) FROM PointsLedger"
        ).scalar()
        return (current or 0) + 1

    def award(
        self,
        user_id: int,
        action: str,
        day: Optional[datetime.date] = None,
    ) -> int:
        """Record one action; returns the points awarded.

        ``daily_login`` is idempotent per (user, day) — logging in twice
        the same day yields one point, per the Y! Answers rule.
        """
        points = POINT_SCHEDULE.get(action)
        if points is None:
            raise CourseRankError(
                f"unknown incentive action {action!r}; "
                f"known: {sorted(POINT_SCHEDULE)}"
            )
        day = day or datetime.date.today()
        if action == "daily_login" and self._logged_in_on(user_id, day):
            return 0
        self.database.table("PointsLedger").insert(
            [self._next_entry_id(), user_id, action, points, day]
        )
        return points

    def _logged_in_on(self, user_id: int, day: datetime.date) -> bool:
        result = self.database.query(
            "SELECT COUNT(*) FROM PointsLedger "
            f"WHERE UserID = {user_id} AND Action = 'daily_login' "
            f"AND AwardDate = DATE '{day.isoformat()}'"
        )
        return result.scalar() > 0

    # -- reporting -----------------------------------------------------------

    def total(self, user_id: int) -> int:
        value = self.database.query(
            f"SELECT SUM(Points) FROM PointsLedger WHERE UserID = {user_id}"
        ).scalar()
        return int(value or 0)

    def breakdown(self, user_id: int) -> Dict[str, int]:
        result = self.database.query(
            "SELECT Action, SUM(Points) AS p FROM PointsLedger "
            f"WHERE UserID = {user_id} GROUP BY Action"
        )
        return {row[0]: int(row[1]) for row in result.rows}

    def leaderboard(self, limit: int = 10) -> List[Tuple[int, int]]:
        """Top users by points: [(user_id, points), ...]."""
        result = self.database.query(
            "SELECT UserID, SUM(Points) AS p FROM PointsLedger "
            f"GROUP BY UserID ORDER BY p DESC, UserID ASC LIMIT {limit}"
        )
        return [(row[0], int(row[1])) for row in result.rows]

    def action_counts(self) -> Dict[str, int]:
        """Sitewide count of each incentivized action (audit view)."""
        result = self.database.query(
            "SELECT Action, COUNT(*) AS n FROM PointsLedger GROUP BY Action"
        )
        return {row[0]: row[1] for row in result.rows}
