"""Comments, ratings, and comment helpfulness votes.

Students "provide information, such as comments on courses, ratings,
questions and answers" and can "rank the accuracy of each others'
comments" (Section 2).  One comment+rating per (student, course) — the
Comments primary key — keeps rating vectors well-defined for FlexRecs.
"""

from __future__ import annotations

import datetime
from typing import Dict, List, Optional, Tuple

from repro.errors import CourseRankError
from repro.courserank.models import Comment
from repro.minidb.catalog import Database

MIN_RATING = 1.0
MAX_RATING = 5.0


class RatingsService:
    """Write and read comments/ratings with validation."""

    def __init__(self, database: Database) -> None:
        self.database = database

    # -- writes ---------------------------------------------------------------

    def add_comment(
        self,
        suid: int,
        course_id: int,
        text: Optional[str],
        rating: Optional[float],
        year: Optional[int] = None,
        term: Optional[str] = None,
        day: Optional[datetime.date] = None,
    ) -> Comment:
        """Add (or replace) a student's comment+rating on a course."""
        if text is None and rating is None:
            raise CourseRankError("a comment needs text, a rating, or both")
        if rating is not None and not (MIN_RATING <= rating <= MAX_RATING):
            raise CourseRankError(
                f"rating must be between {MIN_RATING} and {MAX_RATING}"
            )
        table = self.database.table("Comments")
        day = day or datetime.date.today()
        existing = table.lookup_pk((suid, course_id))
        row = [suid, course_id, year, term, text, rating, day]
        if existing is not None:
            table.update_where(
                lambda r: r[0] == suid and r[1] == course_id,
                lambda r: row,
            )
        else:
            table.insert(row)
        return Comment(
            suid=suid,
            course_id=course_id,
            year=year,
            term=term,
            text=text,
            rating=rating,
            comment_date=day,
        )

    def vote_comment(
        self, voter_suid: int, author_suid: int, course_id: int, helpful: bool
    ) -> None:
        """Record a helpfulness vote; re-voting replaces the old vote."""
        if voter_suid == author_suid:
            raise CourseRankError("students cannot vote on their own comments")
        comments = self.database.table("Comments")
        if comments.lookup_pk((author_suid, course_id)) is None:
            raise CourseRankError(
                f"no comment by student {author_suid} on course {course_id}"
            )
        votes = self.database.table("CommentVotes")
        existing = votes.lookup_pk((voter_suid, author_suid, course_id))
        if existing is not None:
            votes.update_where(
                lambda r: r[0] == voter_suid
                and r[1] == author_suid
                and r[2] == course_id,
                lambda r: (voter_suid, author_suid, course_id, helpful),
            )
        else:
            votes.insert([voter_suid, author_suid, course_id, helpful])

    def delete_comment(self, suid: int, course_id: int) -> bool:
        """Remove a comment and its votes; True if one existed."""
        votes = self.database.table("CommentVotes")
        votes.delete_where(lambda r: r[1] == suid and r[2] == course_id)
        removed = self.database.table("Comments").delete_where(
            lambda r: r[0] == suid and r[1] == course_id
        )
        return removed > 0

    # -- reads --------------------------------------------------------------

    def comments_for_course(
        self, course_id: int, order_by_helpfulness: bool = True
    ) -> List[Comment]:
        """All comments on a course, with vote tallies folded in."""
        result = self.database.query(
            "SELECT SuID, CourseID, Year, Term, Text, Rating, CommentDate "
            f"FROM Comments WHERE CourseID = {course_id}"
        )
        tallies = self._vote_tallies(course_id)
        comments = []
        for suid, cid, year, term, text, rating, day in result.rows:
            helpful, unhelpful = tallies.get(suid, (0, 0))
            comments.append(
                Comment(
                    suid=suid,
                    course_id=cid,
                    year=year,
                    term=term,
                    text=text,
                    rating=rating,
                    comment_date=day,
                    helpful_votes=helpful,
                    unhelpful_votes=unhelpful,
                )
            )
        if order_by_helpfulness:
            comments.sort(key=lambda c: (-c.helpfulness, -(c.rating or 0), c.suid))
        return comments

    def _vote_tallies(self, course_id: int) -> Dict[int, Tuple[int, int]]:
        result = self.database.query(
            "SELECT SuID, "
            "SUM(CASE WHEN Helpful THEN 1 ELSE 0 END) AS up, "
            "SUM(CASE WHEN Helpful THEN 0 ELSE 1 END) AS down "
            f"FROM CommentVotes WHERE CourseID = {course_id} GROUP BY SuID"
        )
        return {row[0]: (int(row[1] or 0), int(row[2] or 0)) for row in result.rows}

    def average_rating(self, course_id: int) -> Optional[float]:
        return self.database.query(
            f"SELECT AVG(Rating) FROM Comments WHERE CourseID = {course_id}"
        ).scalar()

    def rating_count(self, course_id: int) -> int:
        return self.database.query(
            "SELECT COUNT(Rating) FROM Comments "
            f"WHERE CourseID = {course_id}"
        ).scalar()

    def top_rated_courses(
        self, limit: int = 10, min_ratings: int = 3
    ) -> List[Tuple[int, float, int]]:
        """[(course_id, avg_rating, n)], requiring a minimum sample."""
        result = self.database.query(
            "SELECT CourseID, AVG(Rating) AS avg_r, COUNT(Rating) AS n "
            "FROM Comments WHERE Rating IS NOT NULL GROUP BY CourseID "
            f"HAVING COUNT(Rating) >= {min_ratings} "
            f"ORDER BY avg_r DESC, CourseID ASC LIMIT {limit}"
        )
        return [(row[0], row[1], row[2]) for row in result.rows]
