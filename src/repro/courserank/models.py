"""Typed views over CourseRank rows.

The storage layer deals in tuples/dicts; the application facade returns
these lightweight dataclasses so callers get attribute access and doc
comments instead of positional indexing.
"""

from __future__ import annotations

import datetime
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple


@dataclass(frozen=True)
class Department:
    dep_id: int
    name: str
    school: Optional[str] = None
    releases_official_grades: bool = False


@dataclass(frozen=True)
class Course:
    course_id: int
    dep_id: int
    title: str
    description: Optional[str] = None
    units: Optional[int] = None
    url: Optional[str] = None


@dataclass(frozen=True)
class Student:
    suid: int
    name: str
    class_year: Optional[int] = None
    major: Optional[str] = None
    gpa: Optional[float] = None


@dataclass(frozen=True)
class Comment:
    suid: int
    course_id: int
    year: Optional[int]
    term: Optional[str]
    text: Optional[str]
    rating: Optional[float]
    comment_date: Optional[datetime.date] = None
    helpful_votes: int = 0
    unhelpful_votes: int = 0

    @property
    def helpfulness(self) -> float:
        """Fraction of votes marking the comment helpful (0.5 if unvoted)."""
        total = self.helpful_votes + self.unhelpful_votes
        if total == 0:
            return 0.5
        return self.helpful_votes / total


@dataclass(frozen=True)
class Offering:
    course_id: int
    year: int
    term: str
    days: Optional[str] = None  # e.g. "MWF"
    start_minute: Optional[int] = None  # minutes from midnight
    end_minute: Optional[int] = None

    def overlaps(self, other: "Offering") -> bool:
        """True when two offerings meet at an overlapping day/time."""
        if self.year != other.year or self.term != other.term:
            return False
        if not (self.days and other.days):
            return False
        if not (set(self.days) & set(other.days)):
            return False
        if None in (
            self.start_minute,
            self.end_minute,
            other.start_minute,
            other.end_minute,
        ):
            return False
        return (
            self.start_minute < other.end_minute
            and other.start_minute < self.end_minute
        )


@dataclass(frozen=True)
class PlanEntry:
    suid: int
    course_id: int
    year: int
    term: str
    shared: bool = True


@dataclass(frozen=True)
class GradeDistribution:
    """A per-course grade histogram with its provenance."""

    course_id: int
    counts: Dict[str, int]  # bucket -> count
    source: str  # "official" | "self-reported"

    @property
    def total(self) -> int:
        return sum(self.counts.values())

    def fractions(self) -> Dict[str, float]:
        total = self.total
        if total == 0:
            return {bucket: 0.0 for bucket in self.counts}
        return {bucket: count / total for bucket, count in self.counts.items()}

    def mean_points(self) -> Optional[float]:
        from repro.courserank.schema import GRADE_POINTS

        total = self.total
        if total == 0:
            return None
        weighted = sum(
            GRADE_POINTS[bucket] * count
            for bucket, count in self.counts.items()
            if bucket in GRADE_POINTS
        )
        return weighted / total


@dataclass(frozen=True)
class Question:
    question_id: int
    asker_id: Optional[int]
    text: str
    course_id: Optional[int] = None
    dep_id: Optional[int] = None
    ask_date: Optional[datetime.date] = None
    official: bool = False


@dataclass(frozen=True)
class Answer:
    answer_id: int
    question_id: int
    author_id: Optional[int]
    text: str
    answer_date: Optional[datetime.date] = None
    best: bool = False


@dataclass(frozen=True)
class RequirementStatus:
    """Outcome of checking one program requirement for a student."""

    req_id: int
    name: str
    satisfied: bool
    missing: Tuple[str, ...] = ()  # human-readable gaps

    def __bool__(self) -> bool:
        return self.satisfied
