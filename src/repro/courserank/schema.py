"""The CourseRank relational schema.

The core relations follow Section 3.2 of the paper verbatim::

    Courses(CourseID, DepID, Title, Description, Units, Url)
    Students(SuID, Name, Class, GPA)
    Comments(SuID, CourseID, Year, Term, Text, Rating, Date)

extended with the relations the rest of the paper describes: instructors
and teaching assignments, offerings with meeting times (the Planner's
conflict checks), prerequisites, textbooks (volunteer-reported), official
grade distributions (released per-school), enrollments with self-reported
grades, four-year plans with a sharing opt-out, comment helpfulness
votes, the Q&A forum, the incentive-point ledger, and program
requirements.
"""

from __future__ import annotations

from repro.minidb.catalog import Database

#: academic terms in order within a year
TERMS = ("Aut", "Win", "Spr", "Sum")

#: grade buckets used by official and self-reported distributions
GRADE_BUCKETS = ("A", "B", "C", "D", "F")

#: letter grade → grade points (coarse 5-bucket scale)
GRADE_POINTS = {"A": 4.0, "B": 3.0, "C": 2.0, "D": 1.0, "F": 0.0}

_DDL = """
CREATE TABLE Departments (
  DepID INTEGER PRIMARY KEY,
  Name TEXT NOT NULL,
  School TEXT,
  ReleasesOfficialGrades BOOLEAN
);

CREATE TABLE Courses (
  CourseID INTEGER PRIMARY KEY,
  DepID INTEGER NOT NULL,
  Title TEXT NOT NULL,
  Description TEXT,
  Units INTEGER,
  Url TEXT,
  FOREIGN KEY (DepID) REFERENCES Departments (DepID)
);

CREATE TABLE Instructors (
  InstructorID INTEGER PRIMARY KEY,
  Name TEXT NOT NULL,
  DepID INTEGER,
  FOREIGN KEY (DepID) REFERENCES Departments (DepID)
);

CREATE TABLE Teaches (
  InstructorID INTEGER,
  CourseID INTEGER,
  PRIMARY KEY (InstructorID, CourseID),
  FOREIGN KEY (InstructorID) REFERENCES Instructors (InstructorID),
  FOREIGN KEY (CourseID) REFERENCES Courses (CourseID)
);

CREATE TABLE Offerings (
  CourseID INTEGER,
  Year INTEGER,
  Term TEXT,
  Days TEXT,
  StartMinute INTEGER,
  EndMinute INTEGER,
  PRIMARY KEY (CourseID, Year, Term),
  FOREIGN KEY (CourseID) REFERENCES Courses (CourseID)
);

CREATE TABLE Prerequisites (
  CourseID INTEGER,
  PrereqID INTEGER,
  PRIMARY KEY (CourseID, PrereqID),
  FOREIGN KEY (CourseID) REFERENCES Courses (CourseID),
  FOREIGN KEY (PrereqID) REFERENCES Courses (CourseID)
);

CREATE TABLE Textbooks (
  TextbookID INTEGER PRIMARY KEY,
  Title TEXT NOT NULL,
  Author TEXT
);

CREATE TABLE CourseTextbooks (
  CourseID INTEGER,
  TextbookID INTEGER,
  ReportedBy INTEGER,
  PRIMARY KEY (CourseID, TextbookID),
  FOREIGN KEY (CourseID) REFERENCES Courses (CourseID),
  FOREIGN KEY (TextbookID) REFERENCES Textbooks (TextbookID)
);

CREATE TABLE Students (
  SuID INTEGER PRIMARY KEY,
  Name TEXT NOT NULL,
  Class INTEGER,
  Major TEXT,
  GPA FLOAT
);

CREATE TABLE Users (
  UserID INTEGER PRIMARY KEY,
  Username TEXT NOT NULL,
  Role TEXT NOT NULL,
  PersonID INTEGER,
  UNIQUE (Username)
);

CREATE TABLE Enrollments (
  SuID INTEGER,
  CourseID INTEGER,
  Year INTEGER,
  Term TEXT,
  Grade TEXT,
  PRIMARY KEY (SuID, CourseID),
  FOREIGN KEY (SuID) REFERENCES Students (SuID),
  FOREIGN KEY (CourseID) REFERENCES Courses (CourseID)
);

CREATE TABLE Plans (
  SuID INTEGER,
  CourseID INTEGER,
  Year INTEGER,
  Term TEXT,
  Shared BOOLEAN,
  PRIMARY KEY (SuID, CourseID),
  FOREIGN KEY (SuID) REFERENCES Students (SuID),
  FOREIGN KEY (CourseID) REFERENCES Courses (CourseID)
);

CREATE TABLE Comments (
  SuID INTEGER,
  CourseID INTEGER,
  Year INTEGER,
  Term TEXT,
  Text TEXT,
  Rating FLOAT,
  CommentDate DATE,
  PRIMARY KEY (SuID, CourseID),
  FOREIGN KEY (SuID) REFERENCES Students (SuID),
  FOREIGN KEY (CourseID) REFERENCES Courses (CourseID)
);

CREATE TABLE CommentVotes (
  VoterID INTEGER,
  SuID INTEGER,
  CourseID INTEGER,
  Helpful BOOLEAN,
  PRIMARY KEY (VoterID, SuID, CourseID),
  FOREIGN KEY (VoterID) REFERENCES Students (SuID)
);

CREATE TABLE FacultyNotes (
  NoteID INTEGER PRIMARY KEY,
  CourseID INTEGER,
  InstructorID INTEGER,
  Text TEXT,
  NoteDate DATE,
  FOREIGN KEY (CourseID) REFERENCES Courses (CourseID),
  FOREIGN KEY (InstructorID) REFERENCES Instructors (InstructorID)
);

CREATE TABLE OfficialGrades (
  CourseID INTEGER,
  Year INTEGER,
  Bucket TEXT,
  GradeCount INTEGER,
  PRIMARY KEY (CourseID, Year, Bucket),
  FOREIGN KEY (CourseID) REFERENCES Courses (CourseID)
);

CREATE TABLE Requirements (
  ReqID INTEGER PRIMARY KEY,
  DepID INTEGER,
  Name TEXT NOT NULL,
  Rule TEXT NOT NULL,
  FOREIGN KEY (DepID) REFERENCES Departments (DepID)
);

CREATE TABLE Questions (
  QuestionID INTEGER PRIMARY KEY,
  AskerID INTEGER,
  CourseID INTEGER,
  DepID INTEGER,
  Text TEXT NOT NULL,
  AskDate DATE,
  Official BOOLEAN
);

CREATE TABLE Answers (
  AnswerID INTEGER PRIMARY KEY,
  QuestionID INTEGER,
  AuthorID INTEGER,
  Text TEXT NOT NULL,
  AnswerDate DATE,
  Best BOOLEAN,
  FOREIGN KEY (QuestionID) REFERENCES Questions (QuestionID)
);

CREATE TABLE QuestionRoutes (
  QuestionID INTEGER,
  SuID INTEGER,
  PRIMARY KEY (QuestionID, SuID),
  FOREIGN KEY (QuestionID) REFERENCES Questions (QuestionID),
  FOREIGN KEY (SuID) REFERENCES Students (SuID)
);

CREATE TABLE PointsLedger (
  EntryID INTEGER PRIMARY KEY,
  UserID INTEGER,
  Action TEXT NOT NULL,
  Points INTEGER NOT NULL,
  AwardDate DATE,
  FOREIGN KEY (UserID) REFERENCES Users (UserID)
);
"""

_INDEXES = """
CREATE INDEX idx_courses_dep ON Courses (DepID);
CREATE INDEX idx_enroll_course ON Enrollments (CourseID);
CREATE INDEX idx_enroll_student ON Enrollments (SuID);
CREATE INDEX idx_comments_course ON Comments (CourseID);
CREATE INDEX idx_comments_student ON Comments (SuID);
CREATE INDEX idx_plans_course ON Plans (CourseID);
CREATE INDEX idx_plans_student ON Plans (SuID);
CREATE INDEX idx_offerings_course ON Offerings (CourseID);
CREATE INDEX idx_teaches_course ON Teaches (CourseID);
CREATE INDEX idx_prereq_course ON Prerequisites (CourseID);
CREATE INDEX idx_official_course ON OfficialGrades (CourseID);
CREATE INDEX idx_answers_question ON Answers (QuestionID);
CREATE INDEX idx_points_user ON PointsLedger (UserID);
"""


def create_schema(database: Database, with_indexes: bool = True) -> None:
    """Create all CourseRank tables (and, by default, their indexes)."""
    database.execute_script(_DDL)
    if with_indexes:
        database.execute_script(_INDEXES)


def new_database(with_indexes: bool = True) -> Database:
    """A fresh Database with the CourseRank schema installed."""
    database = Database()
    create_schema(database, with_indexes=with_indexes)
    return database
