"""Faculty and administrator analytics.

"CourseRank also functions as a feedback tool for faculty and
administrators" (Section 2): faculty compare their classes against
others; administrators watch participation and catalog health.  This
module provides those read-only dashboard queries.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.minidb.catalog import Database


@dataclass
class DepartmentReport:
    """One department's dashboard row."""

    dep_id: int
    name: str
    courses: int
    rated_courses: int
    average_rating: Optional[float]
    comments: int
    enrollments: int

    @property
    def rating_coverage(self) -> float:
        """Fraction of the department's courses with at least one rating."""
        if not self.courses:
            return 0.0
        return self.rated_courses / self.courses


class Analytics:
    """Read-only dashboards over the CourseRank relations."""

    def __init__(self, database: Database) -> None:
        self.database = database

    def department_report(self, dep_id: int) -> DepartmentReport:
        name = self.database.query(
            f"SELECT Name FROM Departments WHERE DepID = {dep_id}"
        ).scalar()
        courses = self.database.query(
            f"SELECT COUNT(*) FROM Courses WHERE DepID = {dep_id}"
        ).scalar()
        rated = self.database.query(
            "SELECT COUNT(DISTINCT cm.CourseID) FROM Comments cm "
            "JOIN Courses c ON cm.CourseID = c.CourseID "
            f"WHERE c.DepID = {dep_id} AND cm.Rating IS NOT NULL"
        ).scalar()
        average = self.database.query(
            "SELECT AVG(cm.Rating) FROM Comments cm "
            "JOIN Courses c ON cm.CourseID = c.CourseID "
            f"WHERE c.DepID = {dep_id}"
        ).scalar()
        comments = self.database.query(
            "SELECT COUNT(*) FROM Comments cm "
            "JOIN Courses c ON cm.CourseID = c.CourseID "
            f"WHERE c.DepID = {dep_id}"
        ).scalar()
        enrollments = self.database.query(
            "SELECT COUNT(*) FROM Enrollments e "
            "JOIN Courses c ON e.CourseID = c.CourseID "
            f"WHERE c.DepID = {dep_id}"
        ).scalar()
        return DepartmentReport(
            dep_id=dep_id,
            name=name,
            courses=courses,
            rated_courses=rated,
            average_rating=average,
            comments=comments,
            enrollments=enrollments,
        )

    def all_departments(self) -> List[DepartmentReport]:
        dep_ids = self.database.query(
            "SELECT DepID FROM Departments ORDER BY DepID"
        ).column("DepID")
        return [self.department_report(dep_id) for dep_id in dep_ids]

    def instructor_ratings(
        self, dep_id: Optional[int] = None, min_ratings: int = 3
    ) -> List[Tuple[int, str, float, int]]:
        """Instructors ranked by the average rating of their courses.

        Returns ``[(instructor_id, name, avg_rating, n_ratings)]``; an
        instructor needs ``min_ratings`` ratings across their courses to
        appear (small-sample suppression, consistent with the privacy
        posture elsewhere).
        """
        where = f"WHERE i.DepID = {dep_id}" if dep_id is not None else ""
        result = self.database.query(
            "SELECT i.InstructorID, i.Name, AVG(cm.Rating) AS avg_r, "
            "COUNT(cm.Rating) AS n "
            "FROM Instructors i "
            "JOIN Teaches t ON t.InstructorID = i.InstructorID "
            "JOIN Comments cm ON cm.CourseID = t.CourseID "
            f"{where} "
            "GROUP BY i.InstructorID "
            f"HAVING COUNT(cm.Rating) >= {min_ratings} "
            "ORDER BY avg_r DESC, i.InstructorID ASC"
        )
        return [tuple(row) for row in result.rows]

    def participation_by_class_year(self) -> Dict[int, Dict[str, int]]:
        """Per class year: students, commenters, comments.

        The paper: "The vast majority of CourseRank users are
        undergraduates" — this is the view that shows which cohorts
        actually contribute.
        """
        totals = dict(
            self.database.query(
                "SELECT Class, COUNT(*) FROM Students "
                "WHERE Class IS NOT NULL GROUP BY Class"
            ).rows
        )
        commenters = dict(
            self.database.query(
                "SELECT s.Class, COUNT(DISTINCT cm.SuID) FROM Comments cm "
                "JOIN Students s ON cm.SuID = s.SuID "
                "WHERE s.Class IS NOT NULL GROUP BY s.Class"
            ).rows
        )
        comment_counts = dict(
            self.database.query(
                "SELECT s.Class, COUNT(*) FROM Comments cm "
                "JOIN Students s ON cm.SuID = s.SuID "
                "WHERE s.Class IS NOT NULL GROUP BY s.Class"
            ).rows
        )
        return {
            year: {
                "students": totals.get(year, 0),
                "commenters": commenters.get(year, 0),
                "comments": comment_counts.get(year, 0),
            }
            for year in sorted(totals)
        }

    def unrated_courses(self, dep_id: int, limit: int = 20) -> List[int]:
        """Courses in a department with no ratings at all (catalog gaps)."""
        return self.database.query(
            "SELECT c.CourseID FROM Courses c "
            "LEFT JOIN Comments cm "
            "ON cm.CourseID = c.CourseID AND cm.Rating IS NOT NULL "
            f"WHERE c.DepID = {dep_id} AND cm.SuID IS NULL "
            f"ORDER BY c.CourseID LIMIT {limit}"
        ).column("CourseID")

    def course_rating_percentile(self, course_id: int) -> Optional[float]:
        """Where this course's average rating sits among all rated courses.

        The faculty view behind "see how their class compares to other
        classes": 0.9 means better-rated than 90% of rated courses.
        """
        averages = self.database.query(
            "SELECT CourseID, AVG(Rating) AS r FROM Comments "
            "WHERE Rating IS NOT NULL GROUP BY CourseID"
        ).rows
        own = next((r for cid, r in averages if cid == course_id), None)
        if own is None or len(averages) < 2:
            return None
        below = sum(1 for _cid, r in averages if r < own)
        return below / (len(averages) - 1)
