"""The Requirement Tracker.

Staff "can enter requirements for academic programs", and students "can
check if the courses they have taken (or are planning to take) satisfy
the requirements for their major" (Sections 2, 2.1).

Requirements are stored as rule strings in a small boolean DSL::

    rule    := clause (OR clause)*
    clause  := factor (AND factor)*
    factor  := ALL(c, ...)        every listed course
             | ANY(c, ...)        at least one listed course
             | ATLEAST(n, c, ...) at least n of the listed courses
             | UNITS(n, c, ...)   at least n units among the listed courses
             | DEPUNITS(n, d)     at least n units in department d
             | COURSE(c)          exactly one course
             | ( rule )

All primitives are monotone in the set of completed courses, so adding a
course can never un-satisfy a requirement — a property the test suite
checks with hypothesis.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.errors import RequirementError
from repro.courserank.models import RequirementStatus
from repro.minidb.catalog import Database

_TOKEN = re.compile(r"\s*([A-Z]+|\(|\)|,|\d+)")


# ---------------------------------------------------------------------------
# rule AST
# ---------------------------------------------------------------------------


class Rule:
    def satisfied(self, ctx: "StudentContext") -> bool:
        raise NotImplementedError

    def gaps(self, ctx: "StudentContext") -> List[str]:
        """Human-readable reasons the rule is unsatisfied (empty if met)."""
        raise NotImplementedError

    def helpful_courses(self, ctx: "StudentContext") -> Set[int]:
        """Courses that would advance this rule if the student took them.

        Empty when the rule is already satisfied.  Department-unit rules
        return no explicit list (the tracker expands them from the
        catalog) — see :meth:`helpful_departments`.
        """
        return set()

    def helpful_departments(self, ctx: "StudentContext") -> Set[int]:
        """Departments whose courses would advance this rule."""
        return set()


@dataclass(frozen=True)
class AllOf(Rule):
    courses: Tuple[int, ...]

    def satisfied(self, ctx):
        return all(course in ctx.courses for course in self.courses)

    def gaps(self, ctx):
        missing = [c for c in self.courses if c not in ctx.courses]
        return [f"missing required course {c}" for c in missing]

    def helpful_courses(self, ctx):
        return {c for c in self.courses if c not in ctx.courses}

@dataclass(frozen=True)
class AnyOf(Rule):
    courses: Tuple[int, ...]

    def satisfied(self, ctx):
        return any(course in ctx.courses for course in self.courses)

    def gaps(self, ctx):
        if self.satisfied(ctx):
            return []
        listed = ", ".join(str(c) for c in self.courses)
        return [f"need one of courses {listed}"]

    def helpful_courses(self, ctx):
        if self.satisfied(ctx):
            return set()
        return set(self.courses)

@dataclass(frozen=True)
class AtLeast(Rule):
    count: int
    courses: Tuple[int, ...]

    def satisfied(self, ctx):
        have = sum(1 for course in self.courses if course in ctx.courses)
        return have >= self.count

    def gaps(self, ctx):
        have = sum(1 for course in self.courses if course in ctx.courses)
        if have >= self.count:
            return []
        listed = ", ".join(str(c) for c in self.courses)
        return [f"need {self.count - have} more of courses {listed}"]

    def helpful_courses(self, ctx):
        if self.satisfied(ctx):
            return set()
        return {c for c in self.courses if c not in ctx.courses}

@dataclass(frozen=True)
class UnitsAmong(Rule):
    units: int
    courses: Tuple[int, ...]

    def _have(self, ctx):
        return sum(
            ctx.units_of(course)
            for course in self.courses
            if course in ctx.courses
        )

    def satisfied(self, ctx):
        return self._have(ctx) >= self.units

    def gaps(self, ctx):
        have = self._have(ctx)
        if have >= self.units:
            return []
        return [f"need {self.units - have} more units among listed courses"]

    def helpful_courses(self, ctx):
        if self.satisfied(ctx):
            return set()
        return {c for c in self.courses if c not in ctx.courses}

@dataclass(frozen=True)
class DepartmentUnits(Rule):
    units: int
    dep_id: int

    def _have(self, ctx):
        return sum(
            ctx.units_of(course)
            for course in ctx.courses
            if ctx.department_of(course) == self.dep_id
        )

    def satisfied(self, ctx):
        return self._have(ctx) >= self.units

    def gaps(self, ctx):
        have = self._have(ctx)
        if have >= self.units:
            return []
        return [
            f"need {self.units - have} more units in department {self.dep_id}"
        ]

    def helpful_departments(self, ctx):
        if self.satisfied(ctx):
            return set()
        return {self.dep_id}

@dataclass(frozen=True)
class And(Rule):
    parts: Tuple[Rule, ...]

    def satisfied(self, ctx):
        return all(part.satisfied(ctx) for part in self.parts)

    def gaps(self, ctx):
        found: List[str] = []
        for part in self.parts:
            found.extend(part.gaps(ctx))
        return found

    def helpful_courses(self, ctx):
        found = set()
        for part in self.parts:
            found |= part.helpful_courses(ctx)
        return found

    def helpful_departments(self, ctx):
        found = set()
        for part in self.parts:
            found |= part.helpful_departments(ctx)
        return found

@dataclass(frozen=True)
class Or(Rule):
    parts: Tuple[Rule, ...]

    def satisfied(self, ctx):
        return any(part.satisfied(ctx) for part in self.parts)

    def gaps(self, ctx):
        if self.satisfied(ctx):
            return []
        # Report the branch closest to completion (fewest gaps).
        best = min((part.gaps(ctx) for part in self.parts), key=len)
        return best

    def helpful_courses(self, ctx):
        if self.satisfied(ctx):
            return set()
        found = set()
        for part in self.parts:
            found |= part.helpful_courses(ctx)
        return found

    def helpful_departments(self, ctx):
        if self.satisfied(ctx):
            return set()
        found = set()
        for part in self.parts:
            found |= part.helpful_departments(ctx)
        return found


# ---------------------------------------------------------------------------
# parser
# ---------------------------------------------------------------------------


class _RuleParser:
    def __init__(self, text: str) -> None:
        self.tokens = self._tokenize(text)
        self.position = 0

    @staticmethod
    def _tokenize(text: str) -> List[str]:
        tokens = []
        position = 0
        while position < len(text):
            match = _TOKEN.match(text, position)
            if match is None:
                remainder = text[position:].strip()
                if not remainder:
                    break
                raise RequirementError(
                    f"bad requirement rule near {remainder[:20]!r}"
                )
            tokens.append(match.group(1))
            position = match.end()
        return tokens

    def peek(self) -> Optional[str]:
        if self.position < len(self.tokens):
            return self.tokens[self.position]
        return None

    def advance(self) -> str:
        token = self.peek()
        if token is None:
            raise RequirementError("unexpected end of requirement rule")
        self.position += 1
        return token

    def expect(self, token: str) -> None:
        found = self.advance()
        if found != token:
            raise RequirementError(f"expected {token!r}, found {found!r}")

    def parse(self) -> Rule:
        rule = self.parse_or()
        if self.peek() is not None:
            raise RequirementError(
                f"trailing input in requirement rule: {self.peek()!r}"
            )
        return rule

    def parse_or(self) -> Rule:
        parts = [self.parse_and()]
        while self.peek() == "OR":
            self.advance()
            parts.append(self.parse_and())
        return parts[0] if len(parts) == 1 else Or(tuple(parts))

    def parse_and(self) -> Rule:
        parts = [self.parse_factor()]
        while self.peek() == "AND":
            self.advance()
            parts.append(self.parse_factor())
        return parts[0] if len(parts) == 1 else And(tuple(parts))

    def parse_factor(self) -> Rule:
        token = self.advance()
        if token == "(":
            inner = self.parse_or()
            self.expect(")")
            return inner
        if token == "ALL":
            return AllOf(tuple(self._int_list(minimum=1)))
        if token == "ANY":
            return AnyOf(tuple(self._int_list(minimum=1)))
        if token == "COURSE":
            values = self._int_list(minimum=1, maximum=1)
            return AllOf((values[0],))
        if token == "ATLEAST":
            values = self._int_list(minimum=2)
            return AtLeast(values[0], tuple(values[1:]))
        if token == "UNITS":
            values = self._int_list(minimum=2)
            return UnitsAmong(values[0], tuple(values[1:]))
        if token == "DEPUNITS":
            values = self._int_list(minimum=2, maximum=2)
            return DepartmentUnits(values[0], values[1])
        raise RequirementError(f"unknown rule construct {token!r}")

    def _int_list(
        self, minimum: int, maximum: Optional[int] = None
    ) -> List[int]:
        self.expect("(")
        values: List[int] = []
        while True:
            token = self.advance()
            if not token.isdigit():
                raise RequirementError(
                    f"expected a number in rule list, found {token!r}"
                )
            values.append(int(token))
            token = self.advance()
            if token == ")":
                break
            if token != ",":
                raise RequirementError(f"expected ',' or ')', found {token!r}")
        if len(values) < minimum:
            raise RequirementError(
                f"rule list needs at least {minimum} values"
            )
        if maximum is not None and len(values) > maximum:
            raise RequirementError(f"rule list takes at most {maximum} values")
        return values


def parse_rule(text: str) -> Rule:
    """Parse a requirement rule string into its AST."""
    if not text or not text.strip():
        raise RequirementError("requirement rule must be non-empty")
    return _RuleParser(text).parse()


# ---------------------------------------------------------------------------
# evaluation context + tracker
# ---------------------------------------------------------------------------


class StudentContext:
    """The course set a rule evaluates against, with unit/dept lookups."""

    def __init__(
        self,
        courses: Set[int],
        units: Dict[int, int],
        departments: Dict[int, int],
    ) -> None:
        self.courses = courses
        self._units = units
        self._departments = departments

    def units_of(self, course_id: int) -> int:
        return self._units.get(course_id, 0)

    def department_of(self, course_id: int) -> Optional[int]:
        return self._departments.get(course_id)


class RequirementTracker:
    """Defines and checks program requirements against student records."""

    def __init__(self, database: Database) -> None:
        self.database = database

    # -- staff side -----------------------------------------------------------

    def define(
        self, dep_id: Optional[int], name: str, rule_text: str
    ) -> int:
        """Store a requirement after validating its rule; returns ReqID."""
        parse_rule(rule_text)  # raises on bad syntax
        current = self.database.query(
            "SELECT MAX(ReqID) FROM Requirements"
        ).scalar()
        req_id = (current or 0) + 1
        self.database.table("Requirements").insert(
            [req_id, dep_id, name, rule_text]
        )
        return req_id

    def requirements_for(self, dep_id: int) -> List[Tuple[int, str, str]]:
        result = self.database.query(
            "SELECT ReqID, Name, Rule FROM Requirements "
            f"WHERE DepID = {dep_id} ORDER BY ReqID"
        )
        return [(row[0], row[1], row[2]) for row in result.rows]

    # -- student side -------------------------------------------------------

    def student_context(
        self, suid: int, include_planned: bool = True
    ) -> StudentContext:
        course_ids = set(
            self.database.query(
                f"SELECT CourseID FROM Enrollments WHERE SuID = {suid}"
            ).column("CourseID")
        )
        if include_planned:
            course_ids |= set(
                self.database.query(
                    f"SELECT CourseID FROM Plans WHERE SuID = {suid}"
                ).column("CourseID")
            )
        units: Dict[int, int] = {}
        departments: Dict[int, int] = {}
        if course_ids:
            listed = ", ".join(str(course) for course in sorted(course_ids))
            rows = self.database.query(
                "SELECT CourseID, Units, DepID FROM Courses "
                f"WHERE CourseID IN ({listed})"
            ).rows
            for course_id, course_units, dep_id in rows:
                units[course_id] = course_units or 0
                departments[course_id] = dep_id
        return StudentContext(course_ids, units, departments)

    def check(
        self, suid: int, dep_id: int, include_planned: bool = True
    ) -> List[RequirementStatus]:
        """Evaluate every requirement of a program for one student."""
        ctx = self.student_context(suid, include_planned=include_planned)
        statuses = []
        for req_id, name, rule_text in self.requirements_for(dep_id):
            rule = parse_rule(rule_text)
            ok = rule.satisfied(ctx)
            statuses.append(
                RequirementStatus(
                    req_id=req_id,
                    name=name,
                    satisfied=ok,
                    missing=() if ok else tuple(rule.gaps(ctx)),
                )
            )
        return statuses

    def unmet(self, suid: int, dep_id: int, include_planned: bool = True):
        """Only the unmet requirements (what the tracker shows first)."""
        return [
            status
            for status in self.check(suid, dep_id, include_planned)
            if not status.satisfied
        ]

    def suggest_courses(
        self,
        suid: int,
        dep_id: int,
        limit: int = 10,
        include_planned: bool = True,
    ) -> List[Tuple[int, int]]:
        """Courses that would advance unmet requirements.

        Returns ``[(course_id, requirements_helped), ...]`` ordered by how
        many unmet requirements each course advances — the tracker's
        "what should I take next" view.  Department-unit rules expand to
        the department's not-yet-taken courses.
        """
        ctx = self.student_context(suid, include_planned=include_planned)
        helped: Dict[int, int] = {}
        for _req_id, _name, rule_text in self.requirements_for(dep_id):
            rule = parse_rule(rule_text)
            if rule.satisfied(ctx):
                continue
            candidates = set(rule.helpful_courses(ctx))
            for helpful_dep in rule.helpful_departments(ctx):
                dep_courses = self.database.query(
                    "SELECT CourseID FROM Courses "
                    f"WHERE DepID = {int(helpful_dep)}"
                ).column("CourseID")
                candidates |= {
                    course for course in dep_courses
                    if course not in ctx.courses
                }
            for course in candidates:
                if course in ctx.courses:
                    continue
                helped[course] = helped.get(course, 0) + 1
        ordered = sorted(helped.items(), key=lambda kv: (-kv[1], kv[0]))
        return ordered[:limit]
