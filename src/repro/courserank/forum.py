"""The Q&A forum, with question routing and FAQ seeding.

Section 2.2 reports the forum initially had little traffic and describes
the planned fixes, both implemented here:

* **FAQ seeding** — staff seed the forum with "frequently asked
  questions" developed with department managers (``seed_faq``);
* **question routing** — "questions will be automatically routed to
  people who are likely to be able to answer them": a question about a
  course routes to students who took it (preferring those who commented);
  a question about a department routes to its most active students.
"""

from __future__ import annotations

import datetime
from typing import List, Optional, Sequence, Tuple

from repro.errors import CourseRankError
from repro.courserank.models import Answer, Question
from repro.minidb.catalog import Database


class Forum:
    """Questions, answers, best-answer selection, and routing."""

    def __init__(self, database: Database, max_routes: int = 5) -> None:
        self.database = database
        self.max_routes = max_routes

    # -- asking -----------------------------------------------------------

    def _next_id(self, table: str, column: str) -> int:
        current = self.database.query(
            f"SELECT MAX({column}) FROM {table}"
        ).scalar()
        return (current or 0) + 1

    def ask(
        self,
        asker_id: Optional[int],
        text: str,
        course_id: Optional[int] = None,
        dep_id: Optional[int] = None,
        day: Optional[datetime.date] = None,
        official: bool = False,
    ) -> Question:
        """Post a question and route it to likely answerers."""
        if not text or not text.strip():
            raise CourseRankError("question text must be non-empty")
        question_id = self._next_id("Questions", "QuestionID")
        day = day or datetime.date.today()
        self.database.table("Questions").insert(
            [question_id, asker_id, course_id, dep_id, text, day, official]
        )
        for suid in self.route_targets(course_id, dep_id, exclude=asker_id):
            self.database.table("QuestionRoutes").insert([question_id, suid])
        return Question(
            question_id=question_id,
            asker_id=asker_id,
            text=text,
            course_id=course_id,
            dep_id=dep_id,
            ask_date=day,
            official=official,
        )

    def route_targets(
        self,
        course_id: Optional[int],
        dep_id: Optional[int],
        exclude: Optional[int] = None,
    ) -> List[int]:
        """Students likely able to answer, best candidates first.

        Course questions go to students who took the course, preferring
        those who also commented on it (they demonstrably engage).
        Department questions go to the students with the most enrollments
        in that department.
        """
        candidates: List[int] = []
        if course_id is not None:
            rows = self.database.query(
                "SELECT e.SuID, COUNT(c.CourseID) AS engagement "
                "FROM Enrollments e "
                "LEFT JOIN Comments c "
                "ON c.SuID = e.SuID AND c.CourseID = e.CourseID "
                f"WHERE e.CourseID = {course_id} "
                "GROUP BY e.SuID "
                "ORDER BY engagement DESC, e.SuID ASC"
            ).rows
            candidates = [row[0] for row in rows]
        elif dep_id is not None:
            rows = self.database.query(
                "SELECT e.SuID, COUNT(*) AS n FROM Enrollments e "
                "JOIN Courses c ON e.CourseID = c.CourseID "
                f"WHERE c.DepID = {dep_id} "
                "GROUP BY e.SuID ORDER BY n DESC, e.SuID ASC"
            ).rows
            candidates = [row[0] for row in rows]
        if exclude is not None:
            candidates = [suid for suid in candidates if suid != exclude]
        return candidates[: self.max_routes]

    # -- answering ----------------------------------------------------------

    def answer(
        self,
        question_id: int,
        author_id: Optional[int],
        text: str,
        day: Optional[datetime.date] = None,
    ) -> Answer:
        if not text or not text.strip():
            raise CourseRankError("answer text must be non-empty")
        if self.database.table("Questions").lookup_pk((question_id,)) is None:
            raise CourseRankError(f"unknown question {question_id}")
        answer_id = self._next_id("Answers", "AnswerID")
        day = day or datetime.date.today()
        self.database.table("Answers").insert(
            [answer_id, question_id, author_id, text, day, False]
        )
        return Answer(
            answer_id=answer_id,
            question_id=question_id,
            author_id=author_id,
            text=text,
            answer_date=day,
        )

    def mark_best(self, question_id: int, answer_id: int, by_suid: int) -> None:
        """The asker selects the best answer (one per question)."""
        question = self.database.table("Questions").lookup_pk((question_id,))
        if question is None:
            raise CourseRankError(f"unknown question {question_id}")
        if question[1] != by_suid:
            raise CourseRankError("only the asker may select the best answer")
        answers = self.database.table("Answers")
        target = answers.lookup_pk((answer_id,))
        if target is None or target[1] != question_id:
            raise CourseRankError(
                f"answer {answer_id} does not belong to question {question_id}"
            )
        answers.update_where(
            lambda row: row[1] == question_id,
            lambda row: (
                row[0],
                row[1],
                row[2],
                row[3],
                row[4],
                row[0] == answer_id,
            ),
        )

    # -- seeding -----------------------------------------------------------

    def seed_faq(
        self,
        entries: Sequence[Tuple[str, str]],
        dep_id: Optional[int] = None,
        day: Optional[datetime.date] = None,
    ) -> List[int]:
        """Seed official Q&A pairs ("who do I see to have my program
        approved?") so the forum has a useful body of content."""
        question_ids = []
        for question_text, answer_text in entries:
            question = self.ask(
                asker_id=None,
                text=question_text,
                dep_id=dep_id,
                day=day,
                official=True,
            )
            posted = self.answer(
                question.question_id, author_id=None, text=answer_text, day=day
            )
            # Official answers are pre-marked best.
            self.database.table("Answers").update_where(
                lambda row: row[0] == posted.answer_id,
                lambda row: (row[0], row[1], row[2], row[3], row[4], True),
            )
            question_ids.append(question.question_id)
        return question_ids

    # -- reading ----------------------------------------------------------------

    def answers_for(self, question_id: int) -> List[Answer]:
        rows = self.database.query(
            "SELECT AnswerID, QuestionID, AuthorID, Text, AnswerDate, Best "
            f"FROM Answers WHERE QuestionID = {question_id} "
            "ORDER BY Best DESC, AnswerID ASC"
        ).rows
        return [
            Answer(
                answer_id=row[0],
                question_id=row[1],
                author_id=row[2],
                text=row[3],
                answer_date=row[4],
                best=row[5],
            )
            for row in rows
        ]

    def routed_to(self, suid: int) -> List[int]:
        """Question ids routed to a student (their inbox)."""
        return self.database.query(
            f"SELECT QuestionID FROM QuestionRoutes WHERE SuID = {suid} "
            "ORDER BY QuestionID"
        ).column("QuestionID")

    def unanswered(self) -> List[int]:
        """Questions with no answers yet (the cold-start problem)."""
        return self.database.query(
            "SELECT q.QuestionID FROM Questions q "
            "LEFT JOIN Answers a ON a.QuestionID = q.QuestionID "
            "WHERE a.AnswerID IS NULL ORDER BY q.QuestionID"
        ).column("QuestionID")

    def stats(self) -> dict:
        questions = self.database.query(
            "SELECT COUNT(*) FROM Questions"
        ).scalar()
        answers = self.database.query("SELECT COUNT(*) FROM Answers").scalar()
        official = self.database.query(
            "SELECT COUNT(*) FROM Questions WHERE Official"
        ).scalar()
        return {
            "questions": questions,
            "answers": answers,
            "official_seeded": official,
            "unanswered": len(self.unanswered()),
        }
