"""CourseRank — the social system of the paper, assembled.

The facade is :class:`CourseRank`; subsystems are importable directly for
finer-grained use (each maps to a component of the paper's Figure 2):

* :mod:`schema` / :mod:`models` — relations and typed row views;
* :mod:`accounts` — the three constituencies and authorization;
* :mod:`ratings` — comments, ratings, helpfulness votes;
* :mod:`planner` — quarterly schedules, conflicts, GPAs, 4-year plans;
* :mod:`requirements` — the Requirement Tracker and its rule DSL;
* :mod:`forum` — Q&A with routing and FAQ seeding;
* :mod:`incentives` — the point ledger;
* :mod:`privacy` — grade-distribution k-anonymity and plan sharing;
* :mod:`gradebook` — official vs self-reported distributions;
* :mod:`cloudsearch` — course search + course clouds;
* :mod:`recommendations` — FlexRecs strategies wired to the site.
"""

from repro.courserank.accounts import AccountManager, Role, User
from repro.courserank.analytics import Analytics, DepartmentReport
from repro.courserank.app import CourseRank
from repro.courserank.cloudsearch import CourseCloudSearch
from repro.courserank.forum import Forum
from repro.courserank.gradebook import GradeBook
from repro.courserank.incentives import IncentiveLedger, POINT_SCHEDULE
from repro.courserank.models import (
    Answer,
    Comment,
    Course,
    Department,
    GradeDistribution,
    Offering,
    PlanEntry,
    Question,
    RequirementStatus,
    Student,
)
from repro.courserank.planner import Planner
from repro.courserank.privacy import PrivacyGuard, PrivacyPolicy
from repro.courserank.ratings import RatingsService
from repro.courserank.recommendations import RecommendationService
from repro.courserank.requirements import RequirementTracker, parse_rule
from repro.courserank.schema import (
    GRADE_BUCKETS,
    GRADE_POINTS,
    TERMS,
    create_schema,
    new_database,
)

__all__ = [
    "AccountManager",
    "Analytics",
    "DepartmentReport",
    "Role",
    "User",
    "CourseRank",
    "CourseCloudSearch",
    "Forum",
    "GradeBook",
    "IncentiveLedger",
    "POINT_SCHEDULE",
    "Answer",
    "Comment",
    "Course",
    "Department",
    "GradeDistribution",
    "Offering",
    "PlanEntry",
    "Question",
    "RequirementStatus",
    "Student",
    "Planner",
    "PrivacyGuard",
    "PrivacyPolicy",
    "RatingsService",
    "RecommendationService",
    "RequirementTracker",
    "parse_rule",
    "GRADE_BUCKETS",
    "GRADE_POINTS",
    "TERMS",
    "create_schema",
    "new_database",
]
