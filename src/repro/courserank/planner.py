"""The Planner: quarterly schedules, four-year plans, conflicts, GPAs.

The paper calls the Planner "an extremely useful feature ... also a
sticky feature": students enter courses taken (with grades) and courses
planned, organize them into quarters, and the tool "checks for schedule
conflicts and computes grade point averages".

This module implements:

* recording taken courses with self-reported grades (Enrollments);
* planning future courses into (year, term) slots (Plans), with the
  sharing flag the privacy layer consumes;
* schedule-conflict detection against offering meeting times;
* prerequisite warnings (a planned course whose prerequisite is neither
  taken nor planned earlier);
* per-quarter and cumulative GPA;
* the four-year plan view (quarter → courses).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import CourseRankError, PlannerConflictError
from repro.courserank.models import Offering, PlanEntry
from repro.courserank.schema import GRADE_POINTS, TERMS
from repro.minidb.catalog import Database


def term_order(year: int, term: str) -> Tuple[int, int]:
    """Sortable key for academic quarters (Aut < Win < Spr < Sum in-year).

    The academic year starts in Autumn; we order by calendar (year, term
    position) which is sufficient for before/after checks.
    """
    if term not in TERMS:
        raise CourseRankError(f"unknown term {term!r}; expected one of {TERMS}")
    return (year, TERMS.index(term))


@dataclass
class ConflictReport:
    """A schedule conflict between two planned/taken offerings."""

    course_a: int
    course_b: int
    year: int
    term: str

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"courses {self.course_a} and {self.course_b} overlap in "
            f"{self.term} {self.year}"
        )


@dataclass
class PrerequisiteWarning:
    course_id: int
    missing_prereq: int

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"course {self.course_id} requires course {self.missing_prereq} "
            "earlier in the plan"
        )


class Planner:
    """Per-student planning operations."""

    def __init__(self, database: Database) -> None:
        self.database = database

    # -- recording taken courses -----------------------------------------------

    def record_taken(
        self,
        suid: int,
        course_id: int,
        year: int,
        term: str,
        grade: Optional[str] = None,
    ) -> None:
        """Record a completed course with an optional self-reported grade."""
        term_order(year, term)  # validates the term
        if grade is not None and grade not in GRADE_POINTS:
            raise CourseRankError(
                f"unknown grade {grade!r}; expected one of "
                f"{sorted(GRADE_POINTS)}"
            )
        table = self.database.table("Enrollments")
        if table.lookup_pk((suid, course_id)) is not None:
            table.update_where(
                lambda r: r[0] == suid and r[1] == course_id,
                lambda r: (suid, course_id, year, term, grade),
            )
        else:
            table.insert([suid, course_id, year, term, grade])
        # Planning is superseded by completion.
        self.database.table("Plans").delete_where(
            lambda r: r[0] == suid and r[1] == course_id
        )
        self._refresh_gpa(suid)

    def _refresh_gpa(self, suid: int) -> None:
        gpa = self.cumulative_gpa(suid)
        self.database.execute(
            f"UPDATE Students SET GPA = "
            f"{'NULL' if gpa is None else round(gpa, 4)} WHERE SuID = {suid}"
        )

    # -- planning --------------------------------------------------------------

    def plan_course(
        self,
        suid: int,
        course_id: int,
        year: int,
        term: str,
        shared: bool = True,
        allow_conflicts: bool = False,
    ) -> List[ConflictReport]:
        """Add a course to the plan.

        Returns the conflicts detected (empty when clean).  With
        ``allow_conflicts=False`` a detected conflict raises
        :class:`PlannerConflictError` and nothing is stored — the paper's
        Planner surfaces conflicts rather than silently accepting them.
        """
        term_order(year, term)
        if self.database.table("Courses").lookup_pk((course_id,)) is None:
            raise CourseRankError(f"unknown course {course_id}")
        if self.database.table("Enrollments").lookup_pk((suid, course_id)):
            raise CourseRankError(
                f"student {suid} already took course {course_id}"
            )
        conflicts = self._conflicts_with(suid, course_id, year, term)
        if conflicts and not allow_conflicts:
            raise PlannerConflictError(
                "; ".join(str(conflict) for conflict in conflicts)
            )
        table = self.database.table("Plans")
        if table.lookup_pk((suid, course_id)) is not None:
            table.update_where(
                lambda r: r[0] == suid and r[1] == course_id,
                lambda r: (suid, course_id, year, term, shared),
            )
        else:
            table.insert([suid, course_id, year, term, shared])
        return conflicts

    def unplan_course(self, suid: int, course_id: int) -> bool:
        removed = self.database.table("Plans").delete_where(
            lambda r: r[0] == suid and r[1] == course_id
        )
        return removed > 0

    def set_plan_sharing(self, suid: int, course_id: int, shared: bool) -> None:
        """The privacy opt-out: stop (or resume) sharing one plan entry."""
        table = self.database.table("Plans")
        if table.lookup_pk((suid, course_id)) is None:
            raise CourseRankError(
                f"student {suid} has no plan entry for course {course_id}"
            )
        table.update_where(
            lambda r: r[0] == suid and r[1] == course_id,
            lambda r: (r[0], r[1], r[2], r[3], shared),
        )

    # -- conflicts -------------------------------------------------------------

    def _offering(self, course_id: int, year: int, term: str) -> Optional[Offering]:
        row = self.database.table("Offerings").lookup_pk((course_id, year, term))
        if row is None:
            return None
        return Offering(
            course_id=row[0],
            year=row[1],
            term=row[2],
            days=row[3],
            start_minute=row[4],
            end_minute=row[5],
        )

    def _quarter_course_ids(self, suid: int, year: int, term: str) -> List[int]:
        planned = self.database.query(
            f"SELECT CourseID FROM Plans WHERE SuID = {suid} "
            f"AND Year = {year} AND Term = '{term}'"
        ).column("CourseID")
        taken = self.database.query(
            f"SELECT CourseID FROM Enrollments WHERE SuID = {suid} "
            f"AND Year = {year} AND Term = '{term}'"
        ).column("CourseID")
        return planned + taken

    def _conflicts_with(
        self, suid: int, course_id: int, year: int, term: str
    ) -> List[ConflictReport]:
        candidate = self._offering(course_id, year, term)
        if candidate is None:
            return []  # no meeting times on file -> nothing to check
        conflicts = []
        for other_id in self._quarter_course_ids(suid, year, term):
            if other_id == course_id:
                continue
            other = self._offering(other_id, year, term)
            if other is not None and candidate.overlaps(other):
                conflicts.append(
                    ConflictReport(
                        course_a=course_id,
                        course_b=other_id,
                        year=year,
                        term=term,
                    )
                )
        return conflicts

    def check_quarter(self, suid: int, year: int, term: str) -> List[ConflictReport]:
        """All pairwise conflicts within one quarter of the plan."""
        course_ids = self._quarter_course_ids(suid, year, term)
        conflicts = []
        for position, course_a in enumerate(course_ids):
            offering_a = self._offering(course_a, year, term)
            if offering_a is None:
                continue
            for course_b in course_ids[position + 1 :]:
                offering_b = self._offering(course_b, year, term)
                if offering_b is not None and offering_a.overlaps(offering_b):
                    conflicts.append(
                        ConflictReport(course_a, course_b, year, term)
                    )
        return conflicts

    # -- prerequisites ------------------------------------------------------

    def prerequisite_warnings(self, suid: int) -> List[PrerequisiteWarning]:
        """Planned courses whose prerequisites aren't met earlier."""
        position_of: Dict[int, Tuple[int, int]] = {}
        for course_id, year, term in self.database.query(
            f"SELECT CourseID, Year, Term FROM Enrollments WHERE SuID = {suid}"
        ).rows:
            position_of[course_id] = term_order(year, term)
        planned: List[Tuple[int, Tuple[int, int]]] = []
        for course_id, year, term in self.database.query(
            f"SELECT CourseID, Year, Term FROM Plans WHERE SuID = {suid}"
        ).rows:
            key = term_order(year, term)
            position_of[course_id] = key
            planned.append((course_id, key))
        warnings = []
        for course_id, when in planned:
            prereqs = self.database.query(
                f"SELECT PrereqID FROM Prerequisites WHERE CourseID = {course_id}"
            ).column("PrereqID")
            for prereq in prereqs:
                earlier = position_of.get(prereq)
                if earlier is None or earlier >= when:
                    warnings.append(
                        PrerequisiteWarning(
                            course_id=course_id, missing_prereq=prereq
                        )
                    )
        return warnings

    # -- GPA -----------------------------------------------------------------

    def quarter_gpa(self, suid: int, year: int, term: str) -> Optional[float]:
        """Unit-weighted GPA of one quarter's graded courses."""
        rows = self.database.query(
            "SELECT e.Grade, c.Units FROM Enrollments e "
            "JOIN Courses c ON e.CourseID = c.CourseID "
            f"WHERE e.SuID = {suid} AND e.Year = {year} AND e.Term = '{term}' "
            "AND e.Grade IS NOT NULL"
        ).rows
        return _weighted_gpa(rows)

    def cumulative_gpa(self, suid: int) -> Optional[float]:
        rows = self.database.query(
            "SELECT e.Grade, c.Units FROM Enrollments e "
            "JOIN Courses c ON e.CourseID = c.CourseID "
            f"WHERE e.SuID = {suid} AND e.Grade IS NOT NULL"
        ).rows
        return _weighted_gpa(rows)

    # -- the four-year view --------------------------------------------------

    def four_year_plan(self, suid: int) -> Dict[Tuple[int, str], List[dict]]:
        """Quarter → entries, merging taken and planned courses.

        Entries are dicts with course_id, title, units, status
        ('taken'/'planned'), and grade (taken only).
        """
        plan: Dict[Tuple[int, str], List[dict]] = {}
        taken = self.database.query(
            "SELECT e.Year, e.Term, e.CourseID, c.Title, c.Units, e.Grade "
            "FROM Enrollments e JOIN Courses c ON e.CourseID = c.CourseID "
            f"WHERE e.SuID = {suid}"
        ).rows
        for year, term, course_id, title, units, grade in taken:
            plan.setdefault((year, term), []).append(
                {
                    "course_id": course_id,
                    "title": title,
                    "units": units,
                    "status": "taken",
                    "grade": grade,
                }
            )
        planned = self.database.query(
            "SELECT p.Year, p.Term, p.CourseID, c.Title, c.Units "
            "FROM Plans p JOIN Courses c ON p.CourseID = c.CourseID "
            f"WHERE p.SuID = {suid}"
        ).rows
        for year, term, course_id, title, units in planned:
            plan.setdefault((year, term), []).append(
                {
                    "course_id": course_id,
                    "title": title,
                    "units": units,
                    "status": "planned",
                    "grade": None,
                }
            )
        for entries in plan.values():
            entries.sort(key=lambda entry: entry["course_id"])
        return dict(sorted(plan.items(), key=lambda item: term_order(*item[0])))

    def weekly_schedule(
        self, suid: int, year: int, term: str
    ) -> Dict[str, List[dict]]:
        """The quarter's timetable: day letter → meetings sorted by start.

        This is the "organize their classes into a quarterly schedule"
        view.  Courses without meeting times on file are listed under
        the pseudo-day ``"?"``.
        """
        schedule: Dict[str, List[dict]] = {}
        titles: Dict[int, str] = {}
        for course_id in self._quarter_course_ids(suid, year, term):
            row = self.database.table("Courses").lookup_pk((course_id,))
            titles[course_id] = row[2] if row else f"course {course_id}"
            offering = self._offering(course_id, year, term)
            entry = {
                "course_id": course_id,
                "title": titles[course_id],
                "start_minute": offering.start_minute if offering else None,
                "end_minute": offering.end_minute if offering else None,
            }
            days = offering.days if offering and offering.days else "?"
            for day in days:
                schedule.setdefault(day, []).append(dict(entry))
        for meetings in schedule.values():
            meetings.sort(
                key=lambda m: (
                    m["start_minute"] is None,
                    m["start_minute"] or 0,
                    m["course_id"],
                )
            )
        return schedule

    def quarter_units(self, suid: int, year: int, term: str) -> int:
        """Total units taken+planned in one quarter (load checking)."""
        total = 0
        for entries in (
            self.four_year_plan(suid).get((year, term)) or []
        ):
            total += entries["units"] or 0
        return total


def _weighted_gpa(rows: Sequence[Tuple[Optional[str], Optional[int]]]):
    total_points = 0.0
    total_units = 0
    for grade, units in rows:
        if grade not in GRADE_POINTS:
            continue
        weight = units or 1
        total_points += GRADE_POINTS[grade] * weight
        total_units += weight
    if total_units == 0:
        return None
    return total_points / total_units
