"""Privacy policies.

Two policies from Section 2.2:

* **Grade-distribution disclosure** — official histograms are shown only
  for departments that agreed to release them (in the paper: only the
  School of Engineering); otherwise the self-reported histogram is used;
  and *no* distribution is shown when it covers fewer than ``k`` students
  ("we do not show distributions for classes with very few students,
  since that may disclose information about individual students").

* **Plan sharing** — "we allowed students to see who is planning to take
  a class (one can opt out of sharing)".  Only plan entries with
  ``Shared = TRUE`` are visible to other students.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.errors import PrivacyError
from repro.courserank.gradebook import GradeBook
from repro.courserank.models import GradeDistribution
from repro.minidb.catalog import Database


@dataclass
class PrivacyPolicy:
    """Tunable thresholds; defaults follow the paper's narrative."""

    min_distribution_size: int = 5  # k-anonymity threshold for histograms


class PrivacyGuard:
    """Applies the policies over the gradebook and the Plans relation."""

    def __init__(
        self,
        database: Database,
        policy: Optional[PrivacyPolicy] = None,
    ) -> None:
        self.database = database
        self.policy = policy or PrivacyPolicy()
        self.gradebook = GradeBook(database)

    # -- grade distributions ----------------------------------------------

    def visible_distribution(self, course_id: int) -> GradeDistribution:
        """The distribution a student may see for this course.

        Raises :class:`PrivacyError` when nothing may be disclosed.
        """
        candidate: Optional[GradeDistribution] = None
        if self.gradebook.department_releases_official(course_id):
            candidate = self.gradebook.official_distribution(course_id)
        if candidate is None:
            candidate = self.gradebook.self_reported_distribution(course_id)
        if candidate is None:
            raise PrivacyError(
                f"no grade data available for course {course_id}"
            )
        if candidate.total < self.policy.min_distribution_size:
            raise PrivacyError(
                f"distribution for course {course_id} covers only "
                f"{candidate.total} students "
                f"(< {self.policy.min_distribution_size}); suppressed"
            )
        return candidate

    def distribution_or_none(self, course_id: int) -> Optional[GradeDistribution]:
        """Like :meth:`visible_distribution` but returning None, for UIs."""
        try:
            return self.visible_distribution(course_id)
        except PrivacyError:
            return None

    # -- plan sharing -----------------------------------------------------

    def who_is_planning(
        self, course_id: int, viewer_suid: Optional[int] = None
    ) -> List[Tuple[int, str]]:
        """Students who plan to take the course *and* share their plans.

        The viewer always sees their own entry, shared or not.
        """
        result = self.database.query(
            "SELECT p.SuID, s.Name, p.Shared FROM Plans p "
            "JOIN Students s ON p.SuID = s.SuID "
            f"WHERE p.CourseID = {course_id} ORDER BY p.SuID"
        )
        visible = []
        for suid, name, shared in result.rows:
            if shared or (viewer_suid is not None and suid == viewer_suid):
                visible.append((suid, name))
        return visible

    def sharing_rate(self) -> Optional[float]:
        """Fraction of plan entries shared (the paper: the vast majority)."""
        result = self.database.query(
            "SELECT COUNT(*) AS total, "
            "SUM(CASE WHEN Shared THEN 1 ELSE 0 END) AS shared FROM Plans"
        )
        total, shared = result.rows[0]
        if not total:
            return None
        return (shared or 0) / total
