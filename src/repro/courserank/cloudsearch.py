"""CourseCloud: wiring the search engine and data clouds to CourseRank.

"In CourseRank, a data cloud is used to summarize the results of a
keyword search for courses, and is called course cloud" (Section 3.1).
This module owns the course search entity, the engine, the cloud builder,
and refinement sessions, and resolves hits back to course rows.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.clouds.cloud import CloudBuilder, DataCloud
from repro.clouds.refinement import RefinementSession
from repro.minidb.catalog import Database
from repro.search.engine import SearchEngine, SearchResult
from repro.search.entity import EntityDefinition, course_entity


class CourseCloudSearch:
    """The course search + course cloud feature."""

    def __init__(
        self,
        database: Database,
        entity: Optional[EntityDefinition] = None,
        ranker: str = "bm25",
        scoring: str = "popularity",
        strategy: str = "forward",
        max_cloud_terms: int = 40,
    ) -> None:
        self.database = database
        self.entity = entity or course_entity()
        self.engine = SearchEngine(database, self.entity, ranker=ranker)
        self.builder = CloudBuilder(
            self.engine,
            scoring=scoring,
            strategy=strategy,
            max_terms=max_cloud_terms,
        )
        self._built = False

    def build(self) -> int:
        """Index all courses; returns the number of entities indexed."""
        indexed = self.engine.build()
        self.builder.prepare()
        self._built = True
        return indexed

    def ensure_built(self) -> None:
        if not self._built:
            self.build()

    # -- one-shot search -----------------------------------------------------

    def search(
        self, query: str, limit: Optional[int] = None
    ) -> Tuple[SearchResult, DataCloud]:
        """Search courses and summarize the results with a course cloud.

        Repeated queries are served from the engine's epoch-keyed result
        cache and the cloud builder's gather cache; the returned result
        carries per-query observability (``candidate_count``,
        ``scored_count``, ``cache_hit``, ``elapsed_ms`` — see
        :meth:`query_stats`).
        """
        self.ensure_built()
        result = self.engine.search(query, limit=None)
        cloud = self.builder.build(result)
        if limit is not None:
            result.hits = result.hits[:limit]
        return result, cloud

    @staticmethod
    def query_stats(result: SearchResult) -> Dict[str, Any]:
        """Observability fields of one answered query, as a plain dict."""
        return {
            "query": result.query,
            "hits": len(result.hits),
            "candidate_count": result.candidate_count,
            "scored_count": result.scored_count,
            "cache_hit": result.cache_hit,
            "elapsed_ms": result.elapsed_ms,
        }

    def cache_info(self) -> Dict[str, int]:
        """Hit/miss counters of the engine's query-result cache."""
        return self.engine.cache_info()

    def count(self, query: str) -> int:
        self.ensure_built()
        return self.engine.count(query)

    # -- refinement sessions ----------------------------------------------------

    def session(self, query: str) -> RefinementSession:
        """Start a click-to-refine session (Figures 3/4)."""
        self.ensure_built()
        return RefinementSession(self.engine, self.builder, query)

    # -- cloud cubes ------------------------------------------------------------

    def cube(
        self,
        result: Optional[SearchResult] = None,
        dimensions: Optional[Any] = None,
        scoring: Optional[Any] = None,
    ):
        """An OLAP cloud cube over courses (see :mod:`repro.clouds.cube`).

        Rooted at ``result``'s hits when given, else the whole corpus.
        ``scoring`` swaps the significance model for every cell — e.g. a
        :class:`~repro.graphrank.engine.GraphWeightedScoring` instance
        for preference-weighted clouds.
        """
        from repro.clouds.cube import CloudCube

        self.ensure_built()
        builder = (
            self.builder
            if scoring is None
            else self.builder.with_scoring(scoring)
        )
        return CloudCube(
            self.database,
            builder,
            base_doc_ids=result.doc_ids() if result is not None else None,
            dimensions=dimensions,
            query=result.query if result is not None else "",
            query_terms=result.terms if result is not None else None,
        )

    # -- hit resolution -----------------------------------------------------

    def resolve_courses(
        self,
        result: SearchResult,
        limit: int = 20,
        with_snippets: bool = False,
    ) -> List[dict]:
        """Course rows (with department names) for the top hits, in rank order.

        With ``with_snippets=True`` each row carries a ``snippet`` showing
        the matched text with the query terms marked.
        """
        top = result.top(limit)
        if not top:
            return []
        listed = ", ".join(str(hit.doc_id) for hit in top)
        rows = self.database.query(
            "SELECT c.CourseID, c.Title, c.Units, d.Name AS Department "
            "FROM Courses c JOIN Departments d ON c.DepID = d.DepID "
            f"WHERE c.CourseID IN ({listed})"
        ).to_dicts()
        by_id: Dict[Any, dict] = {row["CourseID"]: row for row in rows}
        resolved = []
        for hit in top:
            row = by_id.get(hit.doc_id)
            if row is not None:
                entry = dict(row)
                entry["score"] = hit.score
                if with_snippets:
                    from repro.search.snippets import best_snippet

                    entry["snippet"] = best_snippet(
                        self.engine, hit.doc_id, result.terms
                    )
                resolved.append(entry)
        return resolved
