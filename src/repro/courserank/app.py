"""The CourseRank facade.

One object wiring every component of Figure 2 — the relational store,
search + course clouds, FlexRecs recommendations, the Planner, the
Requirement Tracker, the Q&A forum, accounts/authorization, incentives,
and the privacy guard — behind a single application API.

>>> from repro.courserank import CourseRank
>>> from repro.datagen import generate_university
>>> app = CourseRank(generate_university(scale="tiny", seed=7))
>>> result, cloud = app.search_courses("programming")
>>> app.recommendations.run("related_courses", course_id=1)  # doctest: +SKIP
"""

from __future__ import annotations

import datetime
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import AuthorizationError, CourseRankError
from repro.courserank.accounts import AccountManager, Role, User
from repro.courserank.analytics import Analytics
from repro.courserank.cloudsearch import CourseCloudSearch
from repro.courserank.forum import Forum
from repro.courserank.gradebook import GradeBook
from repro.courserank.incentives import IncentiveLedger
from repro.courserank.models import Comment, Course, GradeDistribution
from repro.courserank.planner import Planner
from repro.courserank.privacy import PrivacyGuard, PrivacyPolicy
from repro.courserank.ratings import RatingsService
from repro.courserank.recommendations import RecommendationService
from repro.courserank.requirements import RequirementTracker
from repro.courserank.schema import new_database
from repro.minidb.catalog import Database
from repro.obs import OBS


class CourseRank:
    """The assembled social system."""

    def __init__(
        self,
        database: Optional[Database] = None,
        privacy_policy: Optional[PrivacyPolicy] = None,
        use_compiled_sql: bool = True,
    ) -> None:
        self.db = database or new_database()
        self.accounts = AccountManager(self.db)
        self.ratings = RatingsService(self.db)
        self.planner = Planner(self.db)
        self.tracker = RequirementTracker(self.db)
        self.forum = Forum(self.db)
        self.incentives = IncentiveLedger(self.db)
        self.gradebook = GradeBook(self.db)
        self.privacy = PrivacyGuard(self.db, privacy_policy)
        self.cloudsearch = CourseCloudSearch(self.db)
        self.analytics = Analytics(self.db)
        self.recommendations = RecommendationService(
            self.db, use_compiled_sql=use_compiled_sql
        )

    @property
    def graph(self):
        """The shared FolkRank engine over this site's database."""
        from repro.graphrank.engine import GraphRankEngine

        return GraphRankEngine.for_database(self.db)

    # -- search + clouds ------------------------------------------------------

    def search_courses(self, query: str, limit: Optional[int] = None):
        """Keyword search with a course cloud (Figure 3)."""
        with OBS.span("app.search_courses", {"query": query}):
            return self.cloudsearch.search(query, limit=limit)

    def search_session(self, query: str):
        """A refinement session (Figures 3 → 4)."""
        with OBS.span("app.search_session", {"query": query}):
            return self.cloudsearch.session(query)

    # -- course pages -----------------------------------------------------------

    def course(self, course_id: int) -> Course:
        row = self.db.table("Courses").lookup_pk((course_id,))
        if row is None:
            raise CourseRankError(f"unknown course {course_id}")
        return Course(
            course_id=row[0],
            dep_id=row[1],
            title=row[2],
            description=row[3],
            units=row[4],
            url=row[5],
        )

    def course_page(self, course_id: int, viewer: Optional[User] = None) -> Dict[str, Any]:
        """Everything the course-descriptor page of Figure 1 shows."""
        with OBS.span("app.course_page", {"course_id": course_id}):
            return self._course_page(course_id, viewer)

    def _course_page(
        self, course_id: int, viewer: Optional[User] = None
    ) -> Dict[str, Any]:
        course = self.course(course_id)
        page: Dict[str, Any] = {
            "course": course,
            "average_rating": self.ratings.average_rating(course_id),
            "rating_count": self.ratings.rating_count(course_id),
            "comments": self.ratings.comments_for_course(course_id),
            "grade_distribution": self.privacy.distribution_or_none(course_id),
            "planning_to_take": self.privacy.who_is_planning(
                course_id,
                viewer_suid=(
                    viewer.person_id
                    if viewer is not None and viewer.role is Role.STUDENT
                    else None
                ),
            ),
            "offerings": self.db.query(
                "SELECT Year, Term FROM Offerings "
                f"WHERE CourseID = {course_id} ORDER BY Year, Term"
            ).rows,
            "textbooks": self.db.query(
                "SELECT t.Title, t.Author FROM CourseTextbooks ct "
                "JOIN Textbooks t ON ct.TextbookID = t.TextbookID "
                f"WHERE ct.CourseID = {course_id} ORDER BY t.Title"
            ).rows,
            "instructors": self.db.query(
                "SELECT i.Name FROM Teaches te "
                "JOIN Instructors i ON te.InstructorID = i.InstructorID "
                f"WHERE te.CourseID = {course_id} ORDER BY i.Name"
            ).column("Name"),
        }
        return page

    # -- authenticated actions ----------------------------------------------------

    def comment_on_course(
        self,
        user: User,
        course_id: int,
        text: Optional[str],
        rating: Optional[float],
        day: Optional[datetime.date] = None,
    ) -> Comment:
        """Student action: comment + rate, earning incentive points.

        The course's search entity is refreshed in place, so new comment
        vocabulary becomes searchable (and cloud-visible) immediately.
        """
        self.accounts.authorize(user, "comment")
        comment = self.ratings.add_comment(
            user.person_id, course_id, text, rating, day=day
        )
        self.incentives.award(user.user_id, "comment", day=day)
        if rating is not None:
            self.incentives.award(user.user_id, "rate_course", day=day)
        if self.cloudsearch._built:
            self.cloudsearch.engine.refresh_document(course_id)
        return comment

    def add_faculty_note(
        self,
        user: User,
        course_id: int,
        text: str,
        day: Optional[datetime.date] = None,
    ) -> int:
        """Faculty action: annotate *their own* course."""
        self.accounts.authorize(user, "faculty_note")
        teaches = self.db.table("Teaches").lookup_pk(
            (user.person_id, course_id)
        )
        if teaches is None:
            raise AuthorizationError(
                "faculty may only annotate courses they teach"
            )
        current = self.db.query("SELECT MAX(NoteID) FROM FacultyNotes").scalar()
        note_id = (current or 0) + 1
        self.db.table("FacultyNotes").insert(
            [note_id, course_id, user.person_id, text, day or datetime.date.today()]
        )
        return note_id

    def define_requirement(
        self, user: User, dep_id: int, name: str, rule: str
    ) -> int:
        """Staff action: enter a program requirement."""
        self.accounts.authorize(user, "define_requirement")
        return self.tracker.define(dep_id, name, rule)

    def report_textbook(
        self, user: User, course_id: int, title: str, author: str = ""
    ) -> int:
        """Volunteer textbook reporting (the bookstore wouldn't share)."""
        self.accounts.authorize(user, "report_textbook")
        textbooks = self.db.table("Textbooks")
        existing = self.db.query(
            f"SELECT TextbookID FROM Textbooks WHERE Title = "
            f"'{title.replace(chr(39), chr(39) * 2)}'"
        ).rows
        if existing:
            textbook_id = existing[0][0]
        else:
            current = self.db.query(
                "SELECT MAX(TextbookID) FROM Textbooks"
            ).scalar()
            textbook_id = (current or 0) + 1
            textbooks.insert([textbook_id, title, author or None])
        link = self.db.table("CourseTextbooks")
        if link.lookup_pk((course_id, textbook_id)) is None:
            link.insert([course_id, textbook_id, user.person_id])
            self.incentives.award(user.user_id, "report_textbook")
        return textbook_id

    def compare_course_to_department(self, user: User, course_id: int) -> Dict[str, Any]:
        """Faculty feature: "see how their class compares to other classes"."""
        self.accounts.authorize(user, "compare_courses")
        course = self.course(course_id)
        own = self.ratings.average_rating(course_id)
        department = self.db.query(
            "SELECT AVG(cm.Rating) FROM Comments cm "
            "JOIN Courses c ON cm.CourseID = c.CourseID "
            f"WHERE c.DepID = {course.dep_id}"
        ).scalar()
        return {
            "course_id": course_id,
            "course_average": own,
            "department_average": department,
            "delta": (own - department) if own is not None and department else None,
        }

    # -- site statistics (the numbers of Section 2) ----------------------------

    def observability(self) -> Dict[str, Any]:
        """The process-wide observability snapshot plus app cache counters.

        Everything here reads from :data:`repro.obs.OBS` and the
        components' own cache statistics — this facade adds no counters
        of its own.
        """
        snapshot = OBS.snapshot()
        snapshot["caches"] = {
            "search_result_cache": (
                self.cloudsearch.cache_info()
                if self.cloudsearch._built
                else None
            ),
            "plan_cache": {
                "hits": self.db._plan_cache.hits,
                "misses": self.db._plan_cache.misses,
                "size": len(self.db._plan_cache),
            },
        }
        return snapshot

    def site_statistics(self) -> Dict[str, int]:
        counts = self.db.stats()
        users_by_role = self.accounts.count_by_role()
        return {
            "courses": counts.get("Courses", 0),
            "comments": counts.get("Comments", 0),
            "ratings": self.db.query(
                "SELECT COUNT(Rating) FROM Comments WHERE Rating IS NOT NULL"
            ).scalar(),
            "students": counts.get("Students", 0),
            "student_users": users_by_role.get("student", 0),
            "faculty_users": users_by_role.get("faculty", 0),
            "staff_users": users_by_role.get("staff", 0),
            "enrollments": counts.get("Enrollments", 0),
            "plans": counts.get("Plans", 0),
            "questions": counts.get("Questions", 0),
            "departments": counts.get("Departments", 0),
        }

    def components(self) -> List[str]:
        """The Figure 2 component inventory (used by the F2 smoke bench)."""
        return [
            "database",
            "accounts",
            "search",
            "course_cloud",
            "flexrecs",
            "planner",
            "requirement_tracker",
            "forum",
            "incentives",
            "privacy",
            "gradebook",
            "ratings",
            "analytics",
        ]
