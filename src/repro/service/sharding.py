"""Horizontal sharding of the synthetic university by department hash.

A shard is a complete, self-contained CourseRank database holding a
subset of the *courses* (and every row that hangs off them) plus a full
replica of the reference tables.  Routing is by the owning course's
department: all of a department's courses — and their comments,
offerings, enrollments, plans, grades — land on one shard, so every
course-scoped operation (course page, comment, per-course recommend) is
single-shard, while search and clouds scatter-gather across all shards.

The split is a *projection* of an already-generated unsharded database:
rows are copied in insertion order, so each shard's tables, search
entity texts, and index contents are exactly what a fresh build over
that course subset would produce.  Shard databases disable foreign-key
enforcement because cross-shard references (e.g. a prerequisite course
on another shard) are dangling by design.
"""

from __future__ import annotations

from typing import Dict, List, Set

from repro.courserank.schema import create_schema
from repro.minidb.catalog import Database

#: course-scoped tables: partitioned by the owning course's department.
#: (``Courses`` itself routes by its DepID column.)
PARTITIONED_BY_COURSE = (
    "Teaches",
    "Offerings",
    "Prerequisites",
    "CourseTextbooks",
    "Enrollments",
    "Plans",
    "Comments",
    "CommentVotes",
    "FacultyNotes",
    "OfficialGrades",
)

#: reference + low-traffic tables: replicated to every shard.  The forum
#: tables are replicated (the paper: the forum saw little traffic), so
#: Q&A reads work on any shard.
REPLICATED = (
    "Departments",
    "Instructors",
    "Textbooks",
    "Students",
    "Users",
    "Requirements",
    "Questions",
    "Answers",
    "QuestionRoutes",
    "PointsLedger",
)

_KNUTH_32 = 2654435761  # Fibonacci-hash multiplier
_MASK_32 = 0xFFFFFFFF


def shard_for_department(dep_id: int, num_shards: int) -> int:
    """Deterministic department → shard routing (stable across runs).

    A multiplicative hash rather than plain modulo, so consecutive
    department ids spread over shards instead of striping.
    """
    return ((dep_id * _KNUTH_32) & _MASK_32) % num_shards


class ShardedUniversity:
    """The sharded build of one unsharded CourseRank database."""

    def __init__(self, source: Database, num_shards: int) -> None:
        if num_shards < 1:
            raise ValueError("num_shards must be at least 1")
        self.num_shards = num_shards
        self.shards: List[Database] = []
        for _ in range(num_shards):
            shard = Database(enforce_foreign_keys=False)
            create_schema(shard, with_indexes=True)
            self.shards.append(shard)
        #: course id -> shard index (routing table for single-shard ops)
        self.course_shard: Dict[int, int] = {}
        self._split(source)

    # -- routing -----------------------------------------------------------

    def shard_of_course(self, course_id: int) -> int:
        try:
            return self.course_shard[course_id]
        except KeyError:
            raise KeyError(f"unknown course {course_id!r}") from None

    def shard_of_department(self, dep_id: int) -> int:
        return shard_for_department(dep_id, self.num_shards)

    # -- the split ---------------------------------------------------------

    def _split(self, source: Database) -> None:
        replicated = {name.lower() for name in REPLICATED}
        by_course = {name.lower() for name in PARTITIONED_BY_COURSE}

        # Pass 1: route courses by department hash and record the map.
        courses = source.table("Courses")
        dep_position = courses.schema.column_position("DepID")
        id_position = courses.schema.column_position("CourseID")
        for row in courses.rows():
            shard_index = self.shard_of_department(row[dep_position])
            self.course_shard[row[id_position]] = shard_index
            self.shards[shard_index].table("Courses").insert(list(row))

        # Pass 2: everything else, in catalog order, preserving each
        # table's row insertion order per shard (entity text assembly and
        # the differential tests depend on row order being reproducible).
        for name in source.table_names():
            key = name.lower()
            if key == "courses":
                continue
            table = source.table(name)
            if key in by_course:
                position = table.schema.column_position("CourseID")
                targets = [shard.table(name) for shard in self.shards]
                for row in table.rows():
                    shard_index = self.course_shard.get(row[position])
                    if shard_index is None:
                        continue  # row for a course that no longer exists
                    targets[shard_index].insert(list(row))
            elif key in replicated:
                targets = [shard.table(name) for shard in self.shards]
                for row in table.rows():
                    values = list(row)
                    for target in targets:
                        target.insert(values)
            else:
                # Unknown (future) tables: partition when they carry a
                # CourseID column, replicate otherwise.
                columns = {
                    column.name.lower() for column in table.schema.columns
                }
                if "courseid" in columns:
                    position = table.schema.column_position("CourseID")
                    targets = [shard.table(name) for shard in self.shards]
                    for row in table.rows():
                        shard_index = self.course_shard.get(row[position])
                        if shard_index is None:
                            continue
                        targets[shard_index].insert(list(row))
                else:
                    targets = [shard.table(name) for shard in self.shards]
                    for row in table.rows():
                        values = list(row)
                        for target in targets:
                            target.insert(values)

    # -- introspection -----------------------------------------------------

    def course_counts(self) -> List[int]:
        """Courses per shard (balance check)."""
        return [len(shard.table("Courses")) for shard in self.shards]

    def departments_on(self, shard_index: int) -> Set[int]:
        """Departments whose courses live on ``shard_index``."""
        courses = self.shards[shard_index].table("Courses")
        position = courses.schema.column_position("DepID")
        return {row[position] for row in courses.rows()}
