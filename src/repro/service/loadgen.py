"""Closed-loop Zipfian load generation against the service layer.

The generator replays a deterministic trace of mixed operations —
keyword search, cloud-refinement sessions, FlexRecs recommendations,
and (optionally) comment writes — whose queries follow the same
``1/(rank+1)`` Zipfian popularity the synthetic population uses
(:mod:`repro.datagen.population`): a few head queries dominate, a long
tail trickles.  That shape is what makes the coordinator's epoch-vector
response cache earn its keep, exactly as CourseRank's real workload
("about 20,000 page views a day") concentrates on a few popular courses.

Closed loop: each worker thread issues its next operation only after the
previous one completes, so offered load adapts to service latency and
the sustained QPS number is honest.  Every worker records latencies into
a *private* :class:`~repro.obs.metrics.MetricsRegistry`; the per-worker
registries are merged associatively at the end (PR 5's equivalence suite
is what licenses this), and p50/p99 come from the merged histograms.

The same trace can be replayed single-threaded against the unsharded
:class:`~repro.courserank.app.CourseRank` facade, giving the baseline
for the speedup figure, plus a bit-identical spot check of the two
builds' answers before any timing begins.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.courserank.accounts import Role, User
from repro.courserank.app import CourseRank
from repro.minidb.catalog import Database
from repro.obs.metrics import MetricsRegistry
from repro.service.frontend import CourseRankService

#: default operation mix (read-only; comments enter via write_fraction)
DEFAULT_MIX: Dict[str, float] = {
    "search": 0.55,
    "session": 0.25,
    "recommend": 0.20,
}

_STOPWORDS = {
    "and", "the", "for", "with", "from", "into", "introduction", "of", "to",
}


def zipf_pick(rng, items: Sequence[Any]) -> Any:
    """Draw one item with weight 1/(rank+1) — the population's law."""
    weights = [1.0 / (rank + 1) for rank in range(len(items))]
    return rng.choices(items, weights=weights, k=1)[0]


def build_query_pool(
    database: Database, rng, size: int = 48
) -> List[str]:
    """A popularity-ranked pool of queries mined from course titles."""
    rows = database.query("SELECT Title FROM Courses ORDER BY CourseID").rows
    counts: Dict[str, int] = {}
    for (title,) in rows:
        for word in str(title).lower().replace("-", " ").split():
            word = word.strip(",:()&")
            if len(word) > 3 and word not in _STOPWORDS:
                counts[word] = counts.get(word, 0) + 1
    ranked = sorted(counts, key=lambda word: (-counts[word], word))
    pool = ranked[: size * 2 // 3]
    # Pad with two-word queries over the head words (phrase-free AND).
    head = ranked[:12]
    while len(pool) < size and len(head) >= 2:
        first, second = rng.sample(head, 2)
        query = f"{first} {second}"
        if query not in pool:
            pool.append(query)
    return pool


def build_trace(
    database: Database,
    operations: int = 400,
    seed: int = 11,
    mix: Optional[Dict[str, float]] = None,
    write_fraction: float = 0.0,
    graph_fraction: float = 0.0,
) -> List[Tuple[Any, ...]]:
    """A deterministic mixed-operation trace.

    Each entry is ``(kind, *args)``: ``("search", query)``,
    ``("session", query)``, ``("recommend", course_id)``, or
    ``("comment", course_id, text, rating)``.  ``write_fraction`` carves
    that share out of the read mix for comment writes, and
    ``graph_fraction`` carves a further share split evenly between
    ``("graphrank", student_id)`` FolkRank recommendations and
    ``("cube-walk", dimension)`` OLAP cloud-cube navigations.
    """
    import random

    rng = random.Random(seed)
    mix = dict(mix or DEFAULT_MIX)
    if write_fraction > 0.0:
        scale = 1.0 - write_fraction
        mix = {kind: share * scale for kind, share in mix.items()}
        mix["comment"] = write_fraction
    if graph_fraction > 0.0:
        scale = 1.0 - graph_fraction
        mix = {kind: share * scale for kind, share in mix.items()}
        mix["graphrank"] = graph_fraction / 2.0
        mix["cube-walk"] = graph_fraction / 2.0
    kinds = sorted(mix)
    shares = [mix[kind] for kind in kinds]
    queries = build_query_pool(database, rng)
    course_rows = database.query(
        "SELECT CourseID FROM Courses ORDER BY CourseID"
    ).rows
    course_ids = [row[0] for row in course_rows]
    student_rows = database.query(
        "SELECT SuID FROM Students ORDER BY SuID"
    ).rows
    student_ids = [row[0] for row in student_rows]
    dimensions = ("department", "quarter", "instructor")
    trace: List[Tuple[Any, ...]] = []
    for step in range(operations):
        kind = rng.choices(kinds, weights=shares, k=1)[0]
        if kind in ("search", "session"):
            trace.append((kind, zipf_pick(rng, queries)))
        elif kind == "recommend":
            trace.append((kind, zipf_pick(rng, course_ids)))
        elif kind == "graphrank":
            trace.append((kind, zipf_pick(rng, student_ids)))
        elif kind == "cube-walk":
            trace.append((kind, zipf_pick(rng, dimensions)))
        else:
            course_id = zipf_pick(rng, course_ids)
            word = zipf_pick(rng, queries).split()[0]
            trace.append(
                (
                    "comment",
                    course_id,
                    f"trace note {step}: solid {word} material",
                    float(1.0 + (step % 9) * 0.5),
                )
            )
    return trace


# -- clients -----------------------------------------------------------------


class ServiceClient:
    """Executes trace operations against the sharded service."""

    def __init__(
        self, service: CourseRankService, user: Optional[User] = None
    ) -> None:
        self.service = service
        self.user = user
        # One shared cube navigator: its cell memo is version-keyed, so
        # reuse across operations (and after writes) stays correct while
        # the Zipfian walk repetition gets the memo hits it deserves.
        self._cube = None

    def _walk_cube(self, dimension: str) -> None:
        if self._cube is None:
            self._cube = self.service.cube()
        cube = self._cube
        root = cube.root()
        values = cube.dimension_values(root, dimension)
        if values:
            child = cube.slice(root, dimension, values[0])
            cube.roll_up(child)

    def run(self, op: Tuple[Any, ...]) -> None:
        kind = op[0]
        if kind == "search":
            self.service.search(op[1], limit=20)
        elif kind == "session":
            session = self.service.session(op[1])
            if session.cloud.terms:
                session.refine(session.cloud.terms[0].term)
                session.back()
        elif kind == "recommend":
            self.service.recommend("related_courses", course_id=op[1])
        elif kind == "graphrank":
            self.service.recommend(
                "graph_rank_courses", student_id=op[1], top_k=10
            )
        elif kind == "cube-walk":
            self._walk_cube(op[1])
        elif kind == "comment":
            if self.user is None:
                raise ValueError("comment ops need a registered user")
            self.service.comment_on_course(self.user, op[1], op[2], op[3])
        else:
            raise ValueError(f"unknown trace op {kind!r}")


class BaselineClient:
    """Executes the same trace against the unsharded facade."""

    def __init__(self, app: CourseRank, user: Optional[User] = None) -> None:
        self.app = app
        self.user = user
        self._cube = None

    def _walk_cube(self, dimension: str) -> None:
        if self._cube is None:
            self._cube = self.app.cloudsearch.cube()
        cube = self._cube
        root = cube.root()
        values = cube.dimension_values(root, dimension)
        if values:
            child = cube.slice(root, dimension, values[0])
            cube.roll_up(child)

    def run(self, op: Tuple[Any, ...]) -> None:
        kind = op[0]
        if kind == "search":
            self.app.search_courses(op[1], limit=20)
        elif kind == "session":
            session = self.app.search_session(op[1])
            if session.cloud.terms:
                session.refine(session.cloud.terms[0].term)
                session.back()
        elif kind == "recommend":
            self.app.recommendations.run("related_courses", course_id=op[1])
        elif kind == "graphrank":
            self.app.recommendations.run(
                "graph_rank_courses", student_id=op[1], top_k=10
            )
        elif kind == "cube-walk":
            self._walk_cube(op[1])
        elif kind == "comment":
            if self.user is None:
                raise ValueError("comment ops need a registered user")
            self.app.comment_on_course(self.user, op[1], op[2], op[3])
        else:
            raise ValueError(f"unknown trace op {kind!r}")


# -- the closed loop ---------------------------------------------------------


def run_load(
    client: Any,
    trace: Sequence[Tuple[Any, ...]],
    threads: int = 8,
) -> Tuple[MetricsRegistry, float]:
    """Replay ``trace`` over ``threads`` closed-loop workers.

    Returns the merged per-worker metrics and the wall-clock duration.
    Worker *i* takes the round-robin slice ``trace[i::threads]``, so the
    operation mix every worker sees matches the trace's.
    """
    if threads < 1:
        raise ValueError("threads must be at least 1")
    registries = [MetricsRegistry() for _ in range(threads)]
    barrier = threading.Barrier(threads + 1)
    errors: List[BaseException] = []
    errors_lock = threading.Lock()

    def worker(index: int) -> None:
        registry = registries[index]
        slice_ = trace[index::threads]
        try:
            barrier.wait()
            for op in slice_:
                started = time.perf_counter()
                client.run(op)
                elapsed_ms = (time.perf_counter() - started) * 1000.0
                registry.observe("loadgen.op.ms", elapsed_ms)
                registry.observe(f"loadgen.{op[0]}.ms", elapsed_ms)
                registry.inc("loadgen.op.count")
                registry.inc(f"loadgen.{op[0]}.count")
        except BaseException as exc:  # surfaced to the caller
            with errors_lock:
                errors.append(exc)

    workers = [
        threading.Thread(target=worker, args=(index,), daemon=True)
        for index in range(threads)
    ]
    for thread in workers:
        thread.start()
    barrier.wait()
    started = time.perf_counter()
    for thread in workers:
        thread.join()
    duration = time.perf_counter() - started
    if errors:
        raise errors[0]
    return MetricsRegistry.merged(registries), duration


# -- the full load test ------------------------------------------------------


@dataclass
class LoadReport:
    """One load-test outcome, ready for the benchmark JSON."""

    scale: str
    shards: int
    threads: int
    operations: int
    seed: int
    duration_s: float
    qps: float
    p50_ms: Optional[float]
    p99_ms: Optional[float]
    per_kind: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    baseline_qps: Optional[float] = None
    baseline_duration_s: Optional[float] = None
    speedup: Optional[float] = None
    equivalent: Optional[bool] = None
    response_cache: Dict[str, int] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "scale": self.scale,
            "shards": self.shards,
            "threads": self.threads,
            "operations": self.operations,
            "seed": self.seed,
            "duration_s": self.duration_s,
            "qps": self.qps,
            "p50_ms": self.p50_ms,
            "p99_ms": self.p99_ms,
            "per_kind": self.per_kind,
            "baseline_qps": self.baseline_qps,
            "baseline_duration_s": self.baseline_duration_s,
            "speedup": self.speedup,
            "equivalent": self.equivalent,
            "response_cache": self.response_cache,
        }


def _per_kind_summary(
    registry: MetricsRegistry, trace: Sequence[Tuple[Any, ...]]
) -> Dict[str, Dict[str, Any]]:
    summary: Dict[str, Dict[str, Any]] = {}
    for kind in sorted({op[0] for op in trace}):
        histogram = registry.histogram(f"loadgen.{kind}.ms")
        if histogram is None:
            continue
        summary[kind] = {
            "count": registry.counter(f"loadgen.{kind}.count"),
            "mean_ms": histogram.mean,
            "p50_ms": histogram.quantile(0.50),
            "p99_ms": histogram.quantile(0.99),
        }
    return summary


def spot_check_equivalence(
    app: CourseRank,
    service: CourseRankService,
    trace: Sequence[Tuple[Any, ...]],
    sample: int = 8,
) -> bool:
    """Bit-identical comparison of the two builds on trace head queries."""
    queries: List[str] = []
    for op in trace:
        if op[0] in ("search", "session") and op[1] not in queries:
            queries.append(op[1])
        if len(queries) >= sample:
            break
    for query in queries:
        base_result, base_cloud = app.cloudsearch.search(query)
        svc_result, svc_cloud = service.search(query)
        if [(hit.doc_id, hit.score) for hit in base_result.hits] != [
            (hit.doc_id, hit.score) for hit in svc_result.hits
        ]:
            return False
        if [
            (term.term, term.score, term.occurrences, term.result_df, term.bucket)
            for term in base_cloud.terms
        ] != [
            (term.term, term.score, term.occurrences, term.result_df, term.bucket)
            for term in svc_cloud.terms
        ]:
            return False
    return True


def load_test(
    scale: str = "small",
    shards: int = 4,
    threads: int = 8,
    operations: int = 400,
    seed: int = 11,
    write_fraction: float = 0.0,
    graph_fraction: float = 0.0,
    with_baseline: bool = True,
) -> LoadReport:
    """Generate a university, shard it, and measure sustained throughput.

    Builds the unsharded baseline and the sharded service over the same
    generated data, spot-checks that they answer bit-identically, replays
    the trace single-threaded against the baseline and ``threads``-wide
    against the service, and reports QPS plus merged p50/p99 latencies.
    """
    from repro.datagen import generate_university

    service_db = generate_university(scale=scale, seed=seed)
    service = CourseRankService(service_db, num_shards=shards)
    trace = build_trace(
        service_db,
        operations=operations,
        seed=seed,
        write_fraction=write_fraction,
        graph_fraction=graph_fraction,
    )

    baseline_qps = None
    baseline_duration = None
    equivalent = None
    app = None
    if with_baseline:
        baseline_db = generate_university(scale=scale, seed=seed)
        app = CourseRank(baseline_db)
        app.cloudsearch.build()
        equivalent = spot_check_equivalence(app, service, trace)

    service_user = None
    baseline_user = None
    if write_fraction > 0.0:
        # Users are replicated at split time, so the same registration on
        # every shard app lands the same user id everywhere.
        for shard_app in service.apps:
            service_user = shard_app.accounts.register(
                "loadgen", Role.STUDENT, person_id=1
            )
        if app is not None:
            baseline_user = app.accounts.register(
                "loadgen", Role.STUDENT, person_id=1
            )

    if app is not None:
        _, baseline_duration = run_load(
            BaselineClient(app, baseline_user), trace, threads=1
        )
        baseline_qps = len(trace) / baseline_duration

    merged, duration = run_load(
        ServiceClient(service, service_user), trace, threads=threads
    )
    overall = merged.histogram("loadgen.op.ms")
    qps = len(trace) / duration
    return LoadReport(
        scale=scale,
        shards=shards,
        threads=threads,
        operations=len(trace),
        seed=seed,
        duration_s=duration,
        qps=qps,
        p50_ms=overall.quantile(0.50) if overall is not None else None,
        p99_ms=overall.quantile(0.99) if overall is not None else None,
        per_kind=_per_kind_summary(merged, trace),
        baseline_qps=baseline_qps,
        baseline_duration_s=baseline_duration,
        speedup=(qps / baseline_qps) if baseline_qps else None,
        equivalent=equivalent,
        response_cache=service.response_cache_info(),
    )
