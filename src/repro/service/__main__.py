"""CLI for the closed-loop load generator.

    python -m repro.service --scale small --shards 4 --threads 8 --ops 400
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.service.loadgen import load_test


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.service",
        description="Closed-loop Zipfian load test of the sharded service.",
    )
    parser.add_argument("--scale", default="small")
    parser.add_argument("--shards", type=int, default=4)
    parser.add_argument("--threads", type=int, default=8)
    parser.add_argument("--ops", type=int, default=400)
    parser.add_argument("--seed", type=int, default=11)
    parser.add_argument("--write-fraction", type=float, default=0.0)
    parser.add_argument(
        "--graph-fraction",
        type=float,
        default=0.0,
        help="share of ops split between graphrank and cube-walk",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="skip the single-threaded unsharded baseline run",
    )
    parser.add_argument(
        "--json", metavar="PATH", help="also write the report as JSON"
    )
    options = parser.parse_args(argv)
    report = load_test(
        scale=options.scale,
        shards=options.shards,
        threads=options.threads,
        operations=options.ops,
        seed=options.seed,
        write_fraction=options.write_fraction,
        graph_fraction=options.graph_fraction,
        with_baseline=not options.no_baseline,
    )
    print(
        f"service: {report.qps:.1f} ops/s over {report.operations} ops "
        f"({report.threads} threads, {report.shards} shards, "
        f"scale={report.scale})"
    )
    if report.p50_ms is not None:
        print(f"latency: p50 {report.p50_ms:.2f} ms, p99 {report.p99_ms:.2f} ms")
    if report.baseline_qps is not None:
        print(
            f"baseline (1 thread, unsharded): {report.baseline_qps:.1f} ops/s "
            f"-> speedup {report.speedup:.2f}x"
        )
    if report.equivalent is not None:
        print(f"sharded == unsharded spot check: {report.equivalent}")
    for kind, stats in report.per_kind.items():
        print(
            f"  {kind:>9}: n={stats['count']:<5.0f} "
            f"p50={stats['p50_ms']:.2f}ms p99={stats['p99_ms']:.2f}ms"
        )
    if options.json:
        with open(options.json, "w", encoding="utf-8") as handle:
            json.dump(report.to_dict(), handle, indent=2, sort_keys=True)
        print(f"wrote {options.json}")
    return 0 if report.equivalent in (True, None) else 1


if __name__ == "__main__":
    sys.exit(main())
