"""Scatter-gather graph ranking over the sharded service.

The shards partition every graph source table row-wise (Enrollments,
Comments, and Courses each land on exactly one shard), and adjacency
edge weights are *integer sums over rows*.  Summing the per-shard layer
edge dicts therefore reconstructs the union graph **exactly** — the same
associativity argument the distributed BM25 and cloud merges lean on —
so rankings computed here are bit-identical to an unsharded
:class:`~repro.graphrank.engine.GraphRankEngine` over the union
database.

Incrementality composes too: each shard keeps its own version-stamped
layers (reused unless that shard's source tables moved), and the merged
layer is cached under the tuple of per-shard layer versions, so a write
to one shard re-gathers only the affected layer.
"""

from __future__ import annotations

from typing import Any, Dict, List

from repro.graphrank.adjacency import (
    LAYER_ORDER,
    AdjacencyLayer,
    Edges,
    TripartiteAdjacency,
)
from repro.graphrank.engine import GraphRankEngine
from repro.obs import OBS


class ShardedGraphRank(GraphRankEngine):
    """A :class:`GraphRankEngine` whose adjacency is the shard merge.

    Everything downstream of :meth:`refresh` — baselines, differential
    memoization, course ranking, term weights — is inherited unchanged;
    only the adjacency assembly is scatter-gather.
    """

    def __init__(self, service: Any) -> None:
        # The base class keeps a database reference for layer builds; the
        # overridden refresh never touches it, but shard 0 keeps the
        # attribute meaningful for cache_info and repr purposes.
        super().__init__(service.sharded.shards[0])
        self.service = service
        self._shard_engines: List[GraphRankEngine] = [
            GraphRankEngine.for_database(shard)
            for shard in service.sharded.shards
        ]

    def refresh(self) -> TripartiteAdjacency:
        """The union adjacency, re-merging only layers that moved."""
        with self._lock:
            per_shard = [
                engine.refresh() for engine in self._shard_engines
            ]
            changed = False
            layers: Dict[str, AdjacencyLayer] = {}
            for name in LAYER_ORDER:
                version = tuple(
                    adjacency.layers[name].version
                    for adjacency in per_shard
                )
                cached = self._layers.get(name)
                if cached is not None and cached.version == version:
                    layers[name] = cached
                    self.layers_reused += 1
                    continue
                with OBS.span(
                    "service.graph.merge_layer", {"layer": name}
                ):
                    edges: Edges = {}
                    for adjacency in per_shard:
                        for node, neighbors in adjacency.layers[
                            name
                        ].edges.items():
                            bucket = edges.setdefault(node, {})
                            for neighbor, weight in neighbors.items():
                                bucket[neighbor] = (
                                    bucket.get(neighbor, 0) + weight
                                )
                layers[name] = AdjacencyLayer(
                    name=name, version=version, edges=edges
                )
                self.layers_rebuilt += 1
                changed = True
            if changed or self._adjacency is None:
                self._layers = layers
                self._adjacency = TripartiteAdjacency(layers)
            return self._adjacency
