"""repro.service — the concurrent, sharded multi-user front end.

Turns the single-threaded CourseRank library facade into something that
can take traffic (DESIGN.md §13):

* :mod:`repro.service.sharding` splits the synthetic university into
  department-hash shards (course-scoped tables partitioned, reference
  tables replicated) so each shard is a self-contained CourseRank corpus;
* :mod:`repro.service.frontend` is the scatter-gather coordinator:
  thread-safe search/cloud/refine/recommend/comment over the shard set,
  with two-phase global-statistics scoring and exact aggregate merges so
  sharded results are bit-identical to the unsharded build, plus an
  epoch-vector response cache;
* :mod:`repro.service.loadgen` is the closed-loop Zipfian load generator
  reporting sustained QPS and p50/p99 latency through ``repro.obs``.
"""

from repro.service.frontend import CourseRankService, ServiceSession
from repro.service.sharding import ShardedUniversity, shard_for_department

__all__ = [
    "CourseRankService",
    "ServiceSession",
    "ShardedUniversity",
    "shard_for_department",
]
