"""Scatter-gather cloud cubes: OLAP navigation over the sharded service.

The sharded twin of :class:`repro.clouds.cube.CloudCube`.  Documents are
partitioned over shards, so every cell keeps *per-shard* doc-id tuples;
cell clouds merge per-shard term partials through the coordinator's
standard merge (:meth:`CourseRankService._merged_cloud_for_docs`), which
is the exact machinery search and refinement use — so cube navigation
scatter-gathers exactly over shards, and every navigated cloud is
bit-identical to an unsharded :class:`CloudCube` walk over the union
corpus (the differential tests in ``tests/service/test_cube_service.py``
pin 1–5 shards against unsharded, cell by cell).

Slicing hands each shard its parent doc set, so per-shard gathers run the
incremental subtract-dropped-docs path — lattice edges cost what
refinement steps cost, not what cold builds cost.

Membership maps are computed per shard database (department, quarter,
and instructor rows live with their courses), version-keyed exactly as
the unsharded maps are.  Cells memoize per (per-shard version vectors,
coordinate) under the service read lock.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.clouds.cloud import DataCloud, DocId
from repro.clouds.cube import (
    COURSE_DIMENSIONS,
    Coordinate,
    DimensionSpec,
    database_version_vector,
    membership_for,
)
from repro.errors import CloudError
from repro.obs import OBS


@dataclass(frozen=True)
class ServiceCubeCell:
    """One lattice cell over the sharded corpus."""

    coordinate: Coordinate
    shard_doc_ids: Tuple[Tuple[DocId, ...], ...]
    cloud: DataCloud

    @property
    def result_size(self) -> int:
        return sum(len(ids) for ids in self.shard_doc_ids)

    @property
    def doc_ids(self) -> Tuple[DocId, ...]:
        """All documents of the cell, concatenated in shard order."""
        return tuple(
            doc_id for shard in self.shard_doc_ids for doc_id in shard
        )


class ServiceCube:
    """A navigable lattice of scatter-gathered data clouds."""

    def __init__(
        self,
        service: Any,
        shard_base: Optional[Sequence[Sequence[DocId]]] = None,
        dimensions: Optional[Sequence[DimensionSpec]] = None,
        query: str = "",
        query_terms: Optional[Sequence[str]] = None,
    ) -> None:
        self.service = service
        self.dimensions: Tuple[DimensionSpec, ...] = tuple(
            dimensions if dimensions is not None else COURSE_DIMENSIONS
        )
        names = [spec.name for spec in self.dimensions]
        if len(set(names)) != len(names):
            raise CloudError(f"duplicate cube dimensions: {names}")
        self._by_name = {spec.name: spec for spec in self.dimensions}
        if shard_base is None:
            shard_base = [
                tuple(app.cloudsearch.engine.index.document_ids())
                for app in service.apps
            ]
        if len(shard_base) != len(service.apps):
            raise CloudError(
                f"shard_base has {len(shard_base)} entries for "
                f"{len(service.apps)} shards"
            )
        self.shard_base: Tuple[Tuple[DocId, ...], ...] = tuple(
            tuple(ids) for ids in shard_base
        )
        self.query = query
        self.query_terms = (
            list(query_terms) if query_terms is not None else None
        )
        self._cells: Dict[Tuple[Any, ...], ServiceCubeCell] = {}
        self.stats = {
            "cold_builds": 0,
            "incremental_builds": 0,
            "memo_hits": 0,
        }

    # -- plumbing ------------------------------------------------------------

    def _spec(self, dimension: str) -> DimensionSpec:
        spec = self._by_name.get(dimension)
        if spec is None:
            raise CloudError(
                f"unknown cube dimension {dimension!r}; "
                f"available: {sorted(self._by_name)}"
            )
        return spec

    def _memberships(
        self, dimension: str
    ) -> List[Dict[DocId, Tuple[Any, ...]]]:
        spec = self._spec(dimension)
        return [
            membership_for(shard, spec)
            for shard in self.service.sharded.shards
        ]

    def _version_vector(self) -> Tuple[Any, ...]:
        return tuple(
            database_version_vector(shard)
            for shard in self.service.sharded.shards
        )

    def _validate(self, coordinate: Coordinate) -> Coordinate:
        coordinate = tuple(
            (dimension, value) for dimension, value in coordinate
        )
        seen = set()
        for dimension, _value in coordinate:
            self._spec(dimension)
            if dimension in seen:
                raise CloudError(
                    f"dimension {dimension!r} fixed twice in {coordinate!r}"
                )
            seen.add(dimension)
        return coordinate

    def _filter_shards(
        self,
        shard_doc_ids: Tuple[Tuple[DocId, ...], ...],
        dimension: str,
        value: Any,
    ) -> Tuple[Tuple[DocId, ...], ...]:
        memberships = self._memberships(dimension)
        return tuple(
            tuple(
                doc_id
                for doc_id in doc_ids
                if value in membership.get(doc_id, ())
            )
            for doc_ids, membership in zip(shard_doc_ids, memberships)
        )

    # -- cell construction ---------------------------------------------------

    def cell(self, coordinate: Coordinate = ()) -> ServiceCubeCell:
        """The cell at ``coordinate``, cold-built (and memoized)."""
        coordinate = self._validate(coordinate)
        with self.service.rwlock.read_locked():
            key = (self._version_vector(), coordinate)
            cached = self._cells.get(key)
            if cached is not None:
                self.stats["memo_hits"] += 1
                return cached
            shard_docs = self.shard_base
            for dimension, value in coordinate:
                shard_docs = self._filter_shards(
                    shard_docs, dimension, value
                )
            cell = self._build_cell(coordinate, shard_docs, parents=None)
            self._cells[key] = cell
            self.stats["cold_builds"] += 1
            return cell

    def root(self) -> ServiceCubeCell:
        return self.cell(())

    def _build_cell(
        self,
        coordinate: Coordinate,
        shard_docs: Tuple[Tuple[DocId, ...], ...],
        parents: Optional[Tuple[Tuple[DocId, ...], ...]],
    ) -> ServiceCubeCell:
        result_size = sum(len(ids) for ids in shard_docs)
        with OBS.span(
            "service.cube.cell", {"coordinate": repr(coordinate)}
        ) as span:
            started = time.perf_counter()
            cloud = self.service._merged_cloud_for_docs(
                self.query,
                self.query_terms,
                list(shard_docs),
                result_size,
                parents=parents,
            )
            if OBS.enabled:
                span.set(docs=result_size, terms=len(cloud.terms))
                OBS.metrics.inc(
                    "service.cube.incremental_build"
                    if parents is not None
                    else "service.cube.cold_build"
                )
                OBS.metrics.observe(
                    "service.cube.cell.ms",
                    (time.perf_counter() - started) * 1000.0,
                )
        return ServiceCubeCell(
            coordinate=coordinate, shard_doc_ids=shard_docs, cloud=cloud
        )

    # -- navigation ----------------------------------------------------------

    def dimension_values(
        self, cell: ServiceCubeCell, dimension: str
    ) -> List[Any]:
        """The values ``dimension`` takes within ``cell`` (sorted globally)."""
        with self.service.rwlock.read_locked():
            memberships = self._memberships(dimension)
        values = set()
        for doc_ids, membership in zip(cell.shard_doc_ids, memberships):
            for doc_id in doc_ids:
                values.update(membership.get(doc_id, ()))
        return sorted(values)

    def slice(
        self, cell: ServiceCubeCell, dimension: str, value: Any
    ) -> ServiceCubeCell:
        """Fix ``dimension = value``; each shard narrows incrementally."""
        coordinate = self._validate(
            cell.coordinate + ((dimension, value),)
        )
        with self.service.rwlock.read_locked():
            key = (self._version_vector(), coordinate)
            cached = self._cells.get(key)
            if cached is not None:
                self.stats["memo_hits"] += 1
                return cached
            shard_docs = self._filter_shards(
                cell.shard_doc_ids, dimension, value
            )
            child = self._build_cell(
                coordinate, shard_docs, parents=cell.shard_doc_ids
            )
            self._cells[key] = child
            self.stats["incremental_builds"] += 1
            return child

    def drill_down(
        self, cell: ServiceCubeCell, dimension: str
    ) -> Dict[Any, ServiceCubeCell]:
        """Split ``cell`` along ``dimension``: one child per value."""
        return {
            value: self.slice(cell, dimension, value)
            for value in self.dimension_values(cell, dimension)
        }

    def roll_up(self, cell: ServiceCubeCell) -> ServiceCubeCell:
        """The parent cell (drop the last fixed dimension)."""
        if not cell.coordinate:
            raise CloudError("cannot roll up from the apex cell")
        return self.cell(cell.coordinate[:-1])
