"""The scatter-gather service coordinator.

One :class:`CourseRankService` fronts N shard-local :class:`CourseRank`
apps (see :mod:`repro.service.sharding`).  Reads scatter to every shard
and merge exactly:

* **Search** is two-phase distributed BM25: phase one gathers each
  shard's per-term document frequencies and field-length totals
  (:class:`repro.search.stats.CorpusStats` — all integer sums over
  disjoint document sets, so the merge is exact and order-independent);
  phase two scores each shard's candidates against the *merged* global
  statistics and k-way-merges the per-shard ranked lists under the same
  total-order sort key the unsharded engine uses.  The merged ranking is
  bit-identical to the unsharded build's.
* **Clouds** merge per-shard ``(occurrences, result_df)`` counters
  (dyadic field weights → exact float sums) plus per-shard corpus
  document frequencies, then score through the ordinary
  :class:`~repro.clouds.cloud.CloudBuilder` with the global corpus size.
  Bit-identical again.
* **Metrics** merge through :meth:`repro.obs.metrics.MetricsRegistry.merge`
  (associative by PR 5's equivalence tests).

Course-scoped operations (course page, comment, per-course recommend)
route to the single owning shard.  Concurrency control is a service-level
:class:`~repro.minidb.concurrency.RWLock` — many concurrent reads, writes
exclusive — on top of the per-shard database locks, plus an epoch-vector
response cache: answered ``(query → merged result + cloud)`` pairs are
keyed by the tuple of per-shard index epochs, so a write to one shard
invalidates exactly the cached responses that could observe it, by
construction rather than by bookkeeping.
"""

from __future__ import annotations

import datetime
import heapq
from collections import Counter
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.caching import LRUCache
from repro.clouds.cloud import DataCloud
from repro.errors import CloudError
from repro.courserank.accounts import User
from repro.courserank.app import CourseRank
from repro.courserank.models import Comment
from repro.minidb.catalog import Database
from repro.minidb.concurrency import RWLock
from repro.obs import OBS
from repro.search.engine import SearchResult, _tiebreak
from repro.search.stats import CorpusStats
from repro.service.sharding import ShardedUniversity

DocId = Any

_HIT_KEY = lambda hit: (-hit.score, _tiebreak(hit.doc_id))  # noqa: E731


@dataclass
class _MergedResponse:
    """One cached scatter-gather answer (immutable once cached)."""

    terms: List[str]
    phrases: List[List[str]]
    hits: Tuple[Any, ...]
    candidate_count: int
    scored_count: int
    cloud: DataCloud
    shard_doc_ids: Tuple[Tuple[DocId, ...], ...]


class CourseRankService:
    """A thread-safe, sharded CourseRank front end."""

    def __init__(
        self,
        database: Database,
        num_shards: int = 4,
        response_cache_size: int = 256,
    ) -> None:
        self.sharded = ShardedUniversity(database, num_shards)
        self.apps: List[CourseRank] = [
            CourseRank(shard) for shard in self.sharded.shards
        ]
        for app in self.apps:
            app.cloudsearch.build()
        self.rwlock = RWLock()
        # Coordinator response cache.  Keys embed the epoch vector (one
        # index epoch per shard), so any shard write rotates the key and
        # strands every response that predates it — no invalidation hooks.
        self._response_cache = LRUCache(maxsize=response_cache_size)
        # Recommendation memo, keyed by the owning shard's data/schema
        # versions: a write anywhere on the shard retires its entries.
        self._recommend_cache = LRUCache(maxsize=response_cache_size)
        # Union graph-ranking engine, built lazily on first graph
        # strategy / cloud-weighting request.
        self._graphrank = None

    @property
    def num_shards(self) -> int:
        return self.sharded.num_shards

    # -- epochs & caching ----------------------------------------------------

    def _epoch_vector(self) -> Tuple[int, ...]:
        return tuple(
            app.cloudsearch.engine.index.epoch for app in self.apps
        )

    def response_cache_info(self) -> Dict[str, int]:
        cache = self._response_cache
        return {"hits": cache.hits, "misses": cache.misses, "size": len(cache)}

    # -- scatter-gather search ----------------------------------------------

    def search(
        self, query: str, limit: Optional[int] = None
    ) -> Tuple[SearchResult, DataCloud]:
        """Search all shards; returns (merged result, merged cloud).

        The hit ranking, scores, and cloud are bit-identical to what the
        unsharded :class:`~repro.courserank.cloudsearch.CourseCloudSearch`
        produces over the union corpus.  As there, the cloud summarizes
        the *full* result set; ``limit`` truncates only the hit list.
        """
        with OBS.span("service.search", {"query": query}):
            with self.rwlock.read_locked():
                response = self._answer(query)
            result = self._result_from(query, response)
            if limit is not None:
                result.hits = result.hits[:limit]
            return result, self._copy_cloud(response.cloud)

    def count(self, query: str) -> int:
        """Total matching documents — the sum of disjoint per-shard counts."""
        with self.rwlock.read_locked():
            return sum(
                app.cloudsearch.count(query) for app in self.apps
            )

    def session(self, query: str) -> "ServiceSession":
        """A scatter-gather refinement session (mirrors RefinementSession)."""
        return ServiceSession(self, query)

    def cube(self, dimensions: Optional[Any] = None):
        """An OLAP cloud cube over the whole sharded corpus.

        Navigation scatter-gathers cell clouds exactly over shards — see
        :mod:`repro.service.cube`.
        """
        from repro.service.cube import ServiceCube

        with self.rwlock.read_locked():
            return ServiceCube(self, dimensions=dimensions)

    # -- merged answer construction -----------------------------------------

    def _answer(self, query: str) -> _MergedResponse:
        """The cached merged response for ``query`` (read lock held)."""
        key = (self._epoch_vector(), query)
        cached = self._response_cache.get(key)
        if cached is not None:
            return cached
        response = self._scatter_gather(query)
        self._response_cache.put(key, response)
        return response

    def _answer_narrowed(
        self, query: str, parent: _MergedResponse
    ) -> _MergedResponse:
        """Cached refine answer (read lock held).

        Refined responses depend on the parent result set as well as the
        query, so the key adds the parent's per-shard doc-id fingerprint
        — identical refinement walks (the common Zipfian-head case) hit.
        """
        key = (self._epoch_vector(), query, parent.shard_doc_ids)
        cached = self._response_cache.get(key)
        if cached is not None:
            return cached
        response = self._scatter_gather(
            query,
            within_per_shard=[set(ids) for ids in parent.shard_doc_ids],
            parents=parent.shard_doc_ids,
        )
        self._response_cache.put(key, response)
        return response

    def _scatter_gather(
        self,
        query: str,
        within_per_shard: Optional[List[Optional[set]]] = None,
        parents: Optional[Tuple[Tuple[DocId, ...], ...]] = None,
    ) -> _MergedResponse:
        engines = [app.cloudsearch.engine for app in self.apps]
        loose, phrases = engines[0].parse_query(query)
        all_terms = list(loose) + [
            term for phrase in phrases for term in phrase
        ]
        if not all_terms:
            empty_cloud = DataCloud(query=query, result_size=0, terms=[])
            return _MergedResponse(
                terms=[],
                phrases=[],
                hits=(),
                candidate_count=0,
                scored_count=0,
                cloud=empty_cloud,
                shard_doc_ids=tuple(() for _ in engines),
            )
        # Phase 1: merge global corpus statistics for the query terms.
        stats = CorpusStats.merged(
            CorpusStats.local(engine.index, all_terms) for engine in engines
        )
        # Phase 2: score every shard's candidates under the global stats,
        # then k-way merge the (already sorted) per-shard rankings.
        shard_results = []
        for index, engine in enumerate(engines):
            within = (
                within_per_shard[index]
                if within_per_shard is not None
                else None
            )
            shard_results.append(
                engine.search(
                    query, limit=None, within=within, corpus_stats=stats
                )
            )
        hits = tuple(
            heapq.merge(
                *(result.hits for result in shard_results), key=_HIT_KEY
            )
        )
        cloud = self._merged_cloud(
            query, all_terms, shard_results, len(hits), parents=parents
        )
        return _MergedResponse(
            terms=all_terms,
            phrases=phrases,
            hits=hits,
            candidate_count=sum(r.candidate_count for r in shard_results),
            scored_count=sum(r.scored_count for r in shard_results),
            cloud=cloud,
            shard_doc_ids=tuple(
                tuple(result.doc_ids()) for result in shard_results
            ),
        )

    def _merged_cloud(
        self,
        query: str,
        all_terms: List[str],
        shard_results: List[SearchResult],
        result_size: int,
        parents: Optional[Tuple[Tuple[DocId, ...], ...]] = None,
    ) -> DataCloud:
        """Merge per-shard term partials and score them once, globally."""
        return self._merged_cloud_for_docs(
            query,
            all_terms,
            [result.doc_ids() for result in shard_results],
            result_size,
            parents=parents,
        )

    def _merged_cloud_for_docs(
        self,
        query: str,
        all_terms: Optional[List[str]],
        per_shard_docs: List[Tuple[DocId, ...]],
        result_size: int,
        parents: Optional[Tuple[Tuple[DocId, ...], ...]] = None,
        builders: Optional[List[Any]] = None,
    ) -> DataCloud:
        """The doc-id-level merge: per-shard partials → one global cloud.

        ``parents`` (per-shard supersets) routes each shard's gather
        through the incremental subtract-dropped-docs path first — cube
        navigation hands each cell's parent here, so slicing scatter-
        gathers exactly as refinement does.  ``builders`` substitutes
        per-shard cloud builders (e.g. graph-weighted scoring variants);
        default is each shard's standard builder.
        """
        if builders is None:
            builders = [app.cloudsearch.builder for app in self.apps]
        occurrences: Counter = Counter()
        result_df: Counter = Counter()
        partials = []
        for index, (builder, doc_ids) in enumerate(
            zip(builders, per_shard_docs)
        ):
            source = builder.source
            if parents is not None:
                # Warm the shard's gather cache through the incremental
                # (subtract-the-dropped-docs) path; the partial below is
                # then a cache hit.
                source.gather_narrowed(parents[index], doc_ids)
            shard_occurrences, shard_df = source.partial_gather(doc_ids)
            occurrences.update(shard_occurrences)
            result_df.update(shard_df)
            partials.append(source)
        corpus_df: Counter = Counter()
        terms = occurrences.keys()
        for source in partials:
            corpus_df.update(source.corpus_document_frequencies(terms))
        corpus_size = sum(source.corpus_size for source in partials)
        from repro.clouds.scoring import TermStats

        merged_stats = [
            TermStats(
                term=term,
                occurrences=occurrences[term],
                result_df=result_df[term],
                corpus_df=corpus_df.get(term, result_df[term]),
            )
            for term in occurrences
        ]
        return builders[0].build_from_stats(
            merged_stats,
            result_size,
            query=query,
            query_terms=all_terms,
            corpus_size=corpus_size,
        )

    def _result_from(
        self, query: str, response: _MergedResponse
    ) -> SearchResult:
        """A fresh SearchResult over the cached immutable hit tuple."""
        return SearchResult(
            query=query,
            terms=list(response.terms),
            hits=list(response.hits),
            mode="all",
            phrases=[list(phrase) for phrase in response.phrases],
            candidate_count=response.candidate_count,
            scored_count=response.scored_count,
        )

    @staticmethod
    def _copy_cloud(cloud: DataCloud) -> DataCloud:
        """Clouds are cached; hand callers a private copy of the shell."""
        return DataCloud(
            query=cloud.query,
            result_size=cloud.result_size,
            terms=list(cloud.terms),
        )

    # -- routed single-shard operations -------------------------------------

    def _app_for_course(self, course_id: int) -> CourseRank:
        return self.apps[self.sharded.shard_of_course(course_id)]

    def course_page(
        self, course_id: int, viewer: Optional[User] = None
    ) -> Dict[str, Any]:
        with self.rwlock.read_locked():
            return self._app_for_course(course_id).course_page(
                course_id, viewer
            )

    @property
    def graphrank(self):
        """The union graph-ranking engine (merged per-shard adjacency)."""
        engine = self._graphrank
        if engine is None:
            from repro.service.graph import ShardedGraphRank

            engine = self._graphrank = ShardedGraphRank(self)
        return engine

    def recommend(self, name: str, **params: Any):
        """Run a FlexRecs strategy on the owning shard.

        Strategies keyed by ``course_id`` route to that course's shard
        (its enrollments, plans, and comments are co-located there);
        anything else runs on shard 0.  Unlike search/cloud/metrics, no
        cross-build equality is claimed for shard-local recommenders —
        **except** the graph strategies, which scatter-gather the
        per-shard adjacency layers into the union graph (an exact
        integer-sum merge, see :mod:`repro.service.graph`) and so answer
        bit-identically to an unsharded engine.
        """
        if name in ("graph_rank_courses", "similar_by_folkrank"):
            return self._graph_recommend(name, params)
        course_id = params.get("course_id")
        shard_index = (
            self.sharded.shard_of_course(course_id)
            if course_id is not None
            else 0
        )
        app = self.apps[shard_index]
        with self.rwlock.read_locked():
            key = self._recommend_key(shard_index, name, params)
            if key is not None:
                cached = self._recommend_cache.get(key)
                if cached is not None:
                    return cached
            recommendation = app.recommendations.run(name, **params)
            if key is not None:
                self._recommend_cache.put(key, recommendation)
            return recommendation

    def _graph_recommend(self, name: str, params: Dict[str, Any]):
        """Graph strategies over the merged union adjacency.

        The workflow is still built (and validated) by shard 0's
        :class:`~repro.courserank.recommendations.RecommendationService`,
        so parameter defaults cannot drift from the unsharded path; only
        ranking and row materialization are service-level — the ranking
        on the union graph, the course rows fetched from each course's
        owning shard.
        """
        from repro.core.workflow import Recommendation

        workflow = self.apps[0].recommendations.build(name, **params)
        node = workflow.root
        with self.rwlock.read_locked(), OBS.span(
            "service.graph.recommend", {"workflow": workflow.name}
        ):
            ranked = self.graphrank.rank_courses(
                node.preference,
                top_k=node.top_k,
                exclude_seed=node.exclude_seed,
                damping=node.damping,
                epsilon=node.epsilon,
                max_iters=node.max_iters,
                preference_weight=node.preference_weight,
            )
            schema = self.sharded.shards[0].table("Courses").schema
            columns = list(schema.column_names)
            key_index = next(
                index
                for index, column in enumerate(columns)
                if column.lower() == "courseid"
            )
            by_id: Dict[Any, Any] = {}
            scanned = set()
            rows = []
            for course_id, score in ranked:
                shard_index = self.sharded.course_shard.get(course_id)
                if shard_index is None:
                    continue
                if shard_index not in scanned:
                    scanned.add(shard_index)
                    table = self.sharded.shards[shard_index].table("Courses")
                    for raw in table.rows():
                        by_id[raw[key_index]] = raw
                course = by_id.get(course_id)
                if course is None:
                    continue
                row = dict(zip(columns, course))
                row[node.score_column] = score
                rows.append(row)
            return Recommendation(
                columns=columns + [node.score_column], rows=rows
            )

    def _recommend_key(
        self, shard_index: int, name: str, params: Dict[str, Any]
    ) -> Optional[Tuple[Any, ...]]:
        """Memo key for one shard-routed recommendation, or None.

        Embeds the shard database's schema epoch and every table's data
        version, so any mutation on the shard — not just ones the
        strategy happens to read — retires the memo.
        """
        database = self.sharded.shards[shard_index]
        versions = tuple(
            database.table(table_name).data_version
            for table_name in database.table_names()
        )
        try:
            frozen = tuple(sorted(params.items()))
            hash(frozen)
        except TypeError:
            return None
        return (shard_index, database.schema_epoch, versions, name, frozen)

    def comment_on_course(
        self,
        user: User,
        course_id: int,
        text: Optional[str],
        rating: Optional[float],
        day: Optional[datetime.date] = None,
    ) -> Comment:
        """Write path: comment + rate on the owning shard.

        Runs under the service write lock — the shard's index epoch bumps
        when the course document refreshes, which retires every cached
        response whose epoch vector predates the write.
        """
        with self.rwlock.write_locked():
            return self._app_for_course(course_id).comment_on_course(
                user, course_id, text, rating, day=day
            )

    # -- observability -------------------------------------------------------

    def observability(self) -> Dict[str, Any]:
        """Process-wide OBS snapshot plus service/shard cache counters."""
        snapshot = OBS.snapshot()
        snapshot["service"] = {
            "shards": self.num_shards,
            "epoch_vector": list(self._epoch_vector()),
            "response_cache": self.response_cache_info(),
            "course_counts": self.sharded.course_counts(),
            "shard_search_caches": [
                app.cloudsearch.cache_info() for app in self.apps
            ],
        }
        return snapshot


class ServiceSession:
    """Scatter-gather twin of :class:`repro.clouds.refinement.RefinementSession`.

    Same API and same query-building rules (multi-word cloud terms refine
    as quoted phrases), so a session over the service walks through
    bit-identical queries, results, and clouds as one over the unsharded
    engine — each refine narrows *within each shard's* previous result
    set, which partitions the global ``within`` set exactly.
    """

    def __init__(self, service: CourseRankService, query: str) -> None:
        self.service = service
        self._steps: List[_SessionStep] = []
        self._push(query)

    # -- state ---------------------------------------------------------------

    @property
    def current(self) -> "_SessionStep":
        return self._steps[-1]

    @property
    def query(self) -> str:
        return self.current.query

    @property
    def result(self) -> SearchResult:
        return self.current.result

    @property
    def cloud(self) -> DataCloud:
        return self.current.cloud

    @property
    def depth(self) -> int:
        return len(self._steps) - 1

    def history(self) -> List[str]:
        return [step.query for step in self._steps]

    # -- interaction ---------------------------------------------------------

    def refine(self, term: str) -> "_SessionStep":
        term = term.strip()
        if not term:
            raise CloudError("refinement term must be non-empty")
        if " " in term and not term.startswith('"'):
            term = f'"{term}"'
        new_query = f"{self.query} {term}".strip()
        return self._push(new_query, narrow=True)

    def back(self) -> "_SessionStep":
        if len(self._steps) == 1:
            raise CloudError("already at the initial query")
        self._steps.pop()
        return self.current

    def reset(self, query: str) -> "_SessionStep":
        self._steps.clear()
        return self._push(query)

    def cube(self, dimensions: Optional[Any] = None):
        """A cloud cube rooted at the current result set.

        The sharded twin of ``RefinementSession.cube()``: cells break the
        session's hits down along course dimensions, each cell merged
        over shards through the coordinator.
        """
        from repro.service.cube import ServiceCube

        response = self.current.response
        with self.service.rwlock.read_locked():
            return ServiceCube(
                self.service,
                shard_base=response.shard_doc_ids,
                dimensions=dimensions,
                query=self.query,
                query_terms=response.terms,
            )

    # -- internals -----------------------------------------------------------

    def _push(self, query: str, narrow: bool = False) -> "_SessionStep":
        service = self.service
        with service.rwlock.read_locked():
            if not narrow:
                response = service._answer(query)
            else:
                parent = self.current.response
                response = service._answer_narrowed(query, parent)
        step = _SessionStep(
            query=query,
            result=service._result_from(query, response),
            cloud=service._copy_cloud(response.cloud),
            response=response,
        )
        self._steps.append(step)
        return step


@dataclass
class _SessionStep:
    """One session state, with the raw merged response for narrowing."""

    query: str
    result: SearchResult
    cloud: DataCloud
    response: _MergedResponse

    @property
    def result_size(self) -> int:
        return len(self.result)
