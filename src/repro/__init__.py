"""Reproduction of "Social Systems: Can We Do More Than Just Poke
Friends?" (Koutrika et al., CIDR 2009) — the CourseRank system.

Packages:

* :mod:`repro.minidb`     — in-memory relational engine with a SQL front end;
* :mod:`repro.search`     — full-text search over multi-relation entities;
* :mod:`repro.clouds`     — Data Clouds (Section 3.1);
* :mod:`repro.core`       — FlexRecs workflows (Section 3.2, the primary
  contribution), with direct and compiled-to-SQL execution paths;
* :mod:`repro.courserank` — the assembled CourseRank application;
* :mod:`repro.datagen`    — deterministic synthetic university data;
* :mod:`repro.evalkit`    — experiment reports and metrics.

Quick start::

    from repro.datagen import generate_university
    from repro.courserank import CourseRank

    app = CourseRank(generate_university(scale="small", seed=7))
    results, cloud = app.search_courses("american")
    recs = app.recommendations.courses_for_student(suid=1, top_k=10)
"""

__version__ = "1.0.0"

from repro import errors

__all__ = ["errors", "__version__"]
