"""Exception hierarchy shared by every subsystem in the reproduction.

Each substrate raises a subclass of :class:`ReproError`, so applications can
catch one base class at the facade boundary while tests can assert on the
precise failure mode.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class MiniDBError(ReproError):
    """Base class for relational-substrate errors."""


class SchemaError(MiniDBError):
    """A table/column definition is invalid or violated."""


class TypeMismatchError(MiniDBError):
    """A value does not conform to its declared column type."""


class IntegrityError(MiniDBError):
    """A key, uniqueness, not-null, or foreign-key constraint was violated."""


class UnknownTableError(MiniDBError):
    """A query referenced a table that does not exist in the catalog."""


class UnknownColumnError(MiniDBError):
    """A query referenced a column that does not exist."""


class AmbiguousColumnError(MiniDBError):
    """An unqualified column name matched more than one input relation."""


class SQLSyntaxError(MiniDBError):
    """The SQL text could not be tokenized or parsed."""


class PlannerError(MiniDBError):
    """A parsed statement could not be turned into an executable plan."""


class ExecutionError(MiniDBError):
    """A runtime failure while evaluating a plan (e.g. divide by zero)."""


class TransactionError(MiniDBError):
    """Invalid transaction state transition (commit without begin, ...)."""


class SearchError(ReproError):
    """Base class for full-text search errors."""


class CloudError(ReproError):
    """Base class for data-cloud errors."""


class GraphRankError(ReproError):
    """Base class for tripartite graph-ranking errors."""


class FlexRecsError(ReproError):
    """Base class for FlexRecs workflow errors."""


class WorkflowValidationError(FlexRecsError):
    """A workflow DAG is structurally invalid (cycle, dangling input, ...)."""


class CompilationError(FlexRecsError):
    """A workflow could not be compiled to SQL."""


class BackendError(ReproError):
    """Base class for execution-backend (driver/dialect) errors."""


class BackendCapabilityError(BackendError):
    """A workflow needs a feature the target backend's dialect lacks."""


class CourseRankError(ReproError):
    """Base class for application-level errors."""


class AuthorizationError(CourseRankError):
    """A user attempted an action their constituency does not permit."""


class PrivacyError(CourseRankError):
    """A request would disclose data protected by a privacy policy."""


class PlannerConflictError(CourseRankError):
    """A schedule operation would create an unresolvable conflict."""


class RequirementError(CourseRankError):
    """A program-requirement definition is invalid."""


class DataGenError(ReproError):
    """The synthetic data generator was given inconsistent parameters."""
