"""Full-text search substrate.

CourseRank's keyword search runs over *search entities that span multiple
relations* (Section 3.1 of the paper): a course entity folds in its title,
description, student comments, instructor names, and so on, each with its
own weight.  This package provides:

* :mod:`tokenizer` — lowercasing word tokenizer with a stopword list;
* :mod:`stemmer` — a Porter stemmer (classic 1980 algorithm);
* :mod:`inverted_index` — positional-free inverted index with per-field
  term frequencies plus a forward index (used by the data-cloud scorers);
* :mod:`entity` — declarative definitions of multi-relation search
  entities (field SQL + weight);
* :mod:`engine` — the query engine: conjunctive/disjunctive matching with
  weighted TF-IDF or BM25F-style ranking;
* :mod:`phrases` — bigram phrase extraction feeding data-cloud terms.
"""

from repro.search.engine import SearchEngine, SearchHit, SearchResult
from repro.search.entity import EntityDefinition, FieldSpec
from repro.search.inverted_index import InvertedIndex
from repro.search.snippets import annotate_hits, best_snippet
from repro.search.stemmer import porter_stem
from repro.search.tokenizer import STOPWORDS, Tokenizer

__all__ = [
    "SearchEngine",
    "SearchHit",
    "SearchResult",
    "EntityDefinition",
    "FieldSpec",
    "InvertedIndex",
    "annotate_hits",
    "best_snippet",
    "porter_stem",
    "STOPWORDS",
    "Tokenizer",
]
