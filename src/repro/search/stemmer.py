"""The Porter stemming algorithm (Porter, 1980), implemented from the paper.

Only lowercase ASCII words are expected (the tokenizer guarantees this).
Words of length <= 2 are returned unchanged, per the original definition.

The implementation follows the step structure of the original article:
1a/1b/1c (plurals and -ed/-ing), 2 and 3 (suffix mapping under measure
conditions), 4 (suffix deletion), 5a/5b (final -e and -ll cleanup).
"""

from __future__ import annotations

from functools import lru_cache

_VOWELS = set("aeiou")


def _is_consonant(word: str, index: int) -> bool:
    char = word[index]
    if char in _VOWELS:
        return False
    if char == "y":
        return index == 0 or not _is_consonant(word, index - 1)
    return True


def _measure(stem: str) -> int:
    """The number of VC sequences in the stem (the 'm' of the paper)."""
    forms = []
    for index in range(len(stem)):
        if _is_consonant(stem, index):
            if not forms or forms[-1] != "c":
                forms.append("c")
        else:
            if not forms or forms[-1] != "v":
                forms.append("v")
    return "".join(forms).count("vc")


def _contains_vowel(stem: str) -> bool:
    return any(not _is_consonant(stem, index) for index in range(len(stem)))


def _ends_double_consonant(word: str) -> bool:
    return (
        len(word) >= 2
        and word[-1] == word[-2]
        and _is_consonant(word, len(word) - 1)
    )


def _ends_cvc(word: str) -> bool:
    """*o of the paper: consonant-vowel-consonant, last not w/x/y."""
    if len(word) < 3:
        return False
    if not (
        _is_consonant(word, len(word) - 3)
        and not _is_consonant(word, len(word) - 2)
        and _is_consonant(word, len(word) - 1)
    ):
        return False
    return word[-1] not in "wxy"


def _step_1a(word: str) -> str:
    if word.endswith("sses"):
        return word[:-2]
    if word.endswith("ies"):
        return word[:-2]
    if word.endswith("ss"):
        return word
    if word.endswith("s"):
        return word[:-1]
    return word


def _step_1b(word: str) -> str:
    if word.endswith("eed"):
        stem = word[:-3]
        if _measure(stem) > 0:
            return word[:-1]
        return word
    flag = False
    if word.endswith("ed"):
        stem = word[:-2]
        if _contains_vowel(stem):
            word = stem
            flag = True
    elif word.endswith("ing"):
        stem = word[:-3]
        if _contains_vowel(stem):
            word = stem
            flag = True
    if flag:
        if word.endswith(("at", "bl", "iz")):
            return word + "e"
        if _ends_double_consonant(word) and not word.endswith(("l", "s", "z")):
            return word[:-1]
        if _measure(word) == 1 and _ends_cvc(word):
            return word + "e"
    return word


def _step_1c(word: str) -> str:
    if word.endswith("y") and _contains_vowel(word[:-1]):
        return word[:-1] + "i"
    return word


_STEP2 = [
    ("ational", "ate"), ("tional", "tion"), ("enci", "ence"), ("anci", "ance"),
    ("izer", "ize"), ("abli", "able"), ("alli", "al"), ("entli", "ent"),
    ("eli", "e"), ("ousli", "ous"), ("ization", "ize"), ("ation", "ate"),
    ("ator", "ate"), ("alism", "al"), ("iveness", "ive"), ("fulness", "ful"),
    ("ousness", "ous"), ("aliti", "al"), ("iviti", "ive"), ("biliti", "ble"),
]

_STEP3 = [
    ("icate", "ic"), ("ative", ""), ("alize", "al"), ("iciti", "ic"),
    ("ical", "ic"), ("ful", ""), ("ness", ""),
]

_STEP4 = [
    "al", "ance", "ence", "er", "ic", "able", "ible", "ant", "ement",
    "ment", "ent", "ou", "ism", "ate", "iti", "ous", "ive", "ize",
]

# Steps 2/3/4 try longer suffixes first; the orderings are fixed, so sort
# once at import instead of on every call.
_STEP2_ORDERED = sorted(_STEP2, key=lambda rule: -len(rule[0]))
_STEP3_ORDERED = sorted(_STEP3, key=lambda rule: -len(rule[0]))
_STEP4_ORDERED = sorted(_STEP4, key=len, reverse=True)


def _map_suffix(word: str, rules, min_measure: int) -> str:
    for suffix, replacement in rules:
        if word.endswith(suffix):
            stem = word[: -len(suffix)]
            if _measure(stem) > min_measure - 1:
                return stem + replacement
            return word
    return word


def _step_5a(word: str) -> str:
    if word.endswith("e"):
        stem = word[:-1]
        measure = _measure(stem)
        if measure > 1:
            return stem
        if measure == 1 and not _ends_cvc(stem):
            return stem
    return word


def _step_5b(word: str) -> str:
    if _measure(word) > 1 and word.endswith("ll"):
        return word[:-1]
    return word


@lru_cache(maxsize=8192)
def porter_stem(word: str) -> str:
    """Stem one lowercase word (memoized: corpora repeat words heavily).

    >>> porter_stem('caresses')
    'caress'
    >>> porter_stem('relational')
    'relat'
    """
    if len(word) <= 2:
        return word
    word = _step_1a(word)
    word = _step_1b(word)
    word = _step_1c(word)
    word = _map_suffix(word, _STEP2_ORDERED, 1)
    word = _map_suffix(word, _STEP3_ORDERED, 1)
    word = _step4_ordered(word)
    word = _step_5a(word)
    word = _step_5b(word)
    return word


def _step4_ordered(word: str) -> str:
    """Step 4 with longest-suffix-first matching."""
    for suffix in _STEP4_ORDERED:
        if word.endswith(suffix):
            stem = word[: -len(suffix)]
            if _measure(stem) > 1:
                return stem
            return word
    if word.endswith("ion"):
        stem = word[:-3]
        if stem and stem[-1] in "st" and _measure(stem) > 1:
            return stem
    return word
