"""Positional inverted index with per-field granularity.

Documents are identified by an application-chosen hashable id (CourseRank
uses the course primary key).  Each document is a mapping of *field name*
to a token list; the index records, per term, the documents, fields, and
token positions it occurs at.  Positions enable true phrase matching —
the multi-word cloud terms of the paper's Figure 3 ("Latin American",
"African American") refine as phrases, not as independent words.

A forward index (doc → field → term counts) is kept alongside — the
data-cloud scorers iterate it to gather term statistics over a result
set without re-tokenizing source text.

Statistics are maintained **incrementally**: per-field token totals,
per-field holder counts, and per-(doc, field) lengths are updated on
every add/remove, so ``average_field_length``, ``field_length``,
``document_frequency`` and ``idf`` are all O(1) at query time.  An
**epoch** counter is bumped on every mutation; derived artifacts (the
BM25 length-normalizer tables here, the query-result and cloud caches in
the layers above) key themselves to the epoch and rebuild lazily when it
moves — the same version-counter invalidation discipline the minidb plan
cache uses.
"""

from __future__ import annotations

import math
from collections import Counter
from typing import Any, Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Set, Tuple

from repro.errors import SearchError

DocId = Any

#: per-document postings entry: field name -> sorted token positions
FieldPositions = Dict[str, List[int]]


class InvertedIndex:
    """Term → postings with field-level positions."""

    def __init__(self) -> None:
        # term -> doc_id -> field -> [positions]
        self._postings: Dict[str, Dict[DocId, FieldPositions]] = {}
        # doc_id -> field -> Counter(term)
        self._forward: Dict[DocId, Dict[str, Counter]] = {}
        # field -> total token count (entries removed when they reach 0)
        self._field_tokens: Dict[str, int] = {}
        # field -> number of documents holding the field (incremental)
        self._field_holders: Dict[str, int] = {}
        # doc_id -> field -> token count (O(1) field_length)
        self._field_lengths: Dict[DocId, Dict[str, int]] = {}
        # Mutation counter; bumped by add/remove/clear.  Derived caches at
        # every layer key themselves to this value.
        self._epoch = 0
        # (field, b) -> (epoch, {doc_id: 1 / bm25-length-normalizer})
        self._norm_tables: Dict[Tuple[str, float], Tuple[int, Dict[DocId, float]]] = {}

    # -- building ----------------------------------------------------------

    def add_document(self, doc_id: DocId, fields: Mapping[str, List[str]]) -> None:
        """Index one document; re-adding an existing id replaces it."""
        self._add(doc_id, fields)
        self._epoch += 1

    def add_documents(
        self, documents: Mapping[DocId, Mapping[str, List[str]]]
    ) -> int:
        """Batch-index many documents with a single epoch bump.

        Equivalent to calling :meth:`add_document` per entry, but derived
        caches (norm tables, result caches) are invalidated once instead
        of per document.  Returns the number of documents indexed.
        """
        count = 0
        for doc_id, fields in documents.items():
            self._add(doc_id, fields)
            count += 1
        if count:
            self._epoch += 1
        return count

    def _add(self, doc_id: DocId, fields: Mapping[str, List[str]]) -> None:
        if doc_id in self._forward:
            self._remove(doc_id)
        forward: Dict[str, Counter] = {}
        lengths: Dict[str, int] = {}
        for field, tokens in fields.items():
            if not tokens:
                continue
            counts = Counter(tokens)
            forward[field] = counts
            lengths[field] = len(tokens)
            self._field_tokens[field] = (
                self._field_tokens.get(field, 0) + len(tokens)
            )
            self._field_holders[field] = self._field_holders.get(field, 0) + 1
            for position, term in enumerate(tokens):
                by_doc = self._postings.setdefault(term, {})
                by_doc.setdefault(doc_id, {}).setdefault(field, []).append(
                    position
                )
        self._forward[doc_id] = forward
        self._field_lengths[doc_id] = lengths

    def remove_document(self, doc_id: DocId) -> None:
        self._remove(doc_id)
        self._epoch += 1

    def _remove(self, doc_id: DocId) -> None:
        forward = self._forward.pop(doc_id, None)
        if forward is None:
            raise SearchError(f"document {doc_id!r} is not indexed")
        self._field_lengths.pop(doc_id, None)
        for field, counts in forward.items():
            remaining = self._field_tokens[field] - sum(counts.values())
            if remaining:
                self._field_tokens[field] = remaining
            else:
                # Zeroed entries must not linger: a later holder-count of 0
                # with a stale token total would corrupt average lengths.
                del self._field_tokens[field]
            holders = self._field_holders[field] - 1
            if holders:
                self._field_holders[field] = holders
            else:
                del self._field_holders[field]
            for term in counts:
                by_doc = self._postings.get(term)
                if by_doc is None:
                    continue
                entry = by_doc.get(doc_id)
                if entry is not None:
                    entry.pop(field, None)
                    if not entry:
                        del by_doc[doc_id]
                if not by_doc:
                    del self._postings[term]

    def clear(self) -> None:
        self._postings.clear()
        self._forward.clear()
        self._field_tokens.clear()
        self._field_holders.clear()
        self._field_lengths.clear()
        self._norm_tables.clear()
        self._epoch += 1

    # -- statistics -----------------------------------------------------------

    @property
    def epoch(self) -> int:
        """Mutation counter; changes whenever indexed content changes."""
        return self._epoch

    @property
    def document_count(self) -> int:
        return len(self._forward)

    @property
    def vocabulary_size(self) -> int:
        return len(self._postings)

    def document_frequency(self, term: str) -> int:
        return len(self._postings.get(term, ()))

    def idf(self, term: str) -> float:
        """Smoothed inverse document frequency (never negative)."""
        df = self.document_frequency(term)
        n = self.document_count
        return math.log(1.0 + (n - df + 0.5) / (df + 0.5)) if n else 0.0

    def average_field_length(self, field: str) -> float:
        total = self._field_tokens.get(field, 0)
        if not total:
            return 0.0
        holders = self._field_holders.get(field, 0)
        return total / holders if holders else 0.0

    def field_holder_count(self, field: str) -> int:
        """Number of documents holding a non-empty ``field``."""
        return self._field_holders.get(field, 0)

    def field_token_counts(self) -> Dict[str, int]:
        """Per-field total token counts (scatter-gather stats export)."""
        return dict(self._field_tokens)

    def field_holder_counts(self) -> Dict[str, int]:
        """Per-field holder counts (scatter-gather stats export)."""
        return dict(self._field_holders)

    def field_length(self, doc_id: DocId, field: str) -> int:
        lengths = self._field_lengths.get(doc_id)
        if not lengths:
            return 0
        return lengths.get(field, 0)

    def document_length(self, doc_id: DocId) -> int:
        return sum(self._field_lengths.get(doc_id, {}).values())

    def length_normalizers(
        self, field: str, b: float, average: Optional[float] = None
    ) -> Dict[DocId, float]:
        """Per-document *inverse* BM25 length normalizers for ``field``.

        Returns ``{doc_id: 1 / (1 - b + b * length/average)}`` for every
        document holding the field.  The table is rebuilt lazily when the
        index epoch moves and cached per ``(field, b)``, so the scoring
        inner loop pays one dict lookup per (doc, field) instead of
        recomputing averages and lengths per candidate.

        ``average`` overrides the field's local average length — the
        scatter-gather path passes the *merged corpus* average so a
        shard scores its documents exactly as the unsharded build would.
        Overridden tables are cached under their own key (the override is
        part of it), so local and global tables never alias.
        """
        key = (field, b) if average is None else (field, b, average)
        cached = self._norm_tables.get(key)
        if cached is not None and cached[0] == self._epoch:
            return cached[1]
        table: Dict[DocId, float] = {}
        if average is None:
            average = self.average_field_length(field)
        if average:
            base = 1.0 - b
            scale = b / average
            for doc_id, lengths in self._field_lengths.items():
                length = lengths.get(field)
                if length:
                    table[doc_id] = 1.0 / (base + scale * length)
        self._norm_tables[key] = (self._epoch, table)
        return table

    def invalidate_caches(self) -> None:
        """Drop lazily built derived tables (benchmarks use this for
        cold-path measurements; correctness never requires it)."""
        self._norm_tables.clear()

    # -- access -------------------------------------------------------------

    def postings(self, term: str) -> Dict[DocId, Dict[str, int]]:
        """Documents containing ``term`` with per-field term frequencies."""
        return {
            doc_id: {field: len(positions) for field, positions in entry.items()}
            for doc_id, entry in self._postings.get(term, {}).items()
        }

    def positional_postings(self, term: str) -> Dict[DocId, FieldPositions]:
        """Documents containing ``term`` with per-field position lists."""
        return self._postings.get(term, {})

    def matching_documents(self, term: str) -> Set[DocId]:
        return set(self._postings.get(term, ()))

    def has_document(self, doc_id: DocId) -> bool:
        return doc_id in self._forward

    def document_ids(self) -> Iterator[DocId]:
        return iter(self._forward)

    def document_terms(self, doc_id: DocId) -> Dict[str, Counter]:
        """Forward-index entry: field → Counter(term)."""
        forward = self._forward.get(doc_id)
        if forward is None:
            raise SearchError(f"document {doc_id!r} is not indexed")
        return forward

    def term_frequency(self, doc_id: DocId, term: str) -> int:
        """Total tf of ``term`` in the document, across fields."""
        by_doc = self._postings.get(term, {})
        entry = by_doc.get(doc_id)
        if not entry:
            return 0
        return sum(len(positions) for positions in entry.values())

    def terms(self) -> Iterator[str]:
        return iter(self._postings)

    def collection_frequency(self, term: str) -> int:
        """Total occurrences of ``term`` across the whole collection."""
        by_doc = self._postings.get(term, {})
        return sum(
            sum(len(positions) for positions in entry.values())
            for entry in by_doc.values()
        )

    # -- phrases --------------------------------------------------------------

    def phrase_match(self, doc_id: DocId, terms: Sequence[str]) -> bool:
        """True when ``terms`` occur consecutively in some field.

        Positions are indices into the *filtered* token stream, so
        phrases are stopword-insensitive ("war peace" matches a document
        saying "war and peace") — the same convention the cloud's bigram
        extractor uses for its displayed phrases.
        """
        if not terms:
            return False
        if len(terms) == 1:
            entry = self._postings.get(terms[0], {})
            return doc_id in entry
        entries = []
        for term in terms:
            entry = self._postings.get(term, {}).get(doc_id)
            if not entry:
                return False
            entries.append(entry)
        fields = set(entries[0])
        for entry in entries[1:]:
            fields &= set(entry)
        for field in fields:
            starts = set(entries[0][field])
            for offset, entry in enumerate(entries[1:], start=1):
                starts &= {
                    position - offset for position in entry[field]
                }
                if not starts:
                    break
            if starts:
                return True
        return False

    def phrase_documents(self, terms: Sequence[str]) -> Set[DocId]:
        """All documents where ``terms`` occur as a phrase."""
        if not terms:
            return set()
        candidates = self.matching_documents(terms[0])
        for term in terms[1:]:
            candidates &= self.matching_documents(term)
            if not candidates:
                return set()
        return {
            doc_id
            for doc_id in candidates
            if self.phrase_match(doc_id, terms)
        }
