"""Positional inverted index with per-field granularity.

Documents are identified by an application-chosen hashable id (CourseRank
uses the course primary key).  Each document is a mapping of *field name*
to a token list; the index records, per term, the documents, fields, and
token positions it occurs at.  Positions enable true phrase matching —
the multi-word cloud terms of the paper's Figure 3 ("Latin American",
"African American") refine as phrases, not as independent words.

A forward index (doc → field → term counts) is kept alongside — the
data-cloud scorers iterate it to gather term statistics over a result
set without re-tokenizing source text.
"""

from __future__ import annotations

import math
from collections import Counter
from typing import Any, Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Set, Tuple

from repro.errors import SearchError

DocId = Any

#: per-document postings entry: field name -> sorted token positions
FieldPositions = Dict[str, List[int]]


class InvertedIndex:
    """Term → postings with field-level positions."""

    def __init__(self) -> None:
        # term -> doc_id -> field -> [positions]
        self._postings: Dict[str, Dict[DocId, FieldPositions]] = {}
        # doc_id -> field -> Counter(term)
        self._forward: Dict[DocId, Dict[str, Counter]] = {}
        # field -> total token count (for average field length)
        self._field_tokens: Dict[str, int] = {}

    # -- building ----------------------------------------------------------

    def add_document(self, doc_id: DocId, fields: Mapping[str, List[str]]) -> None:
        """Index one document; re-adding an existing id replaces it."""
        if doc_id in self._forward:
            self.remove_document(doc_id)
        forward: Dict[str, Counter] = {}
        for field, tokens in fields.items():
            if not tokens:
                continue
            counts = Counter(tokens)
            forward[field] = counts
            self._field_tokens[field] = (
                self._field_tokens.get(field, 0) + len(tokens)
            )
            for position, term in enumerate(tokens):
                by_doc = self._postings.setdefault(term, {})
                by_doc.setdefault(doc_id, {}).setdefault(field, []).append(
                    position
                )
        self._forward[doc_id] = forward

    def remove_document(self, doc_id: DocId) -> None:
        forward = self._forward.pop(doc_id, None)
        if forward is None:
            raise SearchError(f"document {doc_id!r} is not indexed")
        for field, counts in forward.items():
            self._field_tokens[field] -= sum(counts.values())
            for term in counts:
                by_doc = self._postings.get(term)
                if by_doc is None:
                    continue
                entry = by_doc.get(doc_id)
                if entry is not None:
                    entry.pop(field, None)
                    if not entry:
                        del by_doc[doc_id]
                if not by_doc:
                    del self._postings[term]

    def clear(self) -> None:
        self._postings.clear()
        self._forward.clear()
        self._field_tokens.clear()

    # -- statistics -----------------------------------------------------------

    @property
    def document_count(self) -> int:
        return len(self._forward)

    @property
    def vocabulary_size(self) -> int:
        return len(self._postings)

    def document_frequency(self, term: str) -> int:
        return len(self._postings.get(term, ()))

    def idf(self, term: str) -> float:
        """Smoothed inverse document frequency (never negative)."""
        df = self.document_frequency(term)
        n = self.document_count
        return math.log(1.0 + (n - df + 0.5) / (df + 0.5)) if n else 0.0

    def average_field_length(self, field: str) -> float:
        total = self._field_tokens.get(field, 0)
        if not total:
            return 0.0
        holders = sum(1 for forward in self._forward.values() if field in forward)
        return total / holders if holders else 0.0

    def field_length(self, doc_id: DocId, field: str) -> int:
        forward = self._forward.get(doc_id)
        if forward is None or field not in forward:
            return 0
        return sum(forward[field].values())

    def document_length(self, doc_id: DocId) -> int:
        forward = self._forward.get(doc_id, {})
        return sum(sum(counts.values()) for counts in forward.values())

    # -- access -------------------------------------------------------------

    def postings(self, term: str) -> Dict[DocId, Dict[str, int]]:
        """Documents containing ``term`` with per-field term frequencies."""
        return {
            doc_id: {field: len(positions) for field, positions in entry.items()}
            for doc_id, entry in self._postings.get(term, {}).items()
        }

    def positional_postings(self, term: str) -> Dict[DocId, FieldPositions]:
        """Documents containing ``term`` with per-field position lists."""
        return self._postings.get(term, {})

    def matching_documents(self, term: str) -> Set[DocId]:
        return set(self._postings.get(term, ()))

    def has_document(self, doc_id: DocId) -> bool:
        return doc_id in self._forward

    def document_ids(self) -> Iterator[DocId]:
        return iter(self._forward)

    def document_terms(self, doc_id: DocId) -> Dict[str, Counter]:
        """Forward-index entry: field → Counter(term)."""
        forward = self._forward.get(doc_id)
        if forward is None:
            raise SearchError(f"document {doc_id!r} is not indexed")
        return forward

    def term_frequency(self, doc_id: DocId, term: str) -> int:
        """Total tf of ``term`` in the document, across fields."""
        by_doc = self._postings.get(term, {})
        entry = by_doc.get(doc_id)
        if not entry:
            return 0
        return sum(len(positions) for positions in entry.values())

    def terms(self) -> Iterator[str]:
        return iter(self._postings)

    def collection_frequency(self, term: str) -> int:
        """Total occurrences of ``term`` across the whole collection."""
        by_doc = self._postings.get(term, {})
        return sum(
            sum(len(positions) for positions in entry.values())
            for entry in by_doc.values()
        )

    # -- phrases --------------------------------------------------------------

    def phrase_match(self, doc_id: DocId, terms: Sequence[str]) -> bool:
        """True when ``terms`` occur consecutively in some field.

        Positions are indices into the *filtered* token stream, so
        phrases are stopword-insensitive ("war peace" matches a document
        saying "war and peace") — the same convention the cloud's bigram
        extractor uses for its displayed phrases.
        """
        if not terms:
            return False
        if len(terms) == 1:
            entry = self._postings.get(terms[0], {})
            return doc_id in entry
        entries = []
        for term in terms:
            entry = self._postings.get(term, {}).get(doc_id)
            if not entry:
                return False
            entries.append(entry)
        fields = set(entries[0])
        for entry in entries[1:]:
            fields &= set(entry)
        for field in fields:
            starts = set(entries[0][field])
            for offset, entry in enumerate(entries[1:], start=1):
                starts &= {
                    position - offset for position in entry[field]
                }
                if not starts:
                    break
            if starts:
                return True
        return False

    def phrase_documents(self, terms: Sequence[str]) -> Set[DocId]:
        """All documents where ``terms`` occur as a phrase."""
        if not terms:
            return set()
        candidates = self.matching_documents(terms[0])
        for term in terms[1:]:
            candidates &= self.matching_documents(term)
            if not candidates:
                return set()
        return {
            doc_id
            for doc_id in candidates
            if self.phrase_match(doc_id, terms)
        }
