"""The search engine: indexing entities and answering keyword queries.

Matching is **conjunctive** by default (every query term must appear
somewhere in the entity), which is what produces the paper's refinement
behaviour: "American" matches 1160 courses, adding "African" narrows to
123.  Disjunctive ("any") matching is available for recall-oriented uses.

Queries support **quoted phrases**: ``"african american" history``
requires the two quoted words to appear consecutively (in the same
field), which is how clicking a multi-word cloud term refines.

Two rankers are provided:

* ``tfidf`` — weighted TF-IDF: ``sum_t idf(t) * sum_f w_f * (1+log tf)``;
* ``bm25``  — a BM25F-style variant with per-field length normalization.

Both respect the entity definition's field weights, answering Section
3.1's ranking question (title hits beat comment hits).
"""

from __future__ import annotations

import math
import re
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.errors import SearchError
from repro.minidb.catalog import Database
from repro.search.entity import EntityDefinition
from repro.search.inverted_index import InvertedIndex
from repro.search.tokenizer import Tokenizer

DocId = Any

_QUOTED = re.compile(r'"([^"]*)"')


@dataclass(frozen=True)
class SearchHit:
    """One ranked entity."""

    doc_id: DocId
    score: float


@dataclass
class SearchResult:
    """The outcome of one query: ranked hits plus query metadata."""

    query: str
    terms: List[str]  # all stemmed terms, phrase members included
    hits: List[SearchHit]
    mode: str
    phrases: List[List[str]] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.hits)

    def doc_ids(self) -> List[DocId]:
        return [hit.doc_id for hit in self.hits]

    def doc_id_set(self) -> Set[DocId]:
        return {hit.doc_id for hit in self.hits}

    def top(self, k: int) -> List[SearchHit]:
        return self.hits[:k]


class SearchEngine:
    """Indexes one entity type from a database and answers queries."""

    def __init__(
        self,
        database: Database,
        entity: EntityDefinition,
        tokenizer: Optional[Tokenizer] = None,
        ranker: str = "bm25",
        bm25_k1: float = 1.4,
        bm25_b: float = 0.6,
    ) -> None:
        if ranker not in ("bm25", "tfidf"):
            raise SearchError(f"unknown ranker {ranker!r}")
        self.database = database
        self.entity = entity
        self.tokenizer = tokenizer or Tokenizer()
        self.ranker = ranker
        self.bm25_k1 = bm25_k1
        self.bm25_b = bm25_b
        self.index = InvertedIndex()
        self.field_weights = entity.field_weights
        # Raw text store per document (the naive cloud strategy re-reads it).
        self._texts: Dict[DocId, Dict[str, str]] = {}
        self._built = False

    # -- indexing -----------------------------------------------------------

    def build(self) -> int:
        """(Re)build the index from the database; returns documents indexed."""
        self.index.clear()
        self._texts.clear()
        collected = self.entity.collect_texts(self.database)
        for doc_id, fields in collected.items():
            joined = {name: " ".join(chunks) for name, chunks in fields.items()}
            tokenized = {
                name: self.tokenizer.tokens(text) for name, text in joined.items()
            }
            self.index.add_document(doc_id, tokenized)
            self._texts[doc_id] = joined
        self._built = True
        return self.index.document_count

    def refresh_document(self, doc_id: DocId) -> None:
        """Re-index a single entity after its underlying rows changed.

        Runs key-filtered field queries (not a full corpus re-read), so
        the live site can refresh a course the moment a comment lands.
        Removes the entity when it disappeared from the database.
        """
        fields = self.entity.collect_texts_for(self.database, doc_id)
        if fields is None:
            if self.index.has_document(doc_id):
                self.index.remove_document(doc_id)
                self._texts.pop(doc_id, None)
            return
        joined = {name: " ".join(chunks) for name, chunks in fields.items()}
        self.index.add_document(
            doc_id,
            {name: self.tokenizer.tokens(text) for name, text in joined.items()},
        )
        self._texts[doc_id] = joined

    def document_text(self, doc_id: DocId) -> Dict[str, str]:
        """The stored raw text of an indexed entity (field → text)."""
        if doc_id not in self._texts:
            raise SearchError(f"document {doc_id!r} is not indexed")
        return self._texts[doc_id]

    @property
    def document_count(self) -> int:
        return self.index.document_count

    def _require_built(self) -> None:
        if not self._built:
            raise SearchError("search index not built; call build() first")

    # -- query parsing -------------------------------------------------------

    def parse_query(self, query: str) -> Tuple[List[str], List[List[str]]]:
        """Split a query into loose terms and quoted phrases (stemmed).

        A quoted segment that reduces to a single token degenerates into
        a loose term; empty quotes are ignored.
        """
        phrases: List[List[str]] = []
        loose_text_parts: List[str] = []
        cursor = 0
        for match in _QUOTED.finditer(query):
            loose_text_parts.append(query[cursor : match.start()])
            tokens = self.tokenizer.query_tokens(match.group(1))
            if len(tokens) >= 2:
                phrases.append(tokens)
            elif tokens:
                loose_text_parts.append(" " + tokens[0] + " ")
            cursor = match.end()
        loose_text_parts.append(query[cursor:])
        loose = self.tokenizer.query_tokens(" ".join(loose_text_parts))
        return loose, phrases

    # -- querying ------------------------------------------------------------

    def search(
        self,
        query: str,
        limit: Optional[int] = None,
        mode: str = "all",
        within: Optional[Set[DocId]] = None,
    ) -> SearchResult:
        """Answer a keyword query.

        ``mode`` is ``"all"`` (conjunctive, default) or ``"any"``
        (disjunctive; phrases still match as phrases).  ``within``
        restricts candidates to a document subset — the data-cloud
        refinement path uses it.
        """
        self._require_built()
        if mode not in ("all", "any"):
            raise SearchError(f"unknown match mode {mode!r}")
        loose, phrases = self.parse_query(query)
        all_terms = list(loose) + [term for phrase in phrases for term in phrase]
        if not all_terms:
            return SearchResult(
                query=query, terms=[], hits=[], mode=mode, phrases=[]
            )
        candidates = self._candidates(loose, phrases, mode)
        if within is not None:
            candidates &= within
        scored = self._score_candidates(candidates, all_terms)
        scored.sort(key=lambda hit: (-hit.score, _tiebreak(hit.doc_id)))
        if limit is not None:
            scored = scored[:limit]
        return SearchResult(
            query=query,
            terms=all_terms,
            hits=scored,
            mode=mode,
            phrases=phrases,
        )

    def count(self, query: str, mode: str = "all") -> int:
        """Number of matching entities without scoring (cheaper)."""
        self._require_built()
        loose, phrases = self.parse_query(query)
        if not loose and not phrases:
            return 0
        return len(self._candidates(loose, phrases, mode))

    def _candidates(
        self,
        loose: Sequence[str],
        phrases: Sequence[Sequence[str]],
        mode: str,
    ) -> Set[DocId]:
        sets = [self.index.matching_documents(term) for term in loose]
        sets.extend(self.index.phrase_documents(phrase) for phrase in phrases)
        if not sets:
            return set()
        if mode == "all":
            sets.sort(key=len)  # intersect smallest-first
            result = set(sets[0])
            for other in sets[1:]:
                result &= other
                if not result:
                    break
            return result
        result: Set[DocId] = set()
        for other in sets:
            result |= other
        return result

    # -- scoring ---------------------------------------------------------

    def _score_candidates(
        self, candidates: Set[DocId], terms: Sequence[str]
    ) -> List[SearchHit]:
        """Score all candidates, fetching each term's postings once."""
        scores: Dict[DocId, float] = {doc_id: 0.0 for doc_id in candidates}
        k1, b = self.bm25_k1, self.bm25_b
        for term in terms:
            postings = self.index.positional_postings(term)
            idf = self.index.idf(term)
            for doc_id in candidates:
                entry = postings.get(doc_id)
                if not entry:
                    continue
                if self.ranker == "bm25":
                    pseudo_tf = 0.0
                    for field_name, positions in entry.items():
                        tf = len(positions)
                        average = self.index.average_field_length(field_name)
                        length = self.index.field_length(doc_id, field_name)
                        normalizer = (
                            1.0 - b + b * (length / average) if average else 1.0
                        )
                        pseudo_tf += (
                            self.field_weights.get(field_name, 1.0)
                            * tf
                            / normalizer
                        )
                    scores[doc_id] += (
                        idf * pseudo_tf * (k1 + 1.0) / (pseudo_tf + k1)
                    )
                else:
                    weighted = sum(
                        self.field_weights.get(field_name, 1.0)
                        * (1.0 + math.log(len(positions)))
                        for field_name, positions in entry.items()
                    )
                    scores[doc_id] += idf * weighted
        return [SearchHit(doc_id, score) for doc_id, score in scores.items()]


def _tiebreak(doc_id: DocId) -> Tuple[str, str]:
    """Deterministic ordering for equal scores across mixed id types."""
    return (type(doc_id).__name__, str(doc_id))
