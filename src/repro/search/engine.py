"""The search engine: indexing entities and answering keyword queries.

Matching is **conjunctive** by default (every query term must appear
somewhere in the entity), which is what produces the paper's refinement
behaviour: "American" matches 1160 courses, adding "African" narrows to
123.  Disjunctive ("any") matching is available for recall-oriented uses.

Queries support **quoted phrases**: ``"african american" history``
requires the two quoted words to appear consecutively (in the same
field), which is how clicking a multi-word cloud term refines.

Two rankers are provided:

* ``tfidf`` — weighted TF-IDF: ``sum_t idf(t) * sum_f w_f * (1+log tf)``;
* ``bm25``  — a BM25F-style variant with per-field length normalization.

Both respect the entity definition's field weights, answering Section
3.1's ranking question (title hits beat comment hits).

The query hot path is engineered like minidb's (DESIGN.md §7/§8):
scoring is term-at-a-time over postings with idf, field weight, and
BM25 length-normalizer lookups hoisted out of the inner loop; limited
queries use a bounded heap instead of sorting every hit; and ranked
results are memoized in an LRU cache keyed by the index **epoch**, so
any index mutation invalidates stale entries without an explicit hook.
"""

from __future__ import annotations

import heapq
import math
import re
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.caching import LRUCache
from repro.errors import SearchError
from repro.obs import COUNT_EDGES, OBS
from repro.minidb.catalog import Database
from repro.search.entity import EntityDefinition
from repro.search.inverted_index import InvertedIndex
from repro.search.tokenizer import Tokenizer

DocId = Any

_QUOTED = re.compile(r'"([^"]*)"')


@dataclass(frozen=True)
class SearchHit:
    """One ranked entity."""

    doc_id: DocId
    score: float


@dataclass
class SearchResult:
    """The outcome of one query: ranked hits plus query metadata.

    The trailing fields are per-query observability: how many documents
    survived candidate generation, how many were scored, whether the
    ranked list came from the result cache, and wall-clock time spent
    inside :meth:`SearchEngine.search`.
    """

    query: str
    terms: List[str]  # all stemmed terms, phrase members included
    hits: List[SearchHit]
    mode: str
    phrases: List[List[str]] = field(default_factory=list)
    candidate_count: int = 0
    scored_count: int = 0
    cache_hit: bool = False
    elapsed_ms: float = 0.0

    def __len__(self) -> int:
        return len(self.hits)

    def doc_ids(self) -> List[DocId]:
        return [hit.doc_id for hit in self.hits]

    def doc_id_set(self) -> Set[DocId]:
        return {hit.doc_id for hit in self.hits}

    def top(self, k: int) -> List[SearchHit]:
        return self.hits[:k]


class SearchEngine:
    """Indexes one entity type from a database and answers queries."""

    def __init__(
        self,
        database: Database,
        entity: EntityDefinition,
        tokenizer: Optional[Tokenizer] = None,
        ranker: str = "bm25",
        bm25_k1: float = 1.4,
        bm25_b: float = 0.6,
        result_cache_size: int = 128,
    ) -> None:
        if ranker not in ("bm25", "tfidf"):
            raise SearchError(f"unknown ranker {ranker!r}")
        self.database = database
        self.entity = entity
        self.tokenizer = tokenizer or Tokenizer()
        self.ranker = ranker
        self.bm25_k1 = bm25_k1
        self.bm25_b = bm25_b
        self.index = InvertedIndex()
        self.field_weights = entity.field_weights
        # Raw text store per document (the naive cloud strategy re-reads it).
        self._texts: Dict[DocId, Dict[str, str]] = {}
        self._built = False
        # Ranked-result memo.  Keys embed the index epoch, so entries made
        # before any add/remove/refresh can never be served afterwards —
        # stale generations simply age out of the LRU.
        self._result_cache = LRUCache(maxsize=result_cache_size)

    # -- indexing -----------------------------------------------------------

    def build(self) -> int:
        """(Re)build the index from the database; returns documents indexed."""
        self.index.clear()
        self._texts.clear()
        self._result_cache.clear()
        collected = self.entity.collect_texts(self.database)
        batch: Dict[DocId, Dict[str, List[str]]] = {}
        for doc_id, fields in collected.items():
            joined = {name: " ".join(chunks) for name, chunks in fields.items()}
            batch[doc_id] = {
                name: self.tokenizer.tokens(text) for name, text in joined.items()
            }
            self._texts[doc_id] = joined
        self.index.add_documents(batch)
        self._built = True
        return self.index.document_count

    def refresh_document(self, doc_id: DocId) -> None:
        """Re-index a single entity after its underlying rows changed.

        Runs key-filtered field queries (not a full corpus re-read), so
        the live site can refresh a course the moment a comment lands.
        Removes the entity when it disappeared from the database.  The
        index epoch moves either way, so cached results and norm tables
        never outlive the change.
        """
        fields = self.entity.collect_texts_for(self.database, doc_id)
        if fields is None:
            if self.index.has_document(doc_id):
                self.index.remove_document(doc_id)
                self._texts.pop(doc_id, None)
            return
        joined = {name: " ".join(chunks) for name, chunks in fields.items()}
        self.index.add_document(
            doc_id,
            {name: self.tokenizer.tokens(text) for name, text in joined.items()},
        )
        self._texts[doc_id] = joined

    def document_text(self, doc_id: DocId) -> Dict[str, str]:
        """The stored raw text of an indexed entity (field → text)."""
        if doc_id not in self._texts:
            raise SearchError(f"document {doc_id!r} is not indexed")
        return self._texts[doc_id]

    @property
    def document_count(self) -> int:
        return self.index.document_count

    def _require_built(self) -> None:
        if not self._built:
            raise SearchError("search index not built; call build() first")

    # -- caching -------------------------------------------------------------

    def clear_caches(self) -> None:
        """Empty the result cache and derived index tables (cold-path
        benchmarking helper; never needed for correctness)."""
        self._result_cache.clear()
        self.index.invalidate_caches()

    def cache_info(self) -> Dict[str, int]:
        """Result-cache counters: hits, misses, current size."""
        cache = self._result_cache
        return {"hits": cache.hits, "misses": cache.misses, "size": len(cache)}

    # -- query parsing -------------------------------------------------------

    def parse_query(self, query: str) -> Tuple[List[str], List[List[str]]]:
        """Split a query into loose terms and quoted phrases (stemmed).

        A quoted segment that reduces to a single token degenerates into
        a loose term; empty quotes are ignored.
        """
        phrases: List[List[str]] = []
        loose_text_parts: List[str] = []
        cursor = 0
        for match in _QUOTED.finditer(query):
            loose_text_parts.append(query[cursor : match.start()])
            tokens = self.tokenizer.query_tokens(match.group(1))
            if len(tokens) >= 2:
                phrases.append(tokens)
            elif tokens:
                loose_text_parts.append(" " + tokens[0] + " ")
            cursor = match.end()
        loose_text_parts.append(query[cursor:])
        loose = self.tokenizer.query_tokens(" ".join(loose_text_parts))
        return loose, phrases

    # -- querying ------------------------------------------------------------

    def search(
        self,
        query: str,
        limit: Optional[int] = None,
        mode: str = "all",
        within: Optional[Set[DocId]] = None,
        use_cache: bool = True,
        corpus_stats: Optional[Any] = None,
    ) -> SearchResult:
        """Answer a keyword query.

        ``mode`` is ``"all"`` (conjunctive, default) or ``"any"``
        (disjunctive; phrases still match as phrases).  ``within``
        restricts candidates to a document subset — the data-cloud
        refinement path uses it.  ``use_cache=False`` bypasses the
        result cache (benchmarks measure the uncached path with it).
        ``corpus_stats`` (a :class:`repro.search.stats.CorpusStats`)
        substitutes *global* idf and average field lengths for the local
        index's — the scatter-gather path scores each shard's candidates
        with merged-corpus statistics so sharded ranking is bit-identical
        to the unsharded build.

        Every call returns a fresh :class:`SearchResult`; cached hits
        share the immutable :class:`SearchHit` objects but never the
        containing list, so callers may truncate or re-sort freely.
        """
        if not OBS.enabled:
            return self._search_impl(
                query, limit, mode, within, use_cache, corpus_stats
            )
        # The result's own observability fields are the single source of
        # truth; the span and metrics are views over the same numbers.
        with OBS.tracer.span("search.query") as span:
            result = self._search_impl(
                query, limit, mode, within, use_cache, corpus_stats
            )
            span.set(
                terms=len(result.terms),
                hits=len(result.hits),
                candidates=result.candidate_count,
                cache_hit=result.cache_hit,
            )
            OBS.metrics.inc("search.query.count")
            if result.cache_hit:
                OBS.metrics.inc("search.query.cache_hit")
            OBS.metrics.observe("search.query.ms", result.elapsed_ms)
            OBS.metrics.observe(
                "search.query.candidates",
                result.candidate_count,
                edges=COUNT_EDGES,
            )
        return result

    def _search_impl(
        self,
        query: str,
        limit: Optional[int] = None,
        mode: str = "all",
        within: Optional[Set[DocId]] = None,
        use_cache: bool = True,
        corpus_stats: Optional[Any] = None,
    ) -> SearchResult:
        self._require_built()
        started = time.perf_counter()
        if mode not in ("all", "any"):
            raise SearchError(f"unknown match mode {mode!r}")
        loose, phrases = self.parse_query(query)
        all_terms = list(loose) + [term for phrase in phrases for term in phrase]
        if not all_terms:
            return SearchResult(
                query=query,
                terms=[],
                hits=[],
                mode=mode,
                phrases=[],
                elapsed_ms=(time.perf_counter() - started) * 1000.0,
            )
        key = self._cache_key(loose, phrases, mode, limit, within, corpus_stats)
        if use_cache and key is not None:
            cached = self._result_cache.get(key)
            if cached is not None:
                candidate_count, scored_count, hits = cached
                return SearchResult(
                    query=query,
                    terms=all_terms,
                    hits=list(hits),
                    mode=mode,
                    phrases=phrases,
                    candidate_count=candidate_count,
                    scored_count=scored_count,
                    cache_hit=True,
                    elapsed_ms=(time.perf_counter() - started) * 1000.0,
                )
        candidates = self._candidates(loose, phrases, mode)
        if within is not None:
            candidates &= within
        scored = self._score_candidates(candidates, all_terms, corpus_stats)
        scored_count = len(scored)
        if limit is not None and limit < len(scored):
            # Bounded heap: O(n log k) and no full materialized sort.  The
            # key mirrors the full-sort ordering exactly, ties included.
            hits = heapq.nsmallest(
                limit, scored, key=lambda hit: (-hit.score, _tiebreak(hit.doc_id))
            )
        else:
            scored.sort(key=lambda hit: (-hit.score, _tiebreak(hit.doc_id)))
            hits = scored
        if use_cache and key is not None:
            self._result_cache.put(key, (len(candidates), scored_count, tuple(hits)))
        return SearchResult(
            query=query,
            terms=all_terms,
            hits=hits,
            mode=mode,
            phrases=phrases,
            candidate_count=len(candidates),
            scored_count=scored_count,
            cache_hit=False,
            elapsed_ms=(time.perf_counter() - started) * 1000.0,
        )

    def _cache_key(
        self,
        loose: Sequence[str],
        phrases: Sequence[Sequence[str]],
        mode: str,
        limit: Optional[int],
        within: Optional[Set[DocId]],
        corpus_stats: Optional[Any] = None,
    ) -> Optional[Tuple]:
        """Epoch-keyed cache key, or ``None`` when the query is uncacheable
        (unhashable doc ids in ``within``).  Keying on the *parsed* terms
        means queries differing only in case/whitespace share an entry.
        Global-stats scoring keys on the stats bundle too: the same query
        under different merged statistics ranks differently."""
        try:
            within_key = frozenset(within) if within is not None else None
        except TypeError:
            return None
        return (
            self.index.epoch,
            tuple(loose),
            tuple(tuple(phrase) for phrase in phrases),
            mode,
            limit,
            within_key,
            corpus_stats.cache_token() if corpus_stats is not None else None,
        )

    def count(self, query: str, mode: str = "all") -> int:
        """Number of matching entities without scoring (cheaper)."""
        self._require_built()
        loose, phrases = self.parse_query(query)
        if not loose and not phrases:
            return 0
        return len(self._candidates(loose, phrases, mode))

    def _candidates(
        self,
        loose: Sequence[str],
        phrases: Sequence[Sequence[str]],
        mode: str,
    ) -> Set[DocId]:
        sets = [self.index.matching_documents(term) for term in loose]
        sets.extend(self.index.phrase_documents(phrase) for phrase in phrases)
        if not sets:
            return set()
        if mode == "all":
            sets.sort(key=len)  # intersect smallest-first
            result = set(sets[0])
            for other in sets[1:]:
                result &= other
                if not result:
                    break
            return result
        result: Set[DocId] = set()
        for other in sets:
            result |= other
        return result

    # -- scoring ---------------------------------------------------------

    def _score_candidates(
        self,
        candidates: Set[DocId],
        terms: Sequence[str],
        corpus_stats: Optional[Any] = None,
    ) -> List[SearchHit]:
        """Term-at-a-time accumulation over postings.

        Per term the idf is computed once; per field the weight and the
        per-document inverse BM25 normalizer table are fetched once.  The
        inner loop walks whichever of (postings, candidates) is smaller,
        so rare terms over broad candidate sets never scan every
        candidate, and broad terms over narrow ``within`` sets never scan
        every posting.

        With ``corpus_stats``, idf and the normalizer averages come from
        the merged corpus instead of the local index; everything else —
        tf, field weights, accumulation order — is unchanged, which is
        what makes per-document scores bit-identical across shardings.
        """
        if not candidates:
            return []
        scores: Dict[DocId, float] = dict.fromkeys(candidates, 0.0)
        k1, b = self.bm25_k1, self.bm25_b
        k1_plus_1 = k1 + 1.0
        weights = self.field_weights
        index = self.index
        bm25 = self.ranker == "bm25"
        # field -> {doc: 1/normalizer}; fetched lazily per field, shared
        # across terms (the table itself is epoch-cached in the index).
        inverse_norms: Dict[str, Dict[DocId, float]] = {}
        for term in terms:
            postings = index.positional_postings(term)
            if not postings:
                continue
            idf = (
                corpus_stats.idf(term)
                if corpus_stats is not None
                else index.idf(term)
            )
            if len(postings) <= len(candidates):
                matched = (
                    (doc_id, entry)
                    for doc_id, entry in postings.items()
                    if doc_id in scores
                )
            else:
                matched = (
                    (doc_id, postings[doc_id])
                    for doc_id in candidates
                    if doc_id in postings
                )
            if bm25:
                for doc_id, entry in matched:
                    pseudo_tf = 0.0
                    for field_name, positions in entry.items():
                        inverse = inverse_norms.get(field_name)
                        if inverse is None:
                            inverse = index.length_normalizers(
                                field_name,
                                b,
                                average=(
                                    corpus_stats.average_field_length(field_name)
                                    if corpus_stats is not None
                                    else None
                                ),
                            )
                            inverse_norms[field_name] = inverse
                        pseudo_tf += (
                            weights.get(field_name, 1.0)
                            * len(positions)
                            * inverse.get(doc_id, 1.0)
                        )
                    scores[doc_id] += (
                        idf * pseudo_tf * k1_plus_1 / (pseudo_tf + k1)
                    )
            else:
                for doc_id, entry in matched:
                    weighted = 0.0
                    for field_name, positions in entry.items():
                        weighted += weights.get(field_name, 1.0) * (
                            1.0 + math.log(len(positions))
                        )
                    scores[doc_id] += idf * weighted
        return [SearchHit(doc_id, score) for doc_id, score in scores.items()]


def _tiebreak(doc_id: DocId) -> Tuple[str, str]:
    """Deterministic ordering for equal scores across mixed id types."""
    return (type(doc_id).__name__, str(doc_id))
