"""Result snippets: show *why* an entity matched.

The course list of Figure 3 shows each hit with enough text to judge
relevance.  :func:`best_snippet` picks the window of an entity's stored
text densest in query terms (preferring the highest-weighted field that
matched) and marks the matches, e.g.::

    ...covers the **american** revolution and the civil war...
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.search.engine import SearchEngine

DocId = Any


def best_snippet(
    engine: SearchEngine,
    doc_id: DocId,
    terms: Sequence[str],
    width: int = 12,
    mark: str = "**",
) -> Optional[str]:
    """The densest ``width``-word window containing query terms.

    ``terms`` are stemmed query tokens (``SearchResult.terms``).  Fields
    are tried in descending weight order; the first field containing any
    term supplies the snippet.  Returns None when nothing matches (e.g.
    the hit came via a field with empty stored text).
    """
    texts = engine.document_text(doc_id)
    term_set = set(terms)
    ordered_fields = sorted(
        texts,
        key=lambda name: -engine.field_weights.get(name, 1.0),
    )
    for field_name in ordered_fields:
        snippet = _snippet_from_text(
            engine, texts[field_name], term_set, width, mark
        )
        if snippet is not None:
            return snippet
    return None


def annotate_hits(
    engine: SearchEngine,
    result,
    limit: int = 10,
    width: int = 12,
) -> List[Tuple[DocId, str]]:
    """(doc_id, snippet) pairs for the top hits of a SearchResult."""
    annotated = []
    for hit in result.top(limit):
        snippet = best_snippet(engine, hit.doc_id, result.terms, width=width)
        annotated.append((hit.doc_id, snippet or ""))
    return annotated


def _snippet_from_text(
    engine: SearchEngine,
    text: str,
    term_set,
    width: int,
    mark: str,
) -> Optional[str]:
    words = text.split()
    if not words:
        return None
    hit_positions = [
        position
        for position, word in enumerate(words)
        if _stem_of(engine, word) in term_set
    ]
    if not hit_positions:
        return None
    # Densest window: slide over hit positions.
    best_start = 0
    best_count = 0
    for anchor in hit_positions:
        start = max(0, anchor - width // 2)
        end = start + width
        count = sum(1 for p in hit_positions if start <= p < end)
        if count > best_count:
            best_count = count
            best_start = start
    start = best_start
    end = min(len(words), start + width)
    rendered = []
    for position in range(start, end):
        word = words[position]
        if _stem_of(engine, word) in term_set:
            rendered.append(f"{mark}{word}{mark}")
        else:
            rendered.append(word)
    prefix = "..." if start > 0 else ""
    suffix = "..." if end < len(words) else ""
    return f"{prefix}{' '.join(rendered)}{suffix}"


def _stem_of(engine: SearchEngine, word: str) -> Optional[str]:
    tokens = engine.tokenizer.tokens(word)
    return tokens[0] if tokens else None
