"""Search entities spanning multiple relations.

Section 3.1 of the paper asks: *"How do we effectively define and search
over search entities that span multiple relations rather than over
tuples?"*  The answer implemented here: an :class:`EntityDefinition` names
a key (the entity id) and a list of :class:`FieldSpec`, each of which is a
SQL query returning ``(entity_key, text)`` pairs plus a ranking weight.

A course entity, for example, draws its ``title`` and ``description``
fields from Courses, a ``comments`` field from the Comments relation, and
an ``instructor`` field from the Instructors/Teaches join — all folded
into one searchable document per course, with title matches weighted above
comment matches (the paper's "Java in the title vs Java in a comment"
question).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Tuple

from repro.errors import SearchError
from repro.minidb.catalog import Database


@dataclass(frozen=True)
class FieldSpec:
    """One field of a search entity.

    ``sql`` must select exactly two columns: the entity key and a text
    value.  Multiple rows per key are concatenated (a course has many
    comments).  ``weight`` scales this field's contribution to the score.
    """

    name: str
    sql: str
    weight: float = 1.0

    def __post_init__(self) -> None:
        if not self.name:
            raise SearchError("field name must be non-empty")
        if self.weight <= 0:
            raise SearchError(f"field {self.name!r} weight must be positive")


@dataclass(frozen=True)
class EntityDefinition:
    """A named entity type with its constituent fields."""

    name: str
    fields: Tuple[FieldSpec, ...]

    def __post_init__(self) -> None:
        if not self.fields:
            raise SearchError(f"entity {self.name!r} needs at least one field")
        seen = set()
        for spec in self.fields:
            if spec.name in seen:
                raise SearchError(
                    f"entity {self.name!r} has duplicate field {spec.name!r}"
                )
            seen.add(spec.name)

    @property
    def field_weights(self) -> Dict[str, float]:
        return {spec.name: spec.weight for spec in self.fields}

    def collect_texts(self, database: Database) -> Dict[Any, Dict[str, List[str]]]:
        """Run every field query; returns entity_key → field → text chunks."""
        collected: Dict[Any, Dict[str, List[str]]] = {}
        for spec in self.fields:
            result = database.query(spec.sql)
            if len(result.columns) != 2:
                raise SearchError(
                    f"field {spec.name!r} SQL must return (key, text), got "
                    f"{len(result.columns)} columns"
                )
            for key, text in result.rows:
                if key is None or text is None:
                    continue
                if not isinstance(text, str):
                    text = str(text)
                collected.setdefault(key, {}).setdefault(spec.name, []).append(text)
        return collected

    def collect_texts_for(
        self, database: Database, key: Any
    ) -> Optional[Dict[str, List[str]]]:
        """Field → text chunks for a single entity (incremental refresh).

        Wraps each field query in a key filter so refreshing one course
        after a new comment doesn't re-read the whole corpus.  Returns
        None when no field yields text (the entity vanished).
        """
        literal = _sql_literal(key)
        collected: Dict[str, List[str]] = {}
        for spec in self.fields:
            wrapped = (
                f"SELECT * FROM ({spec.sql}) AS __entity "
                f"WHERE {_first_column(database, spec)} = {literal}"
            )
            for row_key, text in database.query(wrapped).rows:
                if row_key is None or text is None:
                    continue
                if not isinstance(text, str):
                    text = str(text)
                collected.setdefault(spec.name, []).append(text)
        return collected or None


def _first_column(database: Database, spec: FieldSpec) -> str:
    """The key column name of a field query (its first output column)."""
    from repro.minidb.planner import plan_select
    from repro.minidb.sql.parser import parse_statement

    statement = parse_statement(spec.sql)
    return plan_select(database, statement).column_names[0]


def _sql_literal(value: Any) -> str:
    if isinstance(value, str):
        return "'" + value.replace("'", "''") + "'"
    if isinstance(value, bool):
        return "TRUE" if value else "FALSE"
    return repr(value)


def instructor_entity(
    name_weight: float = 4.0,
    course_weight: float = 2.0,
    comment_weight: float = 1.0,
) -> EntityDefinition:
    """An instructor entity: name, the courses they teach, and what
    students say about those courses.

    "We could easily expand searching with clouds to other entities,
    such as books and instructors" (Section 3.1) — this is the
    instructor expansion.
    """
    return EntityDefinition(
        name="instructor",
        fields=(
            FieldSpec(
                "name",
                "SELECT InstructorID, Name FROM Instructors",
                weight=name_weight,
            ),
            FieldSpec(
                "courses",
                "SELECT t.InstructorID, c.Title FROM Teaches t "
                "JOIN Courses c ON t.CourseID = c.CourseID",
                weight=course_weight,
            ),
            FieldSpec(
                "comments",
                "SELECT t.InstructorID, cm.Text FROM Teaches t "
                "JOIN Comments cm ON t.CourseID = cm.CourseID",
                weight=comment_weight,
            ),
        ),
    )


def textbook_entity(
    title_weight: float = 4.0,
    author_weight: float = 2.0,
    course_weight: float = 1.5,
) -> EntityDefinition:
    """A textbook entity: title, author, and the courses assigning it
    (the "books" expansion of Section 3.1)."""
    return EntityDefinition(
        name="textbook",
        fields=(
            FieldSpec(
                "title",
                "SELECT TextbookID, Title FROM Textbooks",
                weight=title_weight,
            ),
            FieldSpec(
                "author",
                "SELECT TextbookID, Author FROM Textbooks",
                weight=author_weight,
            ),
            FieldSpec(
                "courses",
                "SELECT ct.TextbookID, c.Title FROM CourseTextbooks ct "
                "JOIN Courses c ON ct.CourseID = c.CourseID",
                weight=course_weight,
            ),
        ),
    )


def course_entity(
    title_weight: float = 4.0,
    description_weight: float = 2.0,
    comment_weight: float = 1.0,
    instructor_weight: float = 2.0,
    department_weight: float = 1.5,
) -> EntityDefinition:
    """The canonical CourseRank course entity over the application schema.

    Field weights encode the paper's ranking question: a query term in the
    title counts for more than the same term inside a student comment.
    """
    return EntityDefinition(
        name="course",
        fields=(
            FieldSpec(
                "title",
                "SELECT CourseID, Title FROM Courses",
                weight=title_weight,
            ),
            FieldSpec(
                "description",
                "SELECT CourseID, Description FROM Courses",
                weight=description_weight,
            ),
            FieldSpec(
                "comments",
                "SELECT CourseID, Text FROM Comments",
                weight=comment_weight,
            ),
            FieldSpec(
                "instructor",
                "SELECT t.CourseID, i.Name FROM Teaches t "
                "JOIN Instructors i ON t.InstructorID = i.InstructorID",
                weight=instructor_weight,
            ),
            FieldSpec(
                "department",
                "SELECT c.CourseID, d.Name FROM Courses c "
                "JOIN Departments d ON c.DepID = d.DepID",
                weight=department_weight,
            ),
        ),
    )
