"""Tokenization for the search engine and the data-cloud term extractor.

Tokens are maximal runs of letters/digits, lowercased.  Apostrophes inside
words are dropped (``don't`` → ``dont``) so possessives and contractions
don't fragment.  A small English stopword list (plus a handful of
university-domain words like "course" and "units" that would otherwise
dominate every cloud) can be filtered, and tokens can be Porter-stemmed.
"""

from __future__ import annotations

import re
from typing import Iterable, List, Optional, Sequence, Set

from repro.caching import LRUCache
from repro.search.stemmer import porter_stem

_WORD = re.compile(r"[a-z0-9]+")

STOPWORDS: Set[str] = {
    # Standard English function words.
    "a", "about", "above", "after", "again", "all", "also", "an", "and",
    "any", "are", "as", "at", "be", "because", "been", "before", "being",
    "below", "between", "both", "but", "by", "can", "cannot", "could",
    "did", "do", "does", "doing", "down", "during", "each", "few", "for",
    "from", "further", "had", "has", "have", "having", "he", "her", "here",
    "hers", "him", "his", "how", "i", "if", "in", "into", "is", "it",
    "its", "just", "may", "me", "more", "most", "my", "no", "nor", "not",
    "now", "of", "off", "on", "once", "only", "or", "other", "our", "out",
    "over", "own", "same", "she", "should", "so", "some", "such", "than",
    "that", "the", "their", "them", "then", "there", "these", "they",
    "this", "those", "through", "to", "too", "under", "until", "up",
    "very", "was", "we", "were", "what", "when", "where", "which", "while",
    "who", "whom", "why", "will", "with", "would", "you", "your",
    # Domain words that appear in nearly every course record and would
    # otherwise crowd out informative cloud terms.
    "course", "courses", "class", "classes", "students", "student",
    "introduction", "intro", "units", "unit", "quarter", "will", "topics",
    "prerequisite", "prerequisites", "instructor", "offered", "study",
    "prof", "professor", "took", "take",
}


class Tokenizer:
    """Configurable tokenization pipeline.

    >>> Tokenizer().tokens("The History of American Science")
    ['histori', 'american', 'scienc']
    >>> Tokenizer(stem=False).tokens("The History of American Science")
    ['history', 'american', 'science']
    """

    def __init__(
        self,
        stem: bool = True,
        remove_stopwords: bool = True,
        stopwords: Optional[Set[str]] = None,
        min_length: int = 2,
    ) -> None:
        self.stem = stem
        self.remove_stopwords = remove_stopwords
        self.stopwords = STOPWORDS if stopwords is None else stopwords
        self.min_length = min_length
        self._stem_cache: dict = {}
        # Queries and cloud refinements re-tokenize the same strings;
        # memoize full token streams (bounded, per-tokenizer).
        self._token_cache = LRUCache(maxsize=1024)

    def raw_tokens(self, text: str) -> List[str]:
        """Lowercased word tokens with no filtering or stemming."""
        if not text:
            return []
        return _WORD.findall(text.replace("'", "").lower())

    def tokens(self, text: str) -> List[str]:
        """The full pipeline: tokenize, filter, stem."""
        cached = self._token_cache.get(text)
        if cached is not None:
            return list(cached)
        result: List[str] = []
        for token in self.raw_tokens(text):
            if len(token) < self.min_length:
                continue
            if self.remove_stopwords and token in self.stopwords:
                continue
            if self.stem:
                token = self.stem_token(token)
            result.append(token)
        self._token_cache.put(text, tuple(result))
        return result

    def stem_token(self, token: str) -> str:
        """Porter-stem one token, memoized (vocabularies are Zipfian)."""
        cached = self._stem_cache.get(token)
        if cached is None:
            cached = porter_stem(token)
            self._stem_cache[token] = cached
        return cached

    def query_tokens(self, text: str) -> List[str]:
        """Tokenize a user query with the same pipeline as documents.

        Kept separate so query-time behaviour can diverge later (e.g.
        keeping stopwords inside quoted phrases) without touching indexing.
        """
        return self.tokens(text)
