"""Bigram phrase extraction for data-cloud terms.

The paper's example clouds contain multi-word terms ("Latin American",
"African American").  Clouds built from unigrams alone cannot surface
those, so the cloud pipeline extracts *bigrams of consecutive
non-stopword tokens* from entity text and treats frequent ones as
candidate cloud terms alongside unigrams.

Bigrams are represented as ``"left right"`` strings of unstemmed
lowercase tokens — clouds display human-readable phrases, not stems.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.search.tokenizer import STOPWORDS, Tokenizer


def extract_bigrams(
    text: str,
    tokenizer: Optional[Tokenizer] = None,
    stopwords: Optional[Set[str]] = None,
) -> List[str]:
    """All consecutive non-stopword bigrams in ``text`` (display form).

    >>> extract_bigrams("History of Latin American politics")
    ['latin american', 'american politics']
    """
    stop = STOPWORDS if stopwords is None else stopwords
    raw = (tokenizer or _DEFAULT).raw_tokens(text)
    bigrams: List[str] = []
    previous: Optional[str] = None
    for token in raw:
        if len(token) < 2 or token in stop:
            previous = None
            continue
        if previous is not None:
            bigrams.append(f"{previous} {token}")
        previous = token
    return bigrams


_DEFAULT = Tokenizer()


def count_bigrams(
    texts: Iterable[str],
    tokenizer: Optional[Tokenizer] = None,
    min_count: int = 1,
) -> Counter:
    """Aggregate bigram counts over many texts."""
    counts: Counter = Counter()
    for text in texts:
        counts.update(extract_bigrams(text, tokenizer))
    if min_count > 1:
        counts = Counter(
            {bigram: count for bigram, count in counts.items() if count >= min_count}
        )
    return counts


def display_unigrams(
    text: str,
    tokenizer: Optional[Tokenizer] = None,
    stopwords: Optional[Set[str]] = None,
) -> List[str]:
    """Unstemmed, stopword-filtered unigrams (cloud display form)."""
    stop = STOPWORDS if stopwords is None else stopwords
    raw = (tokenizer or _DEFAULT).raw_tokens(text)
    return [token for token in raw if len(token) >= 2 and token not in stop]
