"""Corpus-level statistics for distributed (scatter-gather) scoring.

BM25 scoring depends on three corpus aggregates: the document count, the
per-term document frequency, and the per-field average length.  On a
sharded corpus each shard only sees its slice, so scoring locally with
local statistics would rank differently than the unsharded build.

:class:`CorpusStats` is the fix: a small, immutable bundle of exactly
those aggregates.  The service layer gathers one per shard
(:meth:`CorpusStats.local`), merges them (:meth:`CorpusStats.merged` —
every component is an **integer sum over disjoint document sets**, so the
merge is exact and order-independent), and hands the merged stats back to
each shard's engine, which then scores its local candidates with *global*
idf and *global* average field lengths.  Per-document score arithmetic is
bit-identical to the unsharded engine because the inputs (idf, inverse
normalizer, tf, field weights) are bit-identical floats and are combined
in the same order.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, Optional, Sequence, Tuple

from repro.search.inverted_index import InvertedIndex


class CorpusStats:
    """Global corpus aggregates: doc count, per-term df, field lengths."""

    __slots__ = ("document_count", "term_df", "field_tokens", "field_holders", "_token")

    def __init__(
        self,
        document_count: int,
        term_df: Dict[str, int],
        field_tokens: Dict[str, int],
        field_holders: Dict[str, int],
    ) -> None:
        self.document_count = document_count
        self.term_df = term_df
        self.field_tokens = field_tokens
        self.field_holders = field_holders
        self._token: Optional[Tuple] = None

    # -- scoring inputs ----------------------------------------------------

    def idf(self, term: str) -> float:
        """Same smoothed idf formula as :meth:`InvertedIndex.idf`."""
        df = self.term_df.get(term, 0)
        n = self.document_count
        return math.log(1.0 + (n - df + 0.5) / (df + 0.5)) if n else 0.0

    def average_field_length(self, field: str) -> float:
        total = self.field_tokens.get(field, 0)
        if not total:
            return 0.0
        holders = self.field_holders.get(field, 0)
        return total / holders if holders else 0.0

    # -- construction ------------------------------------------------------

    @staticmethod
    def local(index: InvertedIndex, terms: Sequence[str]) -> "CorpusStats":
        """One shard's contribution, restricted to the query's terms."""
        return CorpusStats(
            document_count=index.document_count,
            term_df={term: index.document_frequency(term) for term in set(terms)},
            field_tokens=dict(index.field_token_counts()),
            field_holders=dict(index.field_holder_counts()),
        )

    @staticmethod
    def merged(parts: Iterable["CorpusStats"]) -> "CorpusStats":
        """Exact merge over disjoint shards: every component is an
        integer sum, so the result is independent of part order."""
        document_count = 0
        term_df: Dict[str, int] = {}
        field_tokens: Dict[str, int] = {}
        field_holders: Dict[str, int] = {}
        for part in parts:
            document_count += part.document_count
            for term, df in part.term_df.items():
                term_df[term] = term_df.get(term, 0) + df
            for field, tokens in part.field_tokens.items():
                field_tokens[field] = field_tokens.get(field, 0) + tokens
            for field, holders in part.field_holders.items():
                field_holders[field] = field_holders.get(field, 0) + holders
        return CorpusStats(document_count, term_df, field_tokens, field_holders)

    # -- cache keying ------------------------------------------------------

    def cache_token(self) -> Tuple:
        """A hashable rendering for embedding in result-cache keys."""
        token = self._token
        if token is None:
            token = (
                self.document_count,
                tuple(sorted(self.term_df.items())),
                tuple(sorted(self.field_tokens.items())),
                tuple(sorted(self.field_holders.items())),
            )
            self._token = token
        return token

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<CorpusStats docs={self.document_count} "
            f"terms={len(self.term_df)} fields={len(self.field_tokens)}>"
        )
