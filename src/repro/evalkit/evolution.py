"""System evolution over time.

One of the paper's open questions: "How do such systems evolve over
time?  How do resources, users, and their relationships change and how
does this affect the whole user experience?"  This module computes the
time-series the question asks about, from the timestamps CourseRank
already stores:

* **activity timeline** — contributions per month;
* **adoption curve** — cumulative distinct contributors over time (the
  Section-2 narrative: "a little over a year after its launch, the
  system is already used by more than 9,000 Stanford students");
* **coverage curve** — cumulative fraction of the catalog with at least
  one comment (how the resource side fills in).
"""

from __future__ import annotations

import datetime
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.minidb.catalog import Database

Month = str  # "YYYY-MM"


@dataclass
class TimelinePoint:
    month: Month
    comments: int
    new_contributors: int
    cumulative_contributors: int
    cumulative_courses_covered: int


def _month_of(day: datetime.date) -> Month:
    return f"{day.year:04d}-{day.month:02d}"


def activity_timeline(database: Database) -> List[TimelinePoint]:
    """Per-month contribution activity, in chronological order."""
    rows = database.query(
        "SELECT CommentDate, SuID, CourseID FROM Comments "
        "WHERE CommentDate IS NOT NULL"
    ).rows
    by_month: Dict[Month, List[Tuple[int, int]]] = {}
    for day, suid, course_id in rows:
        by_month.setdefault(_month_of(day), []).append((suid, course_id))
    seen_contributors: Set[int] = set()
    seen_courses: Set[int] = set()
    timeline: List[TimelinePoint] = []
    for month in sorted(by_month):
        entries = by_month[month]
        contributors = {suid for suid, _course in entries}
        new_contributors = contributors - seen_contributors
        seen_contributors |= contributors
        seen_courses |= {course for _suid, course in entries}
        timeline.append(
            TimelinePoint(
                month=month,
                comments=len(entries),
                new_contributors=len(new_contributors),
                cumulative_contributors=len(seen_contributors),
                cumulative_courses_covered=len(seen_courses),
            )
        )
    return timeline


def adoption_curve(database: Database) -> List[Tuple[Month, int]]:
    """(month, cumulative distinct contributors) pairs."""
    return [
        (point.month, point.cumulative_contributors)
        for point in activity_timeline(database)
    ]


def growth_summary(database: Database) -> Dict[str, float]:
    """Headline growth statistics for the evolution report.

    ``second_half_share`` is the fraction of all contributions landing in
    the chronologically later half of the months — above 0.5 means the
    site is *accelerating*, the adoption story of Section 2.
    """
    timeline = activity_timeline(database)
    if not timeline:
        return {
            "months": 0,
            "total_comments": 0,
            "final_contributors": 0,
            "second_half_share": 0.0,
            "catalog_coverage": 0.0,
        }
    half = len(timeline) // 2
    total = sum(point.comments for point in timeline)
    later = sum(point.comments for point in timeline[half:])
    courses = database.query("SELECT COUNT(*) FROM Courses").scalar()
    return {
        "months": len(timeline),
        "total_comments": total,
        "final_contributors": timeline[-1].cumulative_contributors,
        "second_half_share": later / total if total else 0.0,
        "catalog_coverage": (
            timeline[-1].cumulative_courses_covered / courses if courses else 0.0
        ),
    }


def render_timeline(timeline: List[TimelinePoint], width: int = 40) -> str:
    """A text sparkline of monthly activity (for reports/examples)."""
    if not timeline:
        return "(no activity)"
    peak = max(point.comments for point in timeline)
    lines = []
    for point in timeline:
        bar = "#" * max(1, int(width * point.comments / peak)) if peak else ""
        lines.append(
            f"{point.month}  {point.comments:>6}  "
            f"(users: {point.cumulative_contributors:>6})  {bar}"
        )
    return "\n".join(lines)
