"""Comment-quality metrics ("The Power of a Closed Community").

Section 2.2: in CourseRank's closed community "we already see much higher
quality comments than what one typically finds in public course
evaluation sites or in social sites".  These metrics quantify that claim
so the L2 benchmark can compare a closed-community corpus against the
open-community simulation:

* **mean_words** — average comment length in content words;
* **lexical_diversity** — distinct words / total words over the corpus
  (spam repeats itself);
* **topical_fraction** — fraction of comments sharing at least one
  content token with their course's title or description (spam is
  off-topic);
* **rating_extremity** — fraction of ratings at the 1.0/5.0 extremes
  (drive-by raters bomb or gush);
* **rating_signal** — Pearson correlation between a course's average
  rating and its average self-reported grade points (honest ratings
  track the actual course experience; spam ratings are noise).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.similarity import pearson
from repro.courserank.schema import GRADE_POINTS
from repro.minidb.catalog import Database
from repro.search.tokenizer import Tokenizer


@dataclass
class CommentQualityReport:
    comments: int
    mean_words: float
    lexical_diversity: float
    topical_fraction: float
    rating_extremity: Optional[float]
    rating_signal: Optional[float]

    def as_dict(self) -> Dict[str, Optional[float]]:
        return {
            "comments": self.comments,
            "mean_words": round(self.mean_words, 2),
            "lexical_diversity": round(self.lexical_diversity, 4),
            "topical_fraction": round(self.topical_fraction, 4),
            "rating_extremity": (
                None
                if self.rating_extremity is None
                else round(self.rating_extremity, 4)
            ),
            "rating_signal": (
                None
                if self.rating_signal is None
                else round(self.rating_signal, 4)
            ),
        }


def comment_quality_report(database: Database) -> CommentQualityReport:
    """Compute the quality metrics over every comment in the database."""
    tokenizer = Tokenizer(stem=True)
    rows = database.query(
        "SELECT cm.Text, cm.Rating, c.Title, c.Description "
        "FROM Comments cm JOIN Courses c ON cm.CourseID = c.CourseID"
    ).rows
    total_words = 0
    vocabulary = set()
    topical = 0
    texted = 0
    extreme = 0
    rated = 0
    for text, rating, title, description in rows:
        if text:
            texted += 1
            tokens = tokenizer.tokens(text)
            total_words += len(tokens)
            vocabulary.update(tokens)
            course_tokens = set(tokenizer.tokens(f"{title} {description or ''}"))
            if course_tokens & set(tokens):
                topical += 1
        if rating is not None:
            rated += 1
            if rating <= 1.0 or rating >= 5.0:
                extreme += 1
    mean_words = total_words / texted if texted else 0.0
    diversity = len(vocabulary) / total_words if total_words else 0.0
    topical_fraction = topical / texted if texted else 0.0
    extremity = extreme / rated if rated else None
    return CommentQualityReport(
        comments=len(rows),
        mean_words=mean_words,
        lexical_diversity=diversity,
        topical_fraction=topical_fraction,
        rating_extremity=extremity,
        rating_signal=_rating_grade_correlation(database),
    )


def _rating_grade_correlation(database: Database) -> Optional[float]:
    """Pearson r between per-course average rating and average grade."""
    ratings = {
        course_id: value
        for course_id, value in database.query(
            "SELECT CourseID, AVG(Rating) FROM Comments "
            "WHERE Rating IS NOT NULL GROUP BY CourseID"
        ).rows
    }
    case = " ".join(
        f"WHEN Grade = '{bucket}' THEN {points}"
        for bucket, points in GRADE_POINTS.items()
    )
    grades = {
        course_id: value
        for course_id, value in database.query(
            f"SELECT CourseID, AVG(CASE {case} END) FROM Enrollments "
            "WHERE Grade IS NOT NULL GROUP BY CourseID"
        ).rows
    }
    return pearson(ratings, grades)
