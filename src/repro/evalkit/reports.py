"""Programmatic regeneration of the paper's qualitative artifacts.

* :func:`table1_report` — Table 1 ("Comparing CourseRank to Social Sites
  to Classical Systems").  The DB / Web / social-site columns are the
  paper's fixed characterizations; the CourseRank column is *derived from
  the running system* (data provenance mix, community closure, identity
  policy, data types), so the table is checked, not transcribed.

* :func:`site_scale_report` — the Section-2 operational statistics
  (courses, comments, ratings, adoption) with the paper's numbers
  alongside for comparison.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.courserank.app import CourseRank

#: the paper's reported statistics (September 2008)
PAPER_STATISTICS = {
    "courses": 18605,
    "comments": 134000,
    "ratings": 50300,
    "students": 14000,
    "student_users": 9000,
}

#: official-data relations vs user-contributed relations in the schema
OFFICIAL_TABLES = (
    "Departments",
    "Courses",
    "Instructors",
    "Teaches",
    "Offerings",
    "Prerequisites",
    "OfficialGrades",
    "Requirements",
)
USER_TABLES = (
    "Comments",
    "CommentVotes",
    "Enrollments",
    "Plans",
    "Questions",
    "Answers",
    "Textbooks",
    "CourseTextbooks",
)

_STATIC_COLUMNS: Dict[str, Dict[str, str]] = {
    "DB": {
        "data_provenance": "centrally controlled, transactional, official",
        "data_structure": "structured",
        "data_size": "very large",
        "access": "1 provider - many consumers",
        "identities": "authorized, real ids",
        "interests": "very focused interests",
        "apps": "financial, telecommunications",
        "research": "long-time established, ACID database",
    },
    "Web": {
        "data_provenance": "uncontrolled, highly distributed, many providers",
        "data_structure": "unstructured + deep web",
        "data_size": "humongous",
        "access": "many providers - mass consumers",
        "identities": "anyone, anonymous",
        "interests": "diverse interests (hard to know)",
        "apps": "keyword search, browsing",
        "research": "index and search, little db technology",
    },
    "Social Sites": {
        "data_provenance": "centrally stored, user contributed",
        "data_structure": "mostly unstructured",
        "data_size": "extra large",
        "access": "users-to-users",
        "identities": "authorized, fake and multiple ids",
        "interests": "shared but diverse interests",
        "apps": "bookmarking, networking",
        "research": "little research, home-made solutions",
    },
}


def _courserank_column(app: CourseRank) -> Dict[str, str]:
    """Derive the CourseRank column of Table 1 from the live system."""
    stats = app.db.stats()
    official_rows = sum(stats.get(table, 0) for table in OFFICIAL_TABLES)
    user_rows = sum(stats.get(table, 0) for table in USER_TABLES)
    provenance = (
        "centrally stored, user contributed + official"
        if official_rows > 0 and user_rows > 0
        else "centrally stored"
    )
    # Identity policy: every account must link to a registry person (real
    # ids) except staff; check it holds.
    dangling = app.db.query(
        "SELECT COUNT(*) FROM Users u LEFT JOIN Students s "
        "ON u.PersonID = s.SuID WHERE u.Role = 'student' AND s.SuID IS NULL"
    ).scalar()
    identities = (
        "authorized, real ids" if dangling == 0 else "authorized, unverified ids"
    )
    # Structured + text: Comments carry free text, Courses carry schema.
    has_text = stats.get("Comments", 0) > 0
    structure = "both types" if has_text else "structured"
    students = stats.get("Students", 0)
    users = app.accounts.count_by_role().get("student", 0)
    access = (
        "closed community"
        if users <= students
        else "open community"
    )
    return {
        "data_provenance": provenance,
        "data_structure": structure,
        "data_size": "large",
        "access": access,
        "identities": identities,
        "interests": "community-shaped interests",
        "apps": "university site, corporate site",
        "research": "lots of challenges",
    }


def table1_report(app: CourseRank) -> Dict[str, Dict[str, str]]:
    """All four columns of Table 1, CourseRank's derived from ``app``."""
    report = dict(_STATIC_COLUMNS)
    report["CourseRank"] = _courserank_column(app)
    return report


def render_table1(report: Dict[str, Dict[str, str]]) -> str:
    """Fixed-width text rendering of the Table 1 report."""
    rows = list(next(iter(report.values())))
    systems = list(report)
    width = {
        system: max(len(system), max(len(report[system][row]) for row in rows))
        for system in systems
    }
    label_width = max(len(row) for row in rows)
    header = " | ".join(
        ["characteristic".ljust(label_width)]
        + [system.ljust(width[system]) for system in systems]
    )
    rule = "-+-".join(
        ["-" * label_width] + ["-" * width[system] for system in systems]
    )
    lines = [header, rule]
    for row in rows:
        lines.append(
            " | ".join(
                [row.ljust(label_width)]
                + [report[system][row].ljust(width[system]) for system in systems]
            )
        )
    return "\n".join(lines)


def site_scale_report(app: CourseRank) -> List[Dict[str, Any]]:
    """Measured site statistics next to the paper's reported numbers."""
    measured = app.site_statistics()
    rows = []
    for key, paper_value in PAPER_STATISTICS.items():
        measured_value = measured.get(key, 0)
        rows.append(
            {
                "statistic": key,
                "paper": paper_value,
                "measured": measured_value,
                "ratio": (
                    measured_value / paper_value if paper_value else None
                ),
            }
        )
    return rows
