"""Ranking and refinement metrics used by tests and benchmarks."""

from __future__ import annotations

from typing import Hashable, List, Optional, Sequence, Set


def overlap_at_k(left: Sequence, right: Sequence, k: int) -> float:
    """|top-k(left) ∩ top-k(right)| / k — agreement of two rankings."""
    if k <= 0:
        raise ValueError("k must be positive")
    left_top = set(left[:k])
    right_top = set(right[:k])
    return len(left_top & right_top) / k


def jaccard_overlap(left: Set, right: Set) -> float:
    """Plain Jaccard of two sets (1.0 when both are empty)."""
    if not left and not right:
        return 1.0
    return len(left & right) / len(left | right)


def kendall_tau(left: Sequence[Hashable], right: Sequence[Hashable]) -> Optional[float]:
    """Kendall rank correlation over the items common to both rankings.

    Returns None when fewer than two common items exist.
    """
    common = [item for item in left if item in set(right)]
    if len(common) < 2:
        return None
    position = {item: index for index, item in enumerate(right)}
    concordant = 0
    discordant = 0
    for i in range(len(common)):
        for j in range(i + 1, len(common)):
            if position[common[i]] < position[common[j]]:
                concordant += 1
            else:
                discordant += 1
    total = concordant + discordant
    if total == 0:
        return None
    return (concordant - discordant) / total


def coverage(recommended: Set, catalog_size: int) -> float:
    """Fraction of the catalog ever recommended (diversity proxy)."""
    if catalog_size <= 0:
        raise ValueError("catalog_size must be positive")
    return len(recommended) / catalog_size


def narrowing_factor(before: int, after: int) -> Optional[float]:
    """How much a refinement shrank the result set (before/after)."""
    if after <= 0:
        return None
    return before / after
