"""Evaluation helpers: reports for the paper's table/figures and metrics.

:mod:`reports` regenerates the qualitative artifacts (Table 1, the
Section-2 operational statistics); :mod:`metrics` provides the ranking
and refinement metrics the benchmark harness records.
"""

from repro.evalkit.metrics import (
    coverage,
    jaccard_overlap,
    kendall_tau,
    narrowing_factor,
    overlap_at_k,
)
from repro.evalkit.evolution import (
    TimelinePoint,
    activity_timeline,
    adoption_curve,
    growth_summary,
    render_timeline,
)
from repro.evalkit.quality import CommentQualityReport, comment_quality_report
from repro.evalkit.receval import (
    HoldoutEvaluation,
    PredictorScore,
    evaluate_predictors,
    holdout_split,
)
from repro.evalkit.reports import site_scale_report, table1_report

__all__ = [
    "coverage",
    "jaccard_overlap",
    "kendall_tau",
    "narrowing_factor",
    "overlap_at_k",
    "TimelinePoint",
    "activity_timeline",
    "adoption_curve",
    "growth_summary",
    "render_timeline",
    "HoldoutEvaluation",
    "PredictorScore",
    "evaluate_predictors",
    "holdout_split",
    "CommentQualityReport",
    "comment_quality_report",
    "site_scale_report",
    "table1_report",
]
