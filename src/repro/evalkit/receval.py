"""Hold-out evaluation of recommendation strategies.

"FlexRecs lets us experiment with different recommendation strategies"
(Section 3.2) — this module is the experimental harness that promise
implies: hide a sample of known ratings, ask each strategy to predict
them, and score the predictions.

Protocol: the held-out (student, course) ratings are NULLed in place (the
comments stay, only the rating is hidden), each predictor is asked for a
1–5 prediction per pair, and the originals are restored afterwards.

Predictors:

* ``global_mean``  — one number for everyone (the floor);
* ``course_mean``  — the course's average visible rating (popularity);
* ``cf``           — the Figure 5(b) FlexRecs workflow: the average
  rating the student's taste-neighbours gave the course.

Metrics: MAE, RMSE, and coverage (the fraction of held-out pairs the
predictor could score at all — CF abstains when the student has no
co-rated neighbours who rated the course).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.core import strategies
from repro.minidb.catalog import Database

Pair = Tuple[int, int, float]  # (SuID, CourseID, true rating)


@dataclass
class PredictorScore:
    name: str
    mae: Optional[float]
    rmse: Optional[float]
    coverage: float
    predictions: int


def holdout_split(
    database: Database,
    fraction: float = 0.2,
    seed: int = 0,
    max_pairs: Optional[int] = None,
    min_user_ratings: int = 3,
) -> List[Pair]:
    """Choose held-out rating pairs, keeping every user ≥2 visible ratings."""
    rng = random.Random(seed)
    rows = database.query(
        "SELECT SuID, CourseID, Rating FROM Comments "
        "WHERE Rating IS NOT NULL ORDER BY SuID, CourseID"
    ).rows
    by_user: Dict[int, List[Tuple[int, float]]] = {}
    for suid, course_id, rating in rows:
        by_user.setdefault(suid, []).append((course_id, rating))
    held: List[Pair] = []
    for suid in sorted(by_user):
        ratings = by_user[suid]
        if len(ratings) < min_user_ratings:
            continue
        budget = max(1, int(len(ratings) * fraction))
        budget = min(budget, len(ratings) - 2)  # keep signal for neighbours
        if budget <= 0:
            continue
        for course_id, rating in rng.sample(ratings, budget):
            held.append((suid, course_id, rating))
    if max_pairs is not None and len(held) > max_pairs:
        held = rng.sample(held, max_pairs)
        held.sort()
    return held


class HoldoutEvaluation:
    """Hides the held-out ratings, evaluates predictors, restores."""

    def __init__(self, database: Database, held_out: List[Pair]) -> None:
        self.database = database
        self.held_out = held_out

    def __enter__(self) -> "HoldoutEvaluation":
        table = self.database.table("Comments")
        hidden = {(suid, course) for suid, course, _r in self.held_out}
        table.update_where(
            lambda row: (row[0], row[1]) in hidden,
            lambda row: (row[0], row[1], row[2], row[3], row[4], None, row[6]),
        )
        return self

    def __exit__(self, exc_type, exc, traceback) -> bool:
        table = self.database.table("Comments")
        restore = {
            (suid, course): rating for suid, course, rating in self.held_out
        }
        table.update_where(
            lambda row: (row[0], row[1]) in restore,
            lambda row: (
                row[0], row[1], row[2], row[3], row[4],
                restore[(row[0], row[1])], row[6],
            ),
        )
        return False

    # -- predictors -----------------------------------------------------------

    def predict_global_mean(self) -> Dict[Tuple[int, int], float]:
        mean = self.database.query(
            "SELECT AVG(Rating) FROM Comments WHERE Rating IS NOT NULL"
        ).scalar()
        if mean is None:
            return {}
        return {
            (suid, course): mean for suid, course, _r in self.held_out
        }

    def predict_course_mean(self) -> Dict[Tuple[int, int], float]:
        means = dict(
            self.database.query(
                "SELECT CourseID, AVG(Rating) FROM Comments "
                "WHERE Rating IS NOT NULL GROUP BY CourseID"
            ).rows
        )
        return {
            (suid, course): means[course]
            for suid, course, _r in self.held_out
            if course in means
        }

    def predict_cf(
        self, similar_students: int = 15
    ) -> Dict[Tuple[int, int], float]:
        """Figure 5(b) per held-out student; abstains where unscoreable."""
        predictions: Dict[Tuple[int, int], float] = {}
        wanted: Dict[int, List[int]] = {}
        for suid, course, _r in self.held_out:
            wanted.setdefault(suid, []).append(course)
        for suid, courses in wanted.items():
            workflow = strategies.collaborative_filtering(
                suid, similar_students=similar_students, top_k=None
            )
            result = workflow.run(self.database)
            scores = {row["CourseID"]: row["score"] for row in result.rows}
            for course in courses:
                if course in scores:
                    predictions[(suid, course)] = scores[course]
        return predictions

    # -- scoring ------------------------------------------------------------

    def score(
        self, name: str, predictions: Dict[Tuple[int, int], float]
    ) -> PredictorScore:
        errors = []
        for suid, course, true_rating in self.held_out:
            predicted = predictions.get((suid, course))
            if predicted is not None:
                errors.append(predicted - true_rating)
        if not errors:
            return PredictorScore(
                name=name, mae=None, rmse=None, coverage=0.0, predictions=0
            )
        mae = sum(abs(error) for error in errors) / len(errors)
        rmse = math.sqrt(sum(error * error for error in errors) / len(errors))
        return PredictorScore(
            name=name,
            mae=mae,
            rmse=rmse,
            coverage=len(errors) / len(self.held_out),
            predictions=len(errors),
        )


def evaluate_predictors(
    database: Database,
    fraction: float = 0.2,
    seed: int = 0,
    max_pairs: Optional[int] = None,
    similar_students: int = 15,
) -> List[PredictorScore]:
    """The full protocol: split, hide, predict with all three, restore."""
    held_out = holdout_split(
        database, fraction=fraction, seed=seed, max_pairs=max_pairs
    )
    if not held_out:
        return []
    with HoldoutEvaluation(database, held_out) as evaluation:
        return [
            evaluation.score("global_mean", evaluation.predict_global_mean()),
            evaluation.score("course_mean", evaluation.predict_course_mean()),
            evaluation.score(
                "cf", evaluation.predict_cf(similar_students=similar_students)
            ),
        ]
