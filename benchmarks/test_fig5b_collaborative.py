"""Experiment F5b — Figure 5(b): the stacked collaborative-filtering
workflow (extend ratings → recommend similar students by inverse
Euclidean → recommend courses by the neighbours' average ratings).

Checks: dual-path rank identity, the neighbour count sweep, and that CF
output differs from raw popularity (it is actually personalized).
"""

import pytest
from conftest import write_report

from repro.core import strategies
from repro.evalkit.metrics import overlap_at_k


def test_fig5b_direct_path(benchmark, bench_db, active_student):
    workflow = strategies.collaborative_filtering(
        active_student, similar_students=10, top_k=10
    )
    result = benchmark(workflow.run, bench_db)
    assert len(result) > 0
    scores = result.column("score")
    assert scores == sorted(scores, reverse=True)
    assert all(1.0 <= score <= 5.0 for score in scores)


def test_fig5b_compiled_sql_path(benchmark, bench_db, active_student):
    workflow = strategies.collaborative_filtering(
        active_student, similar_students=10, top_k=10
    )
    result = benchmark(workflow.run_sql, bench_db)
    assert len(result) > 0


def test_fig5b_paths_rank_identical(benchmark, bench_db, active_student):
    workflow = strategies.collaborative_filtering(
        active_student, similar_students=10, top_k=10
    )

    def both(db):
        return workflow.run(db), workflow.run_sql(db)

    direct, compiled = benchmark(both, bench_db)
    assert direct.column("CourseID") == compiled.column("CourseID")
    for left, right in zip(direct.rows, compiled.rows):
        assert left["score"] == pytest.approx(right["score"])

    lines = [
        f"student {active_student}, 10 neighbours, top 10 courses",
        "rank | score | course",
    ]
    for rank, row in enumerate(direct.rows, start=1):
        lines.append(f"{rank:>4} | {row['score']:.2f} | {row['Title']}")
    lines.append("direct == compiled SQL: True")
    write_report("fig5b_collaborative", lines)


def test_fig5b_neighbour_sweep(benchmark, bench_db, active_student):
    """Sweep the neighbour count; more neighbours -> denser coverage."""

    def sweep(db):
        coverage = {}
        for k in (1, 5, 20):
            workflow = strategies.collaborative_filtering(
                active_student, similar_students=k, top_k=50
            )
            coverage[k] = len(workflow.run(db))
        return coverage

    coverage = benchmark(sweep, bench_db)
    assert coverage[1] <= coverage[5] <= coverage[20]
    lines = ["neighbours -> courses with defined scores:"] + [
        f"  k={k:>3}: {count}" for k, count in coverage.items()
    ]
    write_report("fig5b_neighbour_sweep", lines)


def test_fig5b_differs_from_popularity(benchmark, bench_db, active_student):
    """Who-wins shape: CF is not just global popularity."""
    workflow = strategies.collaborative_filtering(
        active_student, similar_students=10, top_k=10
    )

    def compare(db):
        cf = workflow.run(db).column("CourseID")
        popular = db.query(
            "SELECT CourseID FROM Enrollments GROUP BY CourseID "
            "ORDER BY COUNT(*) DESC, CourseID LIMIT 10"
        ).column("CourseID")
        return cf, popular

    cf, popular = benchmark(compare, bench_db)
    assert overlap_at_k(cf, popular, 10) < 1.0
