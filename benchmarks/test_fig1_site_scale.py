"""Experiment F1/S2 — the Section-2 operational statistics.

The paper (September 2008): 18,605 courses, 134,000 comments, 50,300+
ratings, 9,000 of ~14,000 students using the site.  The generator's
``full`` preset reproduces those numbers exactly; smaller presets keep
the proportions.  This bench asserts the generated site hits its
configured counts exactly and reports the paper-vs-measured table.
"""

from conftest import write_report

from repro.evalkit.reports import PAPER_STATISTICS, site_scale_report


def test_site_scale_matches_configuration(benchmark, bench_app, scale_config):
    stats = benchmark(bench_app.site_statistics)
    assert stats["courses"] == scale_config.courses
    assert stats["comments"] == scale_config.comments
    assert stats["ratings"] == scale_config.ratings
    assert stats["students"] == scale_config.students
    assert stats["student_users"] == scale_config.registered_users

    rows = site_scale_report(bench_app)
    lines = [f"{'statistic':>14} | {'paper':>8} | {'measured':>8} | ratio"]
    for row in rows:
        lines.append(
            f"{row['statistic']:>14} | {row['paper']:>8} | "
            f"{row['measured']:>8} | {row['ratio']:.4f}"
        )
    write_report("fig1_site_scale", lines)


def test_adoption_shape(benchmark, bench_app, scale_config):
    """'Used by a very large fraction' — most students hold accounts."""
    stats = benchmark(bench_app.site_statistics)
    adoption = stats["student_users"] / stats["students"]
    paper_adoption = (
        PAPER_STATISTICS["student_users"] / PAPER_STATISTICS["students"]
    )
    # Paper: 9000/14000 ≈ 0.64.  Shape: majority adoption, within 2x.
    assert adoption > 0.4
    assert 0.5 < adoption / paper_adoption < 2.0


def test_comments_exceed_ratings(benchmark, bench_app):
    """Paper shape: 134k comments vs 50.3k ratings — comments dominate."""
    stats = benchmark(bench_app.site_statistics)
    assert stats["comments"] > stats["ratings"]
