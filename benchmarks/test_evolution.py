"""Experiment S2b — adoption and activity growth over the first year.

Section 2's narrative: "A little over a year after its launch, the
system is already used by more than 9,000 Stanford students" — i.e. the
site *grew into* its user base.  The generated contribution history
follows a growth curve; this bench verifies the shape and reports the
month-by-month timeline (the answer to the paper's "how do such systems
evolve over time?" question, for the contribution dimension).
"""

from conftest import write_report

from repro.evalkit.evolution import (
    activity_timeline,
    growth_summary,
    render_timeline,
)


def test_adoption_grows_to_full_registration(benchmark, bench_db, scale_config):
    summary = benchmark(growth_summary, bench_db)
    assert summary["total_comments"] == scale_config.comments
    assert summary["final_contributors"] == scale_config.registered_users
    # Accelerating adoption: the later half of months carries the
    # majority of activity.
    assert summary["second_half_share"] > 0.55
    # Most of the catalog accumulates at least one comment.
    assert summary["catalog_coverage"] > 0.5


def test_adoption_curve_monotone(benchmark, bench_db):
    timeline = benchmark(activity_timeline, bench_db)
    cumulative = [point.cumulative_contributors for point in timeline]
    assert cumulative == sorted(cumulative)
    coverage = [point.cumulative_courses_covered for point in timeline]
    assert coverage == sorted(coverage)

    summary = growth_summary(bench_db)
    lines = [
        "month       comments  (cumulative users)",
        render_timeline(timeline),
        "",
        f"months observed          : {summary['months']}",
        f"final contributors       : {summary['final_contributors']}",
        f"second-half activity     : {summary['second_half_share']:.0%}",
        f"catalog coverage         : {summary['catalog_coverage']:.0%}",
    ]
    write_report("evolution_adoption", lines)
