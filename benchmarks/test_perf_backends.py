"""Experiment P5 — execution backends (minidb vs stdlib sqlite3).

The paper deploys FlexRecs by compiling workflows to SQL "executed by a
conventional DBMS".  The backend layer makes that literal: the same
workflow object renders per dialect and runs on any registered driver.
This experiment prices the portability on the medium CF recommend
workload:

* **minidb (warm)**    — the in-process engine, memoized compilation;
* **sqlite3 (cold)**   — first call: render + full snapshot mirror +
  execute on stdlib sqlite3;
* **sqlite3 (warm)**   — steady state: version-keyed sync finds every
  table fingerprint unchanged and copies nothing;
* **sqlite3 (resync)** — one table dirtied between calls, so the sync
  recopies exactly that table.

Both engines must return the identical ranking (the cross-backend
equivalence property, asserted here on the benchmark workload too).
"""

import time

import pytest
from conftest import write_bench_json, write_report

from repro.backends import create_backend
from repro.core import strategies

NEIGHBOURS = 10
TOP_K = 10


@pytest.fixture(scope="module")
def workflow(active_student):
    return strategies.collaborative_filtering(
        active_student, similar_students=NEIGHBOURS, top_k=TOP_K
    )


def test_backends_agree_on_bench_workload(bench_db, workflow):
    via_minidb = workflow.run_sql(bench_db)
    with create_backend("sqlite3", bench_db) as backend:
        via_sqlite = workflow.run_backend(backend)
    assert via_minidb.columns == via_sqlite.columns
    assert via_minidb.column("CourseID") == via_sqlite.column("CourseID")
    for left, right in zip(via_minidb.rows, via_sqlite.rows):
        assert left["score"] == pytest.approx(right["score"], rel=1e-12)


def test_report_backend_timings(bench_db, workflow, benchmark):
    def measure():
        timings = {}
        workflow.run_sql(bench_db)  # warm the minidb plan/memo caches
        samples = []
        for _ in range(5):
            start = time.perf_counter()
            workflow.run_sql(bench_db)
            samples.append(time.perf_counter() - start)
        timings["minidb (warm)"] = min(samples)

        cold_samples = []
        for _ in range(3):
            with create_backend("sqlite3", bench_db) as backend:
                start = time.perf_counter()
                workflow.run_backend(backend)
                cold_samples.append(time.perf_counter() - start)
        timings["sqlite3 (cold: mirror + execute)"] = min(cold_samples)

        backend = create_backend("sqlite3", bench_db)
        try:
            workflow.run_backend(backend)  # mirror established
            samples = []
            for _ in range(5):
                start = time.perf_counter()
                workflow.run_backend(backend)
                samples.append(time.perf_counter() - start)
            timings["sqlite3 (warm: no-op sync)"] = min(samples)

            first_suid = bench_db.query(
                "SELECT MIN(SuID) FROM Students"
            ).scalar()
            samples = []
            for _ in range(3):
                # dirty one table so the version-keyed sync recopies it
                bench_db.execute(
                    "UPDATE Students SET Class = Class "
                    f"WHERE SuID = {first_suid}"
                )
                start = time.perf_counter()
                workflow.run_backend(backend)
                samples.append(time.perf_counter() - start)
            timings["sqlite3 (resync one table)"] = min(samples)
        finally:
            backend.close()
        return timings

    timings = benchmark.pedantic(measure, rounds=1, iterations=1)
    lines = [
        f"Figure 5(b) CF on execution backends, {NEIGHBOURS} neighbours, "
        f"top {TOP_K}:"
    ]
    for name, seconds in sorted(timings.items(), key=lambda kv: kv[1]):
        lines.append(f"  {name:>33}: {seconds * 1000:8.1f} ms")
    warm_ratio = timings["sqlite3 (warm: no-op sync)"] / timings["minidb (warm)"]
    sync_amortization = (
        timings["sqlite3 (cold: mirror + execute)"]
        / timings["sqlite3 (warm: no-op sync)"]
    )
    lines.append(
        f"portability overhead (sqlite3 warm vs minidb warm): "
        f"{warm_ratio:.2f}x"
    )
    lines.append(
        f"version-keyed sync payoff (cold mirror vs warm repeat): "
        f"{sync_amortization:.1f}x"
    )
    write_report("perf_backends", lines)
    write_bench_json(
        "backends",
        {
            "neighbours": NEIGHBOURS,
            "top_k": TOP_K,
            "timings_ms": {
                name: seconds * 1000.0 for name, seconds in timings.items()
            },
            "ops_per_sec": {
                name: (1.0 / seconds if seconds else None)
                for name, seconds in timings.items()
            },
            "speedup": {
                "sqlite3_warm_vs_minidb_warm": warm_ratio,
                "sqlite3_cold_vs_warm": sync_amortization,
            },
        },
    )
    # Shape: the no-op sync must make warm sqlite3 runs cheaper than
    # re-mirroring, and a single-table resync must stay below the cold
    # full-mirror cost.
    assert sync_amortization > 1.0
    assert (
        timings["sqlite3 (resync one table)"]
        < timings["sqlite3 (cold: mirror + execute)"]
    )
