"""Experiment F4 — Figure 4: refining "American" with "African American".

Paper: clicking "African American" in the cloud narrows 1160 matches to
123 (a 9.4x narrowing), and the cloud is recomputed over the refined
result set.

Shape targets: refinement produces a strict subset; the specific
"african american" click narrows by a substantial factor; the new cloud
differs from the old one.
"""

import pytest
from conftest import write_report

from repro.evalkit.metrics import narrowing_factor


def run_refinement(app, initial, clicked):
    session = app.search_session(initial)
    before = len(session.result)
    step = session.refine(clicked)
    return session, before, step


def test_african_american_refinement(benchmark, bench_app):
    session, before, step = benchmark(
        run_refinement, bench_app, "american", "african american"
    )
    after = len(step.result)
    assert after > 0, "refinement term must appear in the corpus"
    assert step.result.doc_id_set() <= session._steps[0].result.doc_id_set()
    factor = narrowing_factor(before, after)
    # Paper: 1160 -> 123, a 9.4x narrowing. Shape: well above 1.5x.
    assert factor > 1.5, f"narrowing only {factor:.1f}x"

    lines = [
        "refinement: 'american' -> click 'african american'",
        f"before={before}  after={after}  narrowing={factor:.1f}x "
        "(paper: 1160 -> 123 = 9.4x)",
        f"refined cloud: {', '.join(step.cloud.term_names()[:10])}",
    ]
    write_report("fig4_refinement", lines)


def test_cloud_recomputed_over_refined_set(benchmark, bench_app):
    session, _before, step = benchmark(
        run_refinement, bench_app, "american", "history"
    )
    assert step.cloud.result_size == len(step.result)
    original_terms = session._steps[0].cloud.term_names()
    refined_terms = step.cloud.term_names()
    assert refined_terms != original_terms


def test_multi_step_refinement_monotone(benchmark, bench_app):
    def chain(app):
        session = app.search_session("american")
        sizes = [len(session.result)]
        for term in ("history", "war"):
            if len(session.result) == 0:
                break
            session.refine(term)
            sizes.append(len(session.result))
        return sizes

    sizes = benchmark(chain, bench_app)
    assert sizes == sorted(sizes, reverse=True)


def test_phrase_vs_and_refinement(benchmark, bench_app):
    """Ablation: phrase refinement is at least as selective as AND.

    Clicking the cloud term "african american" requires adjacency; the
    AND interpretation merely requires co-occurrence anywhere in the
    entity.  Phrase ⊆ AND, and typically strictly narrower.
    """
    engine = bench_app.cloudsearch.engine

    def both():
        conjunctive = engine.search("american african").doc_id_set()
        phrase = engine.search('american "african american"').doc_id_set()
        return conjunctive, phrase

    conjunctive, phrase = benchmark(both)
    assert phrase <= conjunctive
    write_report(
        "fig4_phrase_vs_and",
        [
            f"'african' AND 'american' (co-occurrence): {len(conjunctive)}",
            f'"african american" (phrase, the cloud click): {len(phrase)}',
            f"phrase ⊆ AND holds: {phrase <= conjunctive}",
        ],
    )


def test_back_restores_previous_state(benchmark, bench_app):
    def roundtrip(app):
        session = app.search_session("american")
        before = session.result.doc_id_set()
        session.refine("history")
        session.back()
        return before, session.result.doc_id_set()

    before, after = benchmark(roundtrip, bench_app)
    assert before == after
