"""Experiment P7 — cloud cube navigation: lattice walks and memo reuse.

Measures the three cost tiers of :class:`repro.clouds.cube.CloudCube`
navigation over the course dimensions:

* ``first walk`` — a fresh cube walking root -> drill-down(department)
  -> one quarter slice (cold apex + incremental lattice edges);
* ``re-walk``    — the same navigation on the same cube (all memo hits);
* ``edge cost``  — for the largest department cell, the incremental
  narrowed build (subtract dropped docs from the parent's aggregates)
  vs the cold ``build_for_docs`` of the same cell, reported side by
  side (whichever wins, the clouds are bit-identical — the differential
  suite pins that; this experiment prices the choice).

``BENCH_cloud_cube.json`` records walk timings and the memo speedup.
"""

import time

from conftest import BENCH_SCALE, write_bench_json, write_report


def _signature(cloud):
    return [
        (term.term, term.score, term.occurrences, term.result_df, term.bucket)
        for term in cloud.terms
    ]


def _walk(cube):
    """Root -> full department drill-down -> one quarter slice."""
    clouds = []
    root = cube.root()
    clouds.append(root.cloud)
    children = cube.drill_down(root, "department")
    clouds.extend(cell.cloud for _value, cell in sorted(children.items()))
    largest = max(children.values(), key=lambda cell: cell.result_size)
    quarters = cube.dimension_values(largest, "quarter")
    if quarters:
        clouds.append(cube.slice(largest, "quarter", quarters[0]).cloud)
    return largest, clouds


def test_cube_walks_and_memo_reuse(bench_app):
    cube = bench_app.cloudsearch.cube()

    started = time.perf_counter()
    largest, first_clouds = _walk(cube)
    first_s = time.perf_counter() - started
    cells = len(first_clouds)

    started = time.perf_counter()
    _largest, second_clouds = _walk(cube)
    rewalk_s = time.perf_counter() - started

    assert [_signature(c) for c in second_clouds] == [
        _signature(c) for c in first_clouds
    ]
    assert cube.stats["memo_hits"] >= cells

    # Price one lattice edge both ways on the largest department cell.
    builder = cube.builder
    started = time.perf_counter()
    cold_cloud = builder.build_for_docs(largest.doc_ids)
    cold_edge_s = time.perf_counter() - started
    root_docs = cube.root().doc_ids
    started = time.perf_counter()
    narrowed_cloud = builder.build_for_docs_narrowed(
        largest.doc_ids, root_docs
    )
    narrowed_edge_s = time.perf_counter() - started
    assert _signature(narrowed_cloud) == _signature(cold_cloud)

    memo_speedup = first_s / rewalk_s if rewalk_s > 0 else float("inf")
    lines = [
        f"cloud cube navigation, scale={BENCH_SCALE} "
        f"({cells} cells per walk, largest department cell: "
        f"{largest.result_size} docs)",
        f"{'walk':>12} | {'total ms':>10} | {'ms/cell':>9}",
        "-" * 38,
        f"{'first':>12} | {first_s * 1e3:>10.1f} | "
        f"{first_s / cells * 1e3:>9.2f}",
        f"{'re-walk':>12} | {rewalk_s * 1e3:>10.1f} | "
        f"{rewalk_s / cells * 1e3:>9.2f}",
        "",
        f"memo speedup: {memo_speedup:.1f}x; lattice edge on the largest "
        f"department cell:",
        f"  cold build_for_docs      {cold_edge_s * 1e3:8.2f} ms",
        f"  narrowed (incremental)   {narrowed_edge_s * 1e3:8.2f} ms",
        "clouds bit-identical on every path",
    ]
    write_report("perf_cloud_cube", lines)
    write_bench_json(
        "cloud_cube",
        {
            "cells_per_walk": cells,
            "largest_department_docs": largest.result_size,
            "first_walk_ms": round(first_s * 1e3, 3),
            "rewalk_ms": round(rewalk_s * 1e3, 3),
            "memo_speedup": round(memo_speedup, 2),
            "edge_cold_ms": round(cold_edge_s * 1e3, 3),
            "edge_narrowed_ms": round(narrowed_edge_s * 1e3, 3),
            "clouds_bit_identical": True,
        },
    )
    assert memo_speedup > 1.0
