"""Experiment L2 — "The Power of a Closed Community" (Section 2.2).

The paper: in the closed community "we already see much higher quality
comments than what one typically finds in public course evaluation sites
or in social sites".  We generate the same university twice — once with
the closed-community contribution model and once with the open-community
simulation (a fraction of anonymous spam/drive-by contributions) — and
compare comment-quality metrics.

Shape targets: the closed corpus is more topical, longer, less
extreme in its ratings, and its ratings carry more signal about actual
course outcomes.
"""

import dataclasses

import pytest
from conftest import BENCH_SCALE, write_report

from repro.datagen import SCALES, generate_university
from repro.evalkit.quality import comment_quality_report


@pytest.fixture(scope="module")
def corpora():
    base = SCALES[BENCH_SCALE]
    closed = generate_university(scale=base, seed=11)
    open_config = dataclasses.replace(
        base, name=f"{base.name}-open", community="open"
    )
    opened = generate_university(scale=open_config, seed=11)
    return closed, opened


def test_closed_community_quality_wins(benchmark, corpora):
    closed_db, open_db = corpora

    def compare():
        return (
            comment_quality_report(closed_db),
            comment_quality_report(open_db),
        )

    closed, opened = benchmark(compare)
    # Same corpus size, different quality.
    assert closed.comments == opened.comments
    assert closed.topical_fraction > opened.topical_fraction + 0.1
    assert closed.mean_words > opened.mean_words
    assert closed.rating_extremity < opened.rating_extremity - 0.1
    assert closed.rating_signal > opened.rating_signal

    lines = [
        f"{'metric':>18} | {'closed':>8} | {'open':>8}",
    ]
    for key in (
        "comments",
        "mean_words",
        "topical_fraction",
        "rating_extremity",
        "rating_signal",
    ):
        left = closed.as_dict()[key]
        right = opened.as_dict()[key]
        lines.append(f"{key:>18} | {left!s:>8} | {right!s:>8}")
    write_report("lessons_community_quality", lines)


def test_spam_pollutes_search_clouds(benchmark, corpora):
    """Off-topic contributions degrade the cloud's topical coherence."""
    from repro.clouds.cloud import CloudBuilder
    from repro.search.engine import SearchEngine
    from repro.search.entity import course_entity

    closed_db, open_db = corpora

    def cloud_for(db):
        engine = SearchEngine(db, course_entity())
        engine.build()
        builder = CloudBuilder(engine, min_result_df=1)
        builder.prepare()
        return builder.build(engine.search("history"))

    def both():
        return cloud_for(closed_db), cloud_for(open_db)

    closed_cloud, open_cloud = benchmark.pedantic(both, rounds=1, iterations=1)
    spam_markers = {"lol", "meh", "ez", "sux", "essays", "dealz", "aaaaaaaa"}
    closed_spam = sum(
        1 for term in closed_cloud.term_names()
        if set(term.split()) & spam_markers
    )
    open_spam = sum(
        1 for term in open_cloud.term_names()
        if set(term.split()) & spam_markers
    )
    assert closed_spam == 0
    write_report(
        "lessons_community_clouds",
        [
            f"spam-marker terms in 'history' cloud (closed): {closed_spam}",
            f"spam-marker terms in 'history' cloud (open)  : {open_spam}",
        ],
    )
