"""Shared fixtures for the benchmark/experiment harness.

Every benchmark runs against one generated university whose scale comes
from ``REPRO_BENCH_SCALE`` (default ``small``; use ``medium`` or ``full``
for paper-scale shape checks — ``full`` reproduces the paper's exact
operational statistics and takes ~1 minute to generate).

Each experiment writes its report table to ``benchmarks/out/<exp>.txt``
so the series survive pytest's output capture; EXPERIMENTS.md records the
paper-vs-measured comparison.
"""

import json
import os
import pathlib

import pytest

from repro.courserank.app import CourseRank
from repro.datagen import SCALES, generate_university
from repro.obs import OBS

BENCH_SCALE = os.environ.get("REPRO_BENCH_SCALE", "small")
OUT_DIR = pathlib.Path(__file__).parent / "out"

#: ``REPRO_BENCH_OBS=1`` runs the whole benchmark session with the
#: observability layer enabled and dumps the merged metrics snapshot to
#: ``benchmarks/out/obs_metrics.json`` (rendered offline with
#: ``python -m repro.obs report``).  Off by default so perf numbers
#: measure the production configuration.
BENCH_OBS = os.environ.get("REPRO_BENCH_OBS", "0") == "1"


@pytest.fixture(scope="session", autouse=True)
def obs_metrics_snapshot():
    if not BENCH_OBS:
        yield
        return
    OBS.reset()
    OBS.enable()
    try:
        yield
    finally:
        OBS.disable()
        OUT_DIR.mkdir(exist_ok=True)
        path = OUT_DIR / "obs_metrics.json"
        path.write_text(json.dumps(OBS.snapshot(), indent=2, default=str))
        print(f"\n[obs] metrics snapshot -> {path}")


@pytest.fixture(scope="session")
def scale_name():
    return BENCH_SCALE


@pytest.fixture(scope="session")
def scale_config():
    return SCALES[BENCH_SCALE]


@pytest.fixture(scope="session")
def bench_db():
    return generate_university(scale=BENCH_SCALE, seed=2008)


@pytest.fixture(scope="session")
def bench_app(bench_db):
    app = CourseRank(bench_db)
    app.cloudsearch.build()
    return app


@pytest.fixture(scope="session")
def active_student(bench_db):
    """A student with enough ratings to drive CF workflows."""
    return bench_db.query(
        "SELECT SuID FROM Comments WHERE Rating IS NOT NULL "
        "GROUP BY SuID HAVING COUNT(*) >= 3 ORDER BY SuID LIMIT 1"
    ).scalar()


def write_report(name: str, lines) -> pathlib.Path:
    """Persist an experiment's report table under benchmarks/out/."""
    OUT_DIR.mkdir(exist_ok=True)
    path = OUT_DIR / f"{name}.txt"
    text = "\n".join(lines) if not isinstance(lines, str) else lines
    path.write_text(text + "\n")
    print(f"\n[{name}]\n{text}")
    return path


def write_bench_json(name: str, payload: dict) -> pathlib.Path:
    """Persist a machine-readable benchmark summary as BENCH_<name>.json.

    The committed JSON twins of the human-readable report tables: stable
    keys (ops/sec, speedups, p50/p99 latencies) that scripts and CI can
    consume without scraping text.  ``check_report_freshness.py`` holds
    these to the same regeneration discipline as the ``.txt`` reports.
    """
    OUT_DIR.mkdir(exist_ok=True)
    path = OUT_DIR / f"BENCH_{name}.json"
    document = {"name": name, "bench_scale": BENCH_SCALE}
    document.update(payload)
    path.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
    print(f"\n[{name}] machine-readable summary -> {path}")
    return path
