#!/usr/bin/env python3
"""Regeneration drift check for the committed benchmark reports.

Every experiment writes its table to ``benchmarks/out/<name>.txt`` and the
file is committed so EXPERIMENTS.md and the README can cite it.  When a
benchmark's code changes but its report is not regenerated, the committed
numbers silently describe code that no longer exists.  This script maps
each ``write_report("<name>", ...)`` call site to its report file and
fails (exit 1, loud listing) when the benchmark source has a newer git
commit than the report it produces — or when the report is missing
entirely.

Run from anywhere inside the repository:

    python benchmarks/check_report_freshness.py

CI runs it as a non-blocking step in the benchmarks job; regenerate with
``PYTHONPATH=src python -m pytest benchmarks/<file> -q`` and commit the
refreshed ``benchmarks/out/*.txt``.
"""

from __future__ import annotations

import pathlib
import re
import subprocess
import sys

BENCH_DIR = pathlib.Path(__file__).resolve().parent
REPO = BENCH_DIR.parent
OUT_DIR = BENCH_DIR / "out"
WRITE_REPORT = re.compile(r"""write_report\(\s*["']([\w-]+)["']""")
WRITE_BENCH_JSON = re.compile(r"""write_bench_json\(\s*["']([\w-]+)["']""")


def last_commit_epoch(path: pathlib.Path) -> int:
    """Unix time of the last commit touching ``path`` (0 if untracked)."""
    proc = subprocess.run(
        ["git", "log", "-1", "--format=%ct", "--", str(path)],
        cwd=REPO,
        capture_output=True,
        text=True,
        check=True,
    )
    text = proc.stdout.strip()
    return int(text) if text else 0


def report_files(source: pathlib.Path) -> list:
    """Report paths a benchmark source writes: .txt tables + BENCH JSON."""
    text = source.read_text()
    files = [OUT_DIR / f"{name}.txt" for name in WRITE_REPORT.findall(text)]
    files += [
        OUT_DIR / f"BENCH_{name}.json"
        for name in WRITE_BENCH_JSON.findall(text)
    ]
    return files


def main() -> int:
    stale = []
    for source in sorted(BENCH_DIR.glob("test_*.py")):
        source_epoch = last_commit_epoch(source)
        for report in report_files(source):
            if not report.exists():
                stale.append((source.name, report, "missing"))
                continue
            report_epoch = last_commit_epoch(report)
            if report_epoch < source_epoch:
                stale.append(
                    (
                        source.name,
                        report,
                        f"report committed {source_epoch - report_epoch}s "
                        "before its benchmark's last change",
                    )
                )
    if stale:
        print("STALE BENCHMARK REPORTS — regenerate and commit:")
        for source_name, report, reason in stale:
            print(f"  {report.relative_to(REPO)}  [{source_name}]: {reason}")
        print(
            "\nRegenerate with: PYTHONPATH=src python -m pytest "
            "benchmarks/<file> -q   (then commit benchmarks/out/)"
        )
        return 1
    print("benchmark reports are fresh relative to their benchmark code")
    return 0


if __name__ == "__main__":
    sys.exit(main())
