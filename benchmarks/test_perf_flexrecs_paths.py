"""Experiment P2 — FlexRecs execution paths (ablation).

Section 3.2 asks "how can we optimize the execution of workflows?".  We
compare three ways to run the Figure 5(b) CF strategy:

* **direct**   — the in-memory operator evaluator;
* **compiled** — FlexRecs' compile-to-SQL path (the paper's deployment);
* **hand SQL** — the query a developer would hand-write for the same
  semantics (the "recommendation logic embedded in application code"
  baseline the paper argues against).

All three must agree on the ranking; the interesting output is the cost
of declarativeness (compiled vs hand) and of the SQL detour (direct vs
compiled).
"""

import time

import pytest
from conftest import write_bench_json, write_report

from repro.core import executor as executor_module
from repro.core import strategies
from repro.core.extendcache import clear_extend_cache
from repro.datagen import generate_university
from repro.minidb import planner as planner_module
from repro.minidb.plancache import clear_statement_cache

NEIGHBOURS = 10
TOP_K = 10


def hand_written_cf_sql(suid: int, neighbours: int, top_k: int) -> str:
    """The CF query a developer would write directly against the schema."""
    return f"""
    SELECT c.CourseID, c.DepID, c.Title, c.Description, c.Units, c.Url,
           AVG(CAST_FLOAT(cm.Rating)) AS score
    FROM Courses c
    JOIN Comments cm ON cm.CourseID = c.CourseID
      AND cm.Rating IS NOT NULL
    JOIN (
      SELECT o.SuID AS nid,
             1.0 / (1.0 + SQRT(SUM((o.Rating - m.Rating) * (o.Rating - m.Rating)))) AS sim
      FROM Comments o
      JOIN Comments m ON o.CourseID = m.CourseID
        AND m.SuID = {suid} AND m.Rating IS NOT NULL
      WHERE o.SuID <> {suid} AND o.Rating IS NOT NULL
      GROUP BY o.SuID
      ORDER BY sim DESC, o.SuID ASC
      LIMIT {neighbours}
    ) nb ON cm.SuID = nb.nid
    GROUP BY c.CourseID
    ORDER BY score DESC, c.CourseID ASC
    LIMIT {top_k}
    """


@pytest.fixture(scope="module")
def workflow(active_student):
    return strategies.collaborative_filtering(
        active_student, similar_students=NEIGHBOURS, top_k=TOP_K
    )


def test_direct_path(benchmark, bench_db, workflow):
    result = benchmark(workflow.run, bench_db)
    assert len(result) > 0


def test_compiled_path(benchmark, bench_db, workflow):
    result = benchmark(workflow.run_sql, bench_db)
    assert len(result) > 0


def test_hand_written_path(benchmark, bench_db, active_student):
    sql = hand_written_cf_sql(active_student, NEIGHBOURS, TOP_K)
    result = benchmark(bench_db.query, sql)
    assert len(result) > 0


def test_all_three_paths_agree(benchmark, bench_db, workflow, active_student):
    def run_all(db):
        direct = workflow.run(db)
        compiled = workflow.run_sql(db)
        hand = db.query(hand_written_cf_sql(active_student, NEIGHBOURS, TOP_K))
        return direct, compiled, hand

    direct, compiled, hand = benchmark(run_all, bench_db)
    assert direct.column("CourseID") == compiled.column("CourseID")
    assert direct.column("CourseID") == hand.column("CourseID")
    hand_scores = hand.column("score")
    for row, hand_score in zip(direct.rows, hand_scores):
        assert row["score"] == pytest.approx(hand_score)


def test_report_path_timings(bench_db, active_student, benchmark):
    sql = hand_written_cf_sql(active_student, NEIGHBOURS, TOP_K)

    def cold_interpreted():
        """Pre-fast-path behaviour: no caches, no compiled closures.

        Flipping the planner kill-switch off rebuilds the plan the way
        every run used to execute — tree-walking evaluation, no subquery
        flattening, no itemgetter emission — so this row is the faithful
        "current cold path" the warm repeat is measured against.
        """
        planner_module.COMPILE_EXPRESSIONS = False
        try:
            samples = []
            for _ in range(3):
                fresh = strategies.collaborative_filtering(
                    active_student, similar_students=NEIGHBOURS, top_k=TOP_K
                )
                bench_db.clear_plan_cache()
                clear_statement_cache()
                start = time.perf_counter()
                fresh.run_sql(bench_db)
                samples.append(time.perf_counter() - start)
            # min-of-N: the least-disturbed sample estimates true cost
            return min(samples)
        finally:
            planner_module.COMPILE_EXPRESSIONS = True
            bench_db.clear_plan_cache()
            clear_statement_cache()

    def measure():
        timings = {}
        timings["compiled SQL (cold, no caches)"] = cold_interpreted()
        warmed = strategies.collaborative_filtering(
            active_student, similar_students=NEIGHBOURS, top_k=TOP_K
        )
        runners = {
            "direct": lambda: warmed.run(bench_db),
            "compiled SQL (warm)": lambda: warmed.run_sql(bench_db),
            "hand-written SQL": lambda: bench_db.query(sql),
        }
        for name, runner in runners.items():
            runner()  # warm (UDF registration, caches)
            samples = []
            for _ in range(5):
                start = time.perf_counter()
                runner()
                samples.append(time.perf_counter() - start)
            timings[name] = min(samples)
        return timings

    timings = benchmark.pedantic(measure, rounds=1, iterations=1)
    lines = [
        f"Figure 5(b) CF, {NEIGHBOURS} neighbours, top {TOP_K} "
        f"(student {active_student}):"
    ]
    for name, seconds in sorted(timings.items(), key=lambda kv: kv[1]):
        lines.append(f"  {name:>19}: {seconds * 1000:8.1f} ms")
    overhead = timings["compiled SQL (warm)"] / timings["hand-written SQL"]
    warm_speedup = (
        timings["compiled SQL (cold, no caches)"] / timings["compiled SQL (warm)"]
    )
    lines.append(
        f"declarativeness overhead (compiled vs hand-written): {overhead:.2f}x"
    )
    lines.append(
        f"fast-path speedup (cold interpreted run vs warm repeat): "
        f"{warm_speedup:.1f}x"
    )
    write_report("perf_flexrecs_paths", lines)
    write_bench_json(
        "flexrecs_paths",
        {
            "neighbours": NEIGHBOURS,
            "top_k": TOP_K,
            "timings_ms": {
                name: seconds * 1000.0 for name, seconds in timings.items()
            },
            "ops_per_sec": {
                name: (1.0 / seconds if seconds else None)
                for name, seconds in timings.items()
            },
            "speedup": {
                "warm_vs_cold_interpreted": warm_speedup,
                "overhead_compiled_vs_hand_sql": overhead,
            },
        },
    )
    # Shape: a warm repeat skips compile/parse/plan entirely and runs the
    # compiled/pruned pipeline, and the generated SQL costs at most a
    # small factor over hand SQL.
    assert warm_speedup >= 3.0
    assert overhead < 1.5


def test_report_fastpath(benchmark):
    """Experiment P2b — the direct-path recommend fast path (ablation).

    Three rows per scale for the Figure 5(b) CF strategy:

    * **cold (naive)** — ``FAST_RECOMMEND`` off: full extend scans and
      all-pairs comparator calls, the pre-fast-path pipeline;
    * **fast, cold cache** — pruning + hoisting on, but the extend-vector
      cache cleared before every run (first-request cost);
    * **fast, warm cache** — steady state: cached stats-carrying vectors,
      postings pruning, bounded-heap top-k.

    All three produce tuple-identical output (asserted here and by the
    property tests), so the timings are a pure ablation.
    """
    fastpath_neighbours = 20

    def measure():
        results = {}
        for scale in ("small", "medium"):
            db = generate_university(scale=scale, seed=2008)
            student = db.query(
                "SELECT SuID FROM Comments WHERE Rating IS NOT NULL "
                "GROUP BY SuID HAVING COUNT(*) >= 3 ORDER BY SuID LIMIT 1"
            ).scalar()
            workflow = strategies.collaborative_filtering(
                student, similar_students=fastpath_neighbours, top_k=TOP_K
            )

            def sample(runner, repeats):
                # min-of-N: the least-disturbed sample estimates true cost
                samples = []
                for _ in range(repeats):
                    start = time.perf_counter()
                    runner()
                    samples.append(time.perf_counter() - start)
                return min(samples)

            executor_module.FAST_RECOMMEND = False
            try:
                naive_result = workflow.run(db)
                naive = sample(lambda: workflow.run(db), 3)
            finally:
                executor_module.FAST_RECOMMEND = True

            def cold_run():
                clear_extend_cache(db)
                return workflow.run(db)

            cold_result = cold_run()
            cold = sample(cold_run, 3)
            warm_result = workflow.run(db)
            warm = sample(lambda: workflow.run(db), 5)
            assert naive_result.rows == cold_result.rows == warm_result.rows
            results[scale] = {
                "naive": naive,
                "cold": cold,
                "warm": warm,
                "stats": warm_result.stats,
                "student": student,
            }
        return results

    results = benchmark.pedantic(measure, rounds=1, iterations=1)
    lines = [
        f"Direct-path CF (Figure 5(b)), {fastpath_neighbours} neighbours, "
        f"top {TOP_K}:"
    ]
    for scale, data in results.items():
        speedup = data["naive"] / data["warm"]
        pairs = sum(s.candidates + s.pruned for s in data["stats"])
        pruned = sum(s.pruned for s in data["stats"])
        hits = sum(s.cache_hits for s in data["stats"])
        lines.append(f"  scale={scale} (student {data['student']}):")
        lines.append(
            f"    cold (naive, fast path off): {data['naive'] * 1000:8.1f} ms"
        )
        lines.append(
            f"    fast, cold extend cache:     {data['cold'] * 1000:8.1f} ms"
        )
        lines.append(
            f"    fast, warm extend cache:     {data['warm'] * 1000:8.1f} ms"
        )
        lines.append(
            f"    warm-over-cold speedup: {speedup:.1f}x; pruned "
            f"{pruned}/{pairs} candidate pairs; {hits} extend-cache hits"
        )
    write_report("perf_flexrecs_fastpath", lines)
    assert results["medium"]["naive"] / results["medium"]["warm"] >= 5.0
