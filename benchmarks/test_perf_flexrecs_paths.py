"""Experiment P2 — FlexRecs execution paths (ablation).

Section 3.2 asks "how can we optimize the execution of workflows?".  We
compare three ways to run the Figure 5(b) CF strategy:

* **direct**   — the in-memory operator evaluator;
* **compiled** — FlexRecs' compile-to-SQL path (the paper's deployment);
* **hand SQL** — the query a developer would hand-write for the same
  semantics (the "recommendation logic embedded in application code"
  baseline the paper argues against).

All three must agree on the ranking; the interesting output is the cost
of declarativeness (compiled vs hand) and of the SQL detour (direct vs
compiled).
"""

import time

import pytest
from conftest import write_report

from repro.core import strategies

NEIGHBOURS = 10
TOP_K = 10


def hand_written_cf_sql(suid: int, neighbours: int, top_k: int) -> str:
    """The CF query a developer would write directly against the schema."""
    return f"""
    SELECT c.CourseID, c.DepID, c.Title, c.Description, c.Units, c.Url,
           AVG(CAST_FLOAT(cm.Rating)) AS score
    FROM Courses c
    JOIN Comments cm ON cm.CourseID = c.CourseID
      AND cm.Rating IS NOT NULL
    JOIN (
      SELECT o.SuID AS nid,
             1.0 / (1.0 + SQRT(SUM((o.Rating - m.Rating) * (o.Rating - m.Rating)))) AS sim
      FROM Comments o
      JOIN Comments m ON o.CourseID = m.CourseID
        AND m.SuID = {suid} AND m.Rating IS NOT NULL
      WHERE o.SuID <> {suid} AND o.Rating IS NOT NULL
      GROUP BY o.SuID
      ORDER BY sim DESC, o.SuID ASC
      LIMIT {neighbours}
    ) nb ON cm.SuID = nb.nid
    GROUP BY c.CourseID
    ORDER BY score DESC, c.CourseID ASC
    LIMIT {top_k}
    """


@pytest.fixture(scope="module")
def workflow(active_student):
    return strategies.collaborative_filtering(
        active_student, similar_students=NEIGHBOURS, top_k=TOP_K
    )


def test_direct_path(benchmark, bench_db, workflow):
    result = benchmark(workflow.run, bench_db)
    assert len(result) > 0


def test_compiled_path(benchmark, bench_db, workflow):
    result = benchmark(workflow.run_sql, bench_db)
    assert len(result) > 0


def test_hand_written_path(benchmark, bench_db, active_student):
    sql = hand_written_cf_sql(active_student, NEIGHBOURS, TOP_K)
    result = benchmark(bench_db.query, sql)
    assert len(result) > 0


def test_all_three_paths_agree(benchmark, bench_db, workflow, active_student):
    def run_all(db):
        direct = workflow.run(db)
        compiled = workflow.run_sql(db)
        hand = db.query(hand_written_cf_sql(active_student, NEIGHBOURS, TOP_K))
        return direct, compiled, hand

    direct, compiled, hand = benchmark(run_all, bench_db)
    assert direct.column("CourseID") == compiled.column("CourseID")
    assert direct.column("CourseID") == hand.column("CourseID")
    hand_scores = hand.column("score")
    for row, hand_score in zip(direct.rows, hand_scores):
        assert row["score"] == pytest.approx(hand_score)


def test_report_path_timings(bench_db, workflow, active_student, benchmark):
    sql = hand_written_cf_sql(active_student, NEIGHBOURS, TOP_K)
    runners = {
        "direct": lambda: workflow.run(bench_db),
        "compiled SQL": lambda: workflow.run_sql(bench_db),
        "hand-written SQL": lambda: bench_db.query(sql),
    }

    def measure():
        timings = {}
        for name, runner in runners.items():
            runner()  # warm (UDF registration, caches)
            start = time.perf_counter()
            for _ in range(3):
                runner()
            timings[name] = (time.perf_counter() - start) / 3
        return timings

    timings = benchmark.pedantic(measure, rounds=1, iterations=1)
    lines = [
        f"Figure 5(b) CF, {NEIGHBOURS} neighbours, top {TOP_K} "
        f"(student {active_student}):"
    ]
    for name, seconds in sorted(timings.items(), key=lambda kv: kv[1]):
        lines.append(f"  {name:>17}: {seconds * 1000:8.1f} ms")
    overhead = timings["compiled SQL"] / timings["hand-written SQL"]
    lines.append(
        f"declarativeness overhead (compiled vs hand-written): {overhead:.2f}x"
    )
    write_report("perf_flexrecs_paths", lines)
    # Shape: the generated SQL costs at most a small factor over hand SQL.
    assert overhead < 10.0
