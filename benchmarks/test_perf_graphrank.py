"""Experiment P6 — FolkRank engine: warm adjacency vs cold rebuilds.

The graphrank engine's value proposition is incrementality: the layered
tripartite adjacency, the uniform baseline, and the per-preference
differential are all version-cached, so a persistent engine answers a
repeating preference stream (the Zipfian head every service workload
has) at memo-hit cost, while a cold system pays layer extraction +
merge + baseline iteration + biased iteration on every request.

Configurations over the same stream (each of ~8 user/course preferences
asked twice, as a Zipfian head would):

* ``cold``      — a fresh :class:`GraphRankEngine` per request.  A cold
  system's per-request cost is constant by construction (it keeps
  nothing), so the stream cost is the measured per-preference cost
  summed over the stream;
* ``warm``      — one persistent engine over the stream: first ask of a
  preference runs one biased power iteration against the cached
  adjacency + baseline, repeats are differential-memo hits;
* ``warm-iter`` — the persistent engine with the differential memo
  cleared before every request: prices the biased iteration alone.

Every configuration returns **bit-identical** rankings — the
determinism rules (integer edge weights, ``math.fsum``) make warm vs
cold a pure performance choice.

Acceptance (ISSUE 10): at ``REPRO_BENCH_SCALE=medium`` the warm engine
answers the stream >= 3x faster than cold rebuilds; the committed
``BENCH_graphrank.json`` records the measured ratio.
"""

import time

from conftest import BENCH_SCALE, write_bench_json, write_report

from repro.graphrank import GraphRankEngine

#: each preference is asked this many times in the stream
REPEATS = 2


def _preferences(database):
    users = [
        row[0]
        for row in database.query(
            "SELECT DISTINCT SuID FROM Enrollments ORDER BY SuID LIMIT 5"
        ).rows
    ]
    courses = [
        row[0]
        for row in database.query(
            "SELECT DISTINCT CourseID FROM Enrollments "
            "ORDER BY CourseID LIMIT 3"
        ).rows
    ]
    return [(("user", suid),) for suid in users] + [
        (("course", course_id),) for course_id in courses
    ]


def test_warm_engine_beats_cold_rebuild_on_a_repeating_stream(bench_db):
    preferences = _preferences(bench_db)
    assert len(preferences) >= 4
    stream = len(preferences) * REPEATS

    # -- cold: fresh engine (adjacency + baseline + iteration) per request.
    cold_rankings = []
    cold_unique_s = 0.0
    for preference in preferences:
        started = time.perf_counter()
        engine = GraphRankEngine(bench_db)
        cold_rankings.append(engine.rank_courses(preference, top_k=10))
        cold_unique_s += time.perf_counter() - started
    # A cold system re-pays the full cost on every repeat.
    cold_stream_s = cold_unique_s * REPEATS

    # -- warm: one persistent engine over the same stream.
    warm_engine = GraphRankEngine(bench_db)
    warm_passes = [[] for _ in range(REPEATS)]
    warm_stream_s = 0.0
    for index in range(REPEATS):
        for preference in preferences:
            started = time.perf_counter()
            ranking = warm_engine.rank_courses(preference, top_k=10)
            warm_stream_s += time.perf_counter() - started
            warm_passes[index].append(ranking)
    assert all(rankings == cold_rankings for rankings in warm_passes)
    info = warm_engine.cache_info()
    assert info["rank_hits"] >= len(preferences)  # repeats hit the memo

    # -- warm-iter: memo cleared per request; prices the iteration alone.
    iter_rankings = []
    iter_s = 0.0
    for preference in preferences:
        warm_engine.clear_rank_memo()
        started = time.perf_counter()
        iter_rankings.append(warm_engine.rank_courses(preference, top_k=10))
        iter_s += time.perf_counter() - started

    assert iter_rankings == cold_rankings  # bit-identical, per the ISSUE

    speedup = cold_stream_s / warm_stream_s if warm_stream_s else float("inf")
    iter_speedup = (
        cold_unique_s / iter_s if iter_s else float("inf")
    )
    unique = len(preferences)
    lines = [
        f"graphrank ranking cost, scale={BENCH_SCALE} "
        f"({info['nodes']} nodes, {info['edges']} edges; "
        f"{unique} preferences x{REPEATS} = {stream}-request stream)",
        f"{'config':>10} | {'stream ms':>10} | {'ms/request':>10} | "
        f"{'vs cold':>8}",
        "-" * 50,
        f"{'cold':>10} | {cold_stream_s * 1e3:>10.1f} | "
        f"{cold_stream_s / stream * 1e3:>10.2f} | {'1.00x':>8}",
        f"{'warm':>10} | {warm_stream_s * 1e3:>10.1f} | "
        f"{warm_stream_s / stream * 1e3:>10.2f} | {speedup:>7.2f}x",
        f"{'warm-iter':>10} | {iter_s * REPEATS * 1e3:>10.1f} | "
        f"{iter_s / unique * 1e3:>10.2f} | {iter_speedup:>7.2f}x",
        "",
        "warm-iter = memo cleared per request (pure biased iteration, "
        "warm adjacency + baseline)",
        "rankings bit-identical across all configurations",
    ]
    write_report("perf_graphrank", lines)
    write_bench_json(
        "graphrank",
        {
            "unique_preferences": unique,
            "stream_requests": stream,
            "nodes": info["nodes"],
            "edges": info["edges"],
            "cold_stream_ms": round(cold_stream_s * 1e3, 3),
            "warm_stream_ms": round(warm_stream_s * 1e3, 3),
            "warm_iter_ms_per_request": round(iter_s / unique * 1e3, 3),
            "speedup_warm_vs_cold": round(speedup, 2),
            "speedup_iteration_vs_cold": round(iter_speedup, 2),
            "rankings_bit_identical": True,
        },
    )
    assert speedup > 1.5
    if BENCH_SCALE == "medium":
        assert speedup >= 3.0  # the ISSUE's acceptance bar
