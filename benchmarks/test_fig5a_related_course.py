"""Experiment F5a — Figure 5(a): the related-course workflow.

The workflow selects the reference course by id and ranks all courses by
title similarity.  Both execution paths (direct evaluation and
compiled-to-SQL, the paper's deployment) are timed and must produce
rank-identical output.
"""

import pytest
from conftest import write_report

from repro.core import strategies


@pytest.fixture(scope="module")
def reference_course(bench_db):
    # A course whose title shares words with others (an "Introduction ...").
    return bench_db.query(
        "SELECT CourseID FROM Courses WHERE Title LIKE 'Introduction%' "
        "ORDER BY CourseID LIMIT 1"
    ).scalar()


def test_fig5a_direct_path(benchmark, bench_db, reference_course):
    workflow = strategies.related_courses(reference_course, top_k=10)
    result = benchmark(workflow.run, bench_db)
    assert len(result) > 0
    assert reference_course not in result.column("CourseID")
    scores = result.column("score")
    assert scores == sorted(scores, reverse=True)


def test_fig5a_compiled_sql_path(benchmark, bench_db, reference_course):
    workflow = strategies.related_courses(reference_course, top_k=10)
    result = benchmark(workflow.run_sql, bench_db)
    assert len(result) > 0


def test_fig5a_paths_rank_identical(benchmark, bench_db, reference_course):
    workflow = strategies.related_courses(reference_course, top_k=10)

    def both(db):
        return workflow.run(db), workflow.run_sql(db)

    direct, compiled = benchmark(both, bench_db)
    assert direct.column("CourseID") == compiled.column("CourseID")
    for left, right in zip(direct.rows, compiled.rows):
        assert left["score"] == pytest.approx(right["score"])

    reference_title = bench_db.query(
        f"SELECT Title FROM Courses WHERE CourseID = {reference_course}"
    ).scalar()
    lines = [
        f"reference course {reference_course}: {reference_title!r}",
        "rank | score | title",
    ]
    for rank, row in enumerate(direct.rows, start=1):
        lines.append(f"{rank:>4} | {row['score']:.3f} | {row['Title']}")
    lines.append("direct == compiled SQL: True")
    write_report("fig5a_related_course", lines)


def test_fig5a_year_filter_variant(benchmark, bench_db, reference_course):
    """The figure's 'courses for 2008' filter restricts the targets."""
    workflow = strategies.related_courses(
        reference_course, top_k=10, offered_year=2008
    )
    result = benchmark(workflow.run, bench_db)
    offered_2008 = set(
        bench_db.query(
            "SELECT DISTINCT CourseID FROM Offerings WHERE Year = 2008"
        ).column("CourseID")
    )
    assert set(result.column("CourseID")) <= offered_2008
