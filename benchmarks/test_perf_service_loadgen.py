"""Experiment P5 — sharded service layer under closed-loop Zipfian load.

The service claim of DESIGN.md §13: a scatter-gather coordinator over
department-hash shards, fronted by an epoch-vector response cache,
sustains at least 4x the throughput of the single-threaded unsharded
facade on a mixed medium-scale workload at 8 worker threads — while
answering bit-identically (spot-checked here, proven property-by-
property in tests/service/).

The trace mixes Zipfian-weighted searches, cloud-refinement sessions,
and FlexRecs recommendations (the paper's dominant page types); p50/p99
latencies come from per-worker ``repro.obs`` histogram registries merged
associatively after the run.

Scale and geometry are pinned (``medium``, 4 shards, 8 threads) rather
than following ``REPRO_BENCH_SCALE``: the acceptance bar is defined at
this operating point.  ``REPRO_LOADGEN_SCALE`` overrides for quick local
runs.
"""

import os

import pytest
from conftest import write_bench_json, write_report

from repro.service.loadgen import load_test

LOADGEN_SCALE = os.environ.get("REPRO_LOADGEN_SCALE", "medium")
SHARDS = 4
THREADS = 8
OPERATIONS = 800
SEED = 11
SPEEDUP_FLOOR = 4.0


@pytest.fixture(scope="module")
def report():
    return load_test(
        scale=LOADGEN_SCALE,
        shards=SHARDS,
        threads=THREADS,
        operations=OPERATIONS,
        seed=SEED,
    )


def test_sharded_answers_match_unsharded(report):
    assert report.equivalent is True


def test_speedup_floor(report):
    assert report.speedup is not None
    if LOADGEN_SCALE == "medium":
        assert report.speedup >= SPEEDUP_FLOOR, (
            f"service sustained only {report.speedup:.2f}x the "
            f"single-thread unsharded baseline (floor {SPEEDUP_FLOOR}x)"
        )


def test_report(report):
    lines = [
        f"Closed-loop Zipfian load test: scale={report.scale}, "
        f"{report.shards} shards, {report.threads} worker threads, "
        f"{report.operations} ops (seed {report.seed})",
        "",
        f"service:   {report.qps:10.1f} ops/s  "
        f"(p50 {report.p50_ms:.2f} ms, p99 {report.p99_ms:.2f} ms)",
        f"baseline:  {report.baseline_qps:10.1f} ops/s  "
        "(1 thread, unsharded facade, same trace)",
        f"speedup:   {report.speedup:10.2f}x   "
        f"(floor: {SPEEDUP_FLOOR}x at medium scale)",
        f"bit-identical spot check vs unsharded: {report.equivalent}",
        "",
        f"{'op kind':>10} | {'count':>6} | {'mean ms':>8} | "
        f"{'p50 ms':>8} | {'p99 ms':>8}",
    ]
    for kind, stats in sorted(report.per_kind.items()):
        lines.append(
            f"{kind:>10} | {stats['count']:>6.0f} | {stats['mean_ms']:>8.2f} | "
            f"{stats['p50_ms']:>8.2f} | {stats['p99_ms']:>8.2f}"
        )
    cache = report.response_cache
    lines.append("")
    lines.append(
        f"coordinator response cache: {cache['hits']} hits / "
        f"{cache['misses']} misses ({cache['size']} resident)"
    )
    write_report("perf_service_loadgen", lines)
    write_bench_json("service", report.to_dict())
