"""Experiment F3 — Figure 3: searching "American" and its course cloud.

Paper: the query "American" matches 1160 of 18,605 courses (6.2% of the
catalog), searched across multiple relations (titles, descriptions,
comments), and the cloud surfaces related concepts like "Latin American",
"Indians", "politics" — including multi-word phrases containing the query
word itself.

Shape targets checked here: the broad query matches a minority-but-
sizable slice of the catalog; matches arrive through more than one
relation; the cloud contains query-word phrases and cross-relation terms.
"""

from conftest import write_report


def search_with_cloud(app, query):
    return app.search_courses(query)


def test_american_search_shape(benchmark, bench_app, scale_config):
    result, cloud = benchmark(search_with_cloud, bench_app, "american")
    catalog = scale_config.courses
    fraction = len(result) / catalog
    # Paper: 1160/18605 = 6.2%.  Synthetic vocabulary is denser in
    # american-topics, so allow a band: a minority slice, not a blip.
    assert 0.01 < fraction < 0.45, f"{len(result)}/{catalog} = {fraction:.1%}"

    names = cloud.term_names()
    # Multi-word phrases containing the query word (cf. "Latin American").
    phrases = [name for name in names if " " in name and "american" in name]
    assert phrases, f"no american-phrases in cloud: {names[:15]}"
    # The bare query word itself is suppressed.
    assert "american" not in names

    lines = [
        f"query='american'  matches={len(result)}  catalog={catalog}  "
        f"fraction={fraction:.1%}  (paper: 1160/18605 = 6.2%)",
        "top cloud terms (term, bucket, in-results-df):",
    ]
    for term in cloud.top(12):
        lines.append(f"  {term.term:<28} {term.bucket}  {term.result_df}")
    write_report("fig3_search_cloud", lines)


def test_matches_span_relations(benchmark, bench_app):
    """A course can match via its comments alone (multi-relation search)."""
    result, _cloud = benchmark(search_with_cloud, bench_app, "american")
    engine = bench_app.cloudsearch.engine
    via_comments_only = 0
    for hit in result.hits:
        entry = engine.index.postings(engine.tokenizer.stem_token("american"))
        fields = entry.get(hit.doc_id, {})
        if "comments" in fields and "title" not in fields and (
            "description" not in fields
        ):
            via_comments_only += 1
    assert via_comments_only > 0, (
        "no course matched exclusively through student comments"
    )


def test_cloud_computation_latency(benchmark, bench_app):
    """Time just the cloud build over a fixed result set."""
    result = bench_app.cloudsearch.engine.search("american")
    cloud = benchmark(bench_app.cloudsearch.builder.build, result)
    assert len(cloud) > 0
