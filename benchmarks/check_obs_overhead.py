#!/usr/bin/env python3
"""Disabled-mode observability overhead check (budget: <= 2%).

The obs layer's contract is that **disabled** instrumentation costs one
attribute load and a branch per guard, with no allocation.  A naive
A/B wall-clock comparison of "code with guards" vs "code without" cannot
run post-merge (the guard-free binary no longer exists) and is hopelessly
noisy at sub-percent scales on shared CI runners.  This check is
deterministic instead:

1. microbenchmark the guard itself (``if OBS.enabled: ...`` with obs
   disabled) to get a per-guard cost in nanoseconds;
2. count the guards a search query actually crosses (search engine +
   minidb select instrumentation, measured by running one query with
   obs *enabled* and counting emitted events, times a safety factor);
3. measure the median disabled-mode latency of the PR 2 search
   micro-workload (uncached, conjunctive, the hot path);
4. fail if ``guard_cost * guards_per_query`` exceeds 2% of the median
   query time.

An informational enabled-vs-disabled wall-clock comparison is printed
too (not gated — it measures recording cost, which has no budget).

Run from anywhere inside the repository:

    PYTHONPATH=src python benchmarks/check_obs_overhead.py

CI runs it as a non-blocking step in the benchmarks job.
"""

from __future__ import annotations

import statistics
import sys
import time

BUDGET_FRACTION = 0.02
#: safety margin over the measured per-query guard crossings
GUARD_SAFETY_FACTOR = 4


def guard_cost_ns(iterations: int = 2_000_000) -> float:
    """Median per-iteration cost of the disabled-mode guard check."""
    from repro.obs import OBS

    assert not OBS.enabled
    samples = []
    for _repeat in range(5):
        counter = 0
        started = time.perf_counter()
        for _ in range(iterations):
            if OBS.enabled:  # the exact shape every hot path uses
                counter += 1
        elapsed = time.perf_counter() - started

        # Baseline: the same loop without the guard.
        started_base = time.perf_counter()
        for _ in range(iterations):
            pass
        base = time.perf_counter() - started_base
        samples.append(max(0.0, elapsed - base) / iterations * 1e9)
    return statistics.median(samples)


def build_workload():
    from repro.courserank.app import CourseRank
    from repro.datagen import generate_university

    app = CourseRank(generate_university(scale="small", seed=2008))
    app.cloudsearch.build()
    queries = [
        "introduction programming",
        "american history",
        "data analysis",
        "organic chemistry lab",
        "music theory",
    ]
    return app, queries


def guards_per_query(app, queries) -> int:
    """Upper-bound the guard crossings of one query via emitted events."""
    from repro.obs import OBS

    OBS.reset()
    OBS.enable()
    try:
        for query in queries:
            app.cloudsearch.engine.search(query, limit=20, use_cache=False)
    finally:
        OBS.disable()
    snapshot = OBS.metrics.snapshot()
    events = sum(snapshot["counters"].values())
    events += sum(h["count"] for h in snapshot["histograms"].values())
    events += len(OBS.tracer)
    OBS.reset()
    per_query = max(1, events // len(queries))
    return per_query * GUARD_SAFETY_FACTOR


def median_query_ms(app, queries, repeats: int = 40) -> float:
    from repro.obs import OBS

    assert not OBS.enabled
    samples = []
    for _ in range(repeats):
        for query in queries:
            started = time.perf_counter()
            app.cloudsearch.engine.search(query, limit=20, use_cache=False)
            samples.append((time.perf_counter() - started) * 1000.0)
    return statistics.median(samples)


def enabled_median_query_ms(app, queries, repeats: int = 40) -> float:
    from repro.obs import OBS

    OBS.reset()
    OBS.enable()
    try:
        samples = []
        for _ in range(repeats):
            for query in queries:
                started = time.perf_counter()
                app.cloudsearch.engine.search(
                    query, limit=20, use_cache=False
                )
                samples.append((time.perf_counter() - started) * 1000.0)
    finally:
        OBS.disable()
        OBS.reset()
    return statistics.median(samples)


def main() -> int:
    print("measuring disabled-mode guard cost ...")
    per_guard_ns = guard_cost_ns()
    app, queries = build_workload()
    print("counting guards per search query ...")
    guards = guards_per_query(app, queries)
    print("measuring disabled-mode search latency ...")
    disabled_ms = median_query_ms(app, queries)
    enabled_ms = enabled_median_query_ms(app, queries)

    overhead_ms = per_guard_ns * guards / 1e6
    fraction = overhead_ms / disabled_ms if disabled_ms > 0 else 0.0

    print()
    print(f"guard cost            : {per_guard_ns:8.2f} ns")
    print(f"guards/query (x{GUARD_SAFETY_FACTOR})    : {guards:8d}")
    print(f"disabled median query : {disabled_ms:8.4f} ms")
    print(f"guard overhead/query  : {overhead_ms:8.6f} ms "
          f"({fraction * 100:.4f}% of query)")
    print(f"enabled median query  : {enabled_ms:8.4f} ms (informational; "
          "recording cost has no budget)")
    print()
    if fraction > BUDGET_FRACTION:
        print(
            f"FAIL: disabled-mode guard overhead {fraction * 100:.3f}% "
            f"exceeds the {BUDGET_FRACTION * 100:.0f}% budget"
        )
        return 1
    print(
        f"OK: disabled-mode guard overhead {fraction * 100:.4f}% "
        f"is within the {BUDGET_FRACTION * 100:.0f}% budget"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
