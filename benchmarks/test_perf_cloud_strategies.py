"""Experiment P1 — data-cloud computation strategies (ablation).

Section 3.1 asks "how can we dynamically and efficiently compute their
data cloud?".  We compare the three gathering strategies on the same
query stream:

* ``rescan``  — re-extract terms from raw text per query (no memory);
* ``forward`` — per-document term counters precomputed at build time;
* ``topk``    — only each document's top-k terms cached (approximate).

Shape expectation: forward ≪ rescan per query; topk ≤ forward; rescan
and forward are term-for-term identical; topk loses only tail terms.
"""

import time

import pytest
from conftest import write_report

from repro.clouds.cloud import CloudBuilder

QUERIES = ("american", "history", "programming", "politics")


@pytest.fixture(scope="module")
def builders(bench_app):
    engine = bench_app.cloudsearch.engine
    built = {}
    for strategy in ("rescan", "forward", "topk"):
        builder = CloudBuilder(engine, strategy=strategy, min_result_df=1)
        builder.prepare()
        built[strategy] = builder
    return built


@pytest.fixture(scope="module")
def results(bench_app):
    engine = bench_app.cloudsearch.engine
    return {query: engine.search(query) for query in QUERIES}


def build_clouds(builder, results):
    return [builder.build(result) for result in results.values()]


@pytest.mark.parametrize("strategy", ["rescan", "forward", "topk"])
def test_strategy_latency(benchmark, builders, results, strategy):
    clouds = benchmark(build_clouds, builders[strategy], results)
    assert all(len(cloud) > 0 for cloud in clouds if cloud.result_size > 0)


def test_forward_equals_rescan_exactly(builders, results, benchmark):
    def compare():
        mismatches = 0
        for result in results.values():
            left = builders["forward"].build(result).term_names()
            right = builders["rescan"].build(result).term_names()
            if left != right:
                mismatches += 1
        return mismatches

    assert benchmark(compare) == 0


def test_topk_is_approximation(builders, results, benchmark):
    """topk's terms are drawn from the exact cloud's vocabulary."""

    def check():
        subset_violations = 0
        for result in results.values():
            exact_sources = builders["forward"].source.gather(result.doc_ids())
            exact_terms = {stat.term for stat in exact_sources}
            approx = builders["topk"].build(result).term_names()
            subset_violations += sum(
                1 for term in approx if term not in exact_terms
            )
        return subset_violations

    assert benchmark(check) == 0


def test_report_strategy_timings(builders, results, benchmark):
    """Wall-clock series for the report (who wins, by what factor)."""

    def measure():
        timings = {}
        for strategy, builder in builders.items():
            start = time.perf_counter()
            for _ in range(3):
                build_clouds(builder, results)
            timings[strategy] = (time.perf_counter() - start) / 3
        return timings

    timings = benchmark.pedantic(measure, rounds=1, iterations=1)
    lines = [
        f"per-query-stream cloud build over {len(QUERIES)} queries:",
    ]
    for strategy, seconds in sorted(timings.items(), key=lambda kv: kv[1]):
        lines.append(f"  {strategy:>8}: {seconds * 1000:8.1f} ms")
    fastest_cached = min(timings["forward"], timings["topk"])
    lines.append(
        f"speedup of cached vs rescan: {timings['rescan'] / fastest_cached:.1f}x"
    )
    write_report("perf_cloud_strategies", lines)
    # Shape: precomputation beats per-query re-extraction.
    assert timings["rescan"] > fastest_cached
