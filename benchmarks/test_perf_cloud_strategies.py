"""Experiment P1 — data-cloud computation strategies (ablation).

Section 3.1 asks "how can we dynamically and efficiently compute their
data cloud?".  We compare the three gathering strategies on the same
query stream:

* ``rescan``  — re-extract terms from raw text per query (no memory);
* ``forward`` — per-document term counters precomputed at build time;
* ``topk``    — only each document's top-k terms cached (approximate).

Since the hot-path overhaul we additionally measure the *refinement*
path: a refined query's cloud derived incrementally from its parent's
cached aggregates (subtracting the dropped documents), and a repeat
build served from the epoch-keyed gather cache — both against a cold
``forward`` build of the same narrowed result set.

Shape expectation: forward ≪ rescan per query; topk ≤ forward; rescan
and forward are term-for-term identical; topk loses only tail terms;
cached/incremental refinement beats cold forward with identical clouds.
"""

import time

import pytest
from conftest import write_bench_json, write_report

from repro.clouds.cloud import CloudBuilder

QUERIES = ("american", "history", "programming", "politics")


@pytest.fixture(scope="module")
def builders(bench_app):
    engine = bench_app.cloudsearch.engine
    built = {}
    for strategy in ("rescan", "forward", "topk"):
        builder = CloudBuilder(engine, strategy=strategy, min_result_df=1)
        builder.prepare()
        built[strategy] = builder
    return built


@pytest.fixture(scope="module")
def results(bench_app):
    engine = bench_app.cloudsearch.engine
    return {query: engine.search(query) for query in QUERIES}


def build_clouds(builder, results):
    return [builder.build(result) for result in results.values()]


@pytest.mark.parametrize("strategy", ["rescan", "forward", "topk"])
def test_strategy_latency(benchmark, builders, results, strategy):
    clouds = benchmark(build_clouds, builders[strategy], results)
    assert all(len(cloud) > 0 for cloud in clouds if cloud.result_size > 0)


def test_forward_equals_rescan_exactly(builders, results, benchmark):
    def compare():
        mismatches = 0
        for result in results.values():
            left = builders["forward"].build(result).term_names()
            right = builders["rescan"].build(result).term_names()
            if left != right:
                mismatches += 1
        return mismatches

    assert benchmark(compare) == 0


def test_topk_is_approximation(builders, results, benchmark):
    """topk's terms are drawn from the exact cloud's vocabulary."""

    def check():
        subset_violations = 0
        for result in results.values():
            exact_sources = builders["forward"].source.gather(result.doc_ids())
            exact_terms = {stat.term for stat in exact_sources}
            approx = builders["topk"].build(result).term_names()
            subset_violations += sum(
                1 for term in approx if term not in exact_terms
            )
        return subset_violations

    assert benchmark(check) == 0


def test_report_strategy_timings(builders, results, benchmark):
    """Wall-clock series for the report (who wins, by what factor)."""

    def measure():
        timings = {}
        for strategy, builder in builders.items():
            start = time.perf_counter()
            for _ in range(3):
                build_clouds(builder, results)
            timings[strategy] = (time.perf_counter() - start) / 3
        return timings

    timings = benchmark.pedantic(measure, rounds=1, iterations=1)
    lines = [
        f"per-query-stream cloud build over {len(QUERIES)} queries:",
    ]
    for strategy, seconds in sorted(timings.items(), key=lambda kv: kv[1]):
        lines.append(f"  {strategy:>8}: {seconds * 1000:8.1f} ms")
    fastest_cached = min(timings["forward"], timings["topk"])
    lines.append(
        f"speedup of cached vs rescan: {timings['rescan'] / fastest_cached:.1f}x"
    )
    write_report("perf_cloud_strategies", lines)
    write_bench_json(
        "cloud_strategies",
        {
            "queries": len(QUERIES),
            "stream_ms": {
                strategy: seconds * 1000.0
                for strategy, seconds in timings.items()
            },
            "streams_per_sec": {
                strategy: (1.0 / seconds if seconds else None)
                for strategy, seconds in timings.items()
            },
            "speedup": {
                "cached_vs_rescan": timings["rescan"] / fastest_cached
            },
        },
    )
    # Shape: precomputation beats per-query re-extraction.
    assert timings["rescan"] > fastest_cached


@pytest.fixture(scope="module")
def medium_app(bench_app, scale_name):
    """A medium (~2,400-course) app for the refinement rows; reuses the
    session app when the bench scale already is medium."""
    if scale_name == "medium":
        return bench_app
    from repro.courserank.app import CourseRank
    from repro.datagen import generate_university

    app = CourseRank(generate_university(scale="medium", seed=2008))
    app.cloudsearch.build()
    return app


def _refine_query(query, term):
    return f'{query} "{term}"' if " " in term else f"{query} {term}"


def _pick_refinement(engine, builder, query):
    """A deep-refinement click: two levels down from ``query``.

    First-level clicks typically halve the result set (subtracting the
    dropped half costs as much as re-merging the kept half, so the term
    source falls back).  Deeper clicks narrow gently — the broadest
    second-level term keeps ~70-90% of its parent — which is where the
    incremental derivation genuinely wins.
    """
    root = engine.search(query)
    first = max(builder.build(root).terms, key=lambda t: t.result_df).term
    parent = engine.search(_refine_query(query, first), within=root.doc_id_set())
    stats = builder.source.gather(parent.doc_ids())  # also seeds the cache
    broadest = max(
        (s for s in stats if s.result_df < len(parent)),
        key=lambda s: s.result_df,
    )
    child = engine.search(
        _refine_query(parent.query, broadest.term), within=parent.doc_id_set()
    )
    return parent, child


def _measure_refinement(app, rounds=20):
    """Cold forward rebuild vs incremental derivation vs cache hit."""
    engine = app.cloudsearch.engine
    warm = CloudBuilder(engine, strategy="forward", min_result_df=1)
    warm.prepare()
    parent, child = _pick_refinement(engine, warm, "american")
    source = warm.source
    parent_key = source._cache_key(tuple(parent.doc_ids()))
    parent_entry = source._gather_cache.get(parent_key)
    assert parent_entry is not None  # seeded by the parent's own build

    cold_builder = CloudBuilder(engine, strategy="forward", min_result_df=1)
    cold_builder.prepare()

    def build_cold():
        cold_builder.source._gather_cache.clear()
        return cold_builder.build(child)

    def build_incremental():
        # Reset to "parent cached, child not yet derived".
        source._gather_cache.clear()
        source._gather_cache.put(parent_key, parent_entry)
        return warm.build_narrowed(child, parent)

    def build_cached():
        return warm.build_narrowed(child, parent)

    timings = {}
    clouds = {}
    for name, build in (
        ("cold forward", build_cold),
        ("incremental", build_incremental),
        ("cache hit", build_cached),
    ):
        clouds[name] = build()  # warm-up + correctness capture
        start = time.perf_counter()
        for _ in range(rounds):
            build()
        timings[name] = (time.perf_counter() - start) / rounds
    return timings, clouds, len(parent), len(child)


def test_refinement_cloud_cold_vs_incremental_vs_cached(
    bench_app, medium_app, scale_name, benchmark
):
    """The three refinement paths must produce identical clouds; the
    cached/incremental paths must beat the cold rebuild (the acceptance
    shape for the refinement hot path) — at the bench scale and medium.
    """
    apps = {scale_name: bench_app}
    apps.setdefault("medium", medium_app)

    def signature(cloud):
        return [(t.term, t.score, t.result_df, t.bucket) for t in cloud.terms]

    def measure():
        return {
            scale: _measure_refinement(app) for scale, app in apps.items()
        }

    by_scale = benchmark.pedantic(measure, rounds=1, iterations=1)
    lines = [
        "refinement-cloud build (second-level click: 'american' -> broadest "
        "term -> broadest term); 20-run avg per path:",
    ]
    for scale, (timings, clouds, parent_size, child_size) in by_scale.items():
        reference = signature(clouds["cold forward"])
        assert signature(clouds["incremental"]) == reference
        assert signature(clouds["cache hit"]) == reference
        lines.append(
            f"  {scale}: parent={parent_size} docs -> child={child_size} docs"
        )
        for name, seconds in sorted(timings.items(), key=lambda kv: kv[1]):
            speedup = (
                timings["cold forward"] / seconds if seconds else float("inf")
            )
            lines.append(
                f"    {name:>12}: {seconds * 1000:8.2f} ms  "
                f"({speedup:.1f}x vs cold)"
            )
    write_report("perf_cloud_refinement", lines)
    # Acceptance shape: cached refinement beats the cold forward rebuild.
    for scale, (timings, _clouds, _p, _c) in by_scale.items():
        assert timings["cache hit"] < timings["cold forward"]
        assert timings["incremental"] < timings["cold forward"]
