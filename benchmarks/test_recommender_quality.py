"""Experiment R1 — recommender quality under a hold-out protocol.

Section 3.2's point is that FlexRecs makes it easy to "experiment with
different recommendation strategies"; this is that experiment.  20% of
known ratings are hidden; predictors must reconstruct them:

* global mean (the floor),
* per-course mean (popularity),
* Figure 5(b) collaborative filtering.

Shape targets: personalization wins on accuracy where it applies
(CF MAE < course-mean MAE < global-mean MAE on the predictable subset),
and CF trades coverage for that accuracy (the classic CF cold-start
trade-off).
"""

import pytest
from conftest import write_report

from repro.evalkit.receval import evaluate_predictors

MAX_PAIRS = 60


@pytest.fixture(scope="module")
def scores(bench_db):
    return evaluate_predictors(
        bench_db, fraction=0.2, seed=1, max_pairs=MAX_PAIRS
    )


def test_holdout_protocol(benchmark, bench_db):
    results = benchmark.pedantic(
        evaluate_predictors,
        kwargs=dict(
            database=bench_db, fraction=0.2, seed=1, max_pairs=MAX_PAIRS
        ),
        rounds=1,
        iterations=1,
    )
    assert [score.name for score in results] == [
        "global_mean", "course_mean", "cf",
    ]


def test_accuracy_ordering(benchmark, scores):
    by_name = {score.name: score for score in benchmark(lambda: scores)}
    assert by_name["cf"].predictions >= 10, "CF must score a usable sample"
    # Who wins: specificity beats popularity beats the global floor.
    assert by_name["course_mean"].mae < by_name["global_mean"].mae
    assert by_name["cf"].mae < by_name["course_mean"].mae


def test_coverage_tradeoff(benchmark, scores):
    by_name = {score.name: score for score in benchmark(lambda: scores)}
    assert by_name["global_mean"].coverage == 1.0
    assert by_name["cf"].coverage < by_name["course_mean"].coverage

    lines = [
        f"hold-out: {MAX_PAIRS} hidden ratings, 20% per active user",
        f"{'predictor':>12} | {'MAE':>6} | {'RMSE':>6} | {'coverage':>8}",
    ]
    for score in scores:
        lines.append(
            f"{score.name:>12} | {score.mae:>6.3f} | {score.rmse:>6.3f} | "
            f"{score.coverage:>8.0%}"
        )
    lines.append(
        "shape: CF most accurate where it can predict; "
        "coverage is the price of personalization"
    )
    write_report("recommender_quality", lines)
