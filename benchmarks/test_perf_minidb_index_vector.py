"""Experiment P5 — vector engine v2: index-assisted scans + multi-key joins.

PR 6 vectorized the sequential scan; PR 8 teaches the vector executor to
start from an index.  The CourseRank shapes this serves are the
low-selectivity lookups the paper's workloads are full of — "comments
for one course", "students in a GPA band" — where scanning 50k rows to
keep 500 is pure waste.  This experiment measures:

* ``point-agg`` / ``point-residual`` — hash-index equality (1%
  selectivity) feeding an aggregate, with and without a residual
  predicate that stays on the vectorized filter kernel;
* ``range-agg`` — sorted-index range (2.5% selectivity) feeding an
  aggregate;
* ``float-filter`` — float comparison + arithmetic kernels (the
  numpy-eligible shape);
* ``multikey-join`` — a composite-key hash join (``ON f.k = d.k AND
  f.t = d.t``) that fell back to the row path before PR 8.

Configs: ``interpreted`` (row pipeline, no compiled expressions),
``row-idx`` (compiled row pipeline, index access), ``vec-seq``
(vectorized, *no* indexes — the PR 6 engine's best), and ``vec-idx``
(vectorized index scan).  All measured warm, best-of-3.  Every config
must return identical rows, and flipping the numpy layer must not
change a single cell.

Acceptance (ROADMAP/ISSUE): ``vec-idx`` beats ``vec-seq`` by >= 3x on
the medium point aggregate, and the multi-key join is ``[vectorized]``
with a measured speedup over the interpreted row path.
"""

import time

import pytest
from conftest import write_bench_json, write_report

import repro.minidb.vector as vector_module
from repro.minidb import Database
from repro.minidb import planner as planner_module

SCALES = [("small", 10_000), ("medium", 50_000)]

WORKLOADS = [
    (
        "point-agg",
        "SELECT COUNT(*) AS c, SUM(v) AS s, AVG(n) AS a FROM f WHERE k = 7",
    ),
    (
        "point-residual",
        "SELECT COUNT(*) AS c, SUM(v) AS s FROM f "
        "WHERE k = 7 AND v >= 1.0",
    ),
    (
        "range-agg",
        "SELECT COUNT(*) AS c, SUM(v) AS s FROM f WHERE n >= 975",
    ),
    (
        "float-filter",
        "SELECT COUNT(*) AS c, SUM(v) AS s FROM f "
        "WHERE v >= 2.0 AND v * 2.0 < 8.0",
    ),
    (
        "multikey-join",
        "SELECT f.k, COUNT(*) AS c, SUM(d.w) AS sw FROM f "
        "JOIN d ON f.k = d.k AND f.t = d.t GROUP BY f.k ORDER BY f.k",
    ),
]

CONFIGS = [
    # (label, compile_expressions, vectorize, indexed)
    ("interpreted", False, False, True),
    ("row-idx", True, False, True),
    ("vec-seq", True, True, False),
    ("vec-idx", True, True, True),
]


def build_database(rows: int, indexed: bool) -> Database:
    database = Database()
    database.execute(
        "CREATE TABLE f (id INT PRIMARY KEY, k INT, t INT, n INT, "
        "v FLOAT, note TEXT)"
    )
    if indexed:
        database.execute("CREATE INDEX idx_f_k ON f (k) USING hash")
        database.execute("CREATE INDEX idx_f_n ON f (n) USING sorted")
    for i in range(rows):
        database.execute(
            "INSERT INTO f VALUES (?, ?, ?, ?, ?, ?)",
            [i, i % 100, i % 4, i % 1000, float(i % 9) / 2.0, f"n{i % 50}"],
        )
    database.execute("CREATE TABLE d (k INT, t INT, w FLOAT)")
    for k in range(100):
        for t in range(4):
            database.execute(
                "INSERT INTO d VALUES (?, ?, ?)", [k, t, float(k % 5) + 0.5]
            )
    return database


def best_of(database: Database, sql: str, runs: int = 3) -> float:
    """Best warm wall time in ms (plan cache populated first)."""
    database.query(sql)
    best = float("inf")
    for _ in range(runs):
        started = time.perf_counter()
        database.query(sql)
        best = min(best, time.perf_counter() - started)
    return best * 1000.0


@pytest.fixture(scope="module")
def measurements():
    saved_compile = planner_module.COMPILE_EXPRESSIONS
    saved_vectorize = planner_module.VECTORIZE
    results = {}
    try:
        for scale, rows in SCALES:
            for label, compile_expressions, vectorize, indexed in CONFIGS:
                planner_module.COMPILE_EXPRESSIONS = compile_expressions
                planner_module.VECTORIZE = vectorize
                database = build_database(rows, indexed)
                for workload, sql in WORKLOADS:
                    results[(scale, workload, label)] = (
                        best_of(database, sql),
                        database.query(sql).rows,
                    )
    finally:
        planner_module.COMPILE_EXPRESSIONS = saved_compile
        planner_module.VECTORIZE = saved_vectorize
    return results


def test_all_configs_agree(measurements):
    for scale, _rows in SCALES:
        for workload, _sql in WORKLOADS:
            reference = measurements[(scale, workload, "interpreted")][1]
            for label, *_ in CONFIGS:
                assert measurements[(scale, workload, label)][1] == reference, (
                    f"{label} diverges on {workload}@{scale}"
                )


def test_numpy_toggle_is_bit_identical():
    """REPRO_NUMPY=0 vs =1 on the benchmark corpus: every cell equal."""
    saved_vectorize = planner_module.VECTORIZE
    saved_numpy = vector_module.NUMPY
    planner_module.VECTORIZE = True
    try:
        database = build_database(50_000, indexed=True)
        for workload, sql in WORKLOADS:
            vector_module.NUMPY = False
            off = database.query(sql).rows
            vector_module.NUMPY = vector_module.HAS_NUMPY
            on = database.query(sql).rows
            assert off == on, f"numpy toggle diverges on {workload}"
    finally:
        planner_module.VECTORIZE = saved_vectorize
        vector_module.NUMPY = saved_numpy


def test_indexed_scan_speedup(measurements):
    """The headline number: index-assisted vectorized scan vs the PR 6
    vectorized sequential scan on the 1%-selectivity medium aggregate."""
    seq = measurements[("medium", "point-agg", "vec-seq")][0]
    idx = measurements[("medium", "point-agg", "vec-idx")][0]
    assert seq / idx >= 3.0, (
        f"index-assisted speedup {seq / idx:.1f}x < 3x "
        f"(seq={seq:.3f}ms idx={idx:.3f}ms)"
    )


def test_multikey_join_is_vectorized_with_speedup(measurements):
    saved = planner_module.VECTORIZE
    planner_module.VECTORIZE = True
    try:
        database = build_database(1_000, indexed=True)
        plan = database.execute("EXPLAIN " + WORKLOADS[-1][1])
        assert "[vectorized]" in plan.rows[0][0]
    finally:
        planner_module.VECTORIZE = saved
    interpreted = measurements[("medium", "multikey-join", "interpreted")][0]
    vectorized = measurements[("medium", "multikey-join", "vec-idx")][0]
    assert interpreted / vectorized >= 2.0, (
        f"multi-key join speedup {interpreted / vectorized:.1f}x < 2x"
    )


def test_report(measurements):
    lines = [
        "Index-assisted vector scans and multi-key hash joins "
        "(best-of-3 warm ms per query)",
        f"numpy layer: {'on' if vector_module.NUMPY else 'off'} "
        f"(installed: {vector_module.HAS_NUMPY})",
        "",
        f"{'scale':8} {'workload':16} "
        + " ".join(f"{label:>12}" for label, *_ in CONFIGS)
        + f" {'idx/seq':>8} {'vec/interp':>10}",
    ]
    for scale, rows in SCALES:
        for workload, _sql in WORKLOADS:
            times = {
                label: measurements[(scale, workload, label)][0]
                for label, *_ in CONFIGS
            }
            idx_speedup = times["vec-seq"] / times["vec-idx"]
            interp_speedup = times["interpreted"] / times["vec-idx"]
            lines.append(
                f"{scale:8} {workload:16} "
                + " ".join(f"{times[label]:12.3f}" for label, *_ in CONFIGS)
                + f" {idx_speedup:7.1f}x {interp_speedup:9.1f}x"
            )
        lines.append("")
    lines.append(
        "rows: small=10k medium=50k; selectivity: point-agg 1%, "
        "range-agg 2.5%; dims table 400 rows; join key (k, t)"
    )
    write_report("perf_minidb_index_vector", lines)
    timings_ms = {
        f"{scale}/{workload}/{label}": measurements[(scale, workload, label)][0]
        for scale, _rows in SCALES
        for workload, _sql in WORKLOADS
        for label, *_ in CONFIGS
    }
    medium_seq = measurements[("medium", "point-agg", "vec-seq")][0]
    medium_idx = measurements[("medium", "point-agg", "vec-idx")][0]
    join_interp = measurements[("medium", "multikey-join", "interpreted")][0]
    join_vec = measurements[("medium", "multikey-join", "vec-idx")][0]
    write_bench_json(
        "minidb_index_vector",
        {
            "numpy": vector_module.NUMPY,
            "numpy_installed": vector_module.HAS_NUMPY,
            "timings_ms": timings_ms,
            "ops_per_sec": {
                key: (1000.0 / ms if ms else None)
                for key, ms in timings_ms.items()
            },
            "speedup": {
                "medium_point_agg_vec_idx_vs_vec_seq": medium_seq / medium_idx,
                "medium_multikey_join_vec_vs_interpreted": (
                    join_interp / join_vec
                ),
            },
        },
    )
