"""Experiment P3 — search latency vs catalog size; index vs scan.

Section 3 motivates "more powerful search and discovery mechanisms" over
18,605 courses.  We sweep catalog sizes and compare the inverted-index
engine against the SQL LIKE-scan a naive implementation would use
(scanning titles, descriptions, and comments).

Three engine rows per scale since the hot-path overhaul:

* ``cold``   — token/stem memos, norm tables, and the result cache all
  emptied; the first query pays the full analysis + scoring pipeline;
* ``warm``   — steady-state scoring with the epoch-keyed result cache
  bypassed (measures term-at-a-time scoring + O(1) statistics);
* ``cached`` — repeat queries served from the result cache.

Shape targets: the index answers in roughly constant time per matched
document while the LIKE scan grows with corpus size; warm indexed search
beats the scan by ≥ 10x at the ``medium`` (~2,400-course) scale; the two
agree on the match set for title/description-only corpora.
"""

import time

import pytest
from conftest import write_bench_json, write_report

from repro.courserank.app import CourseRank
from repro.datagen import generate_university
from repro.search.stemmer import porter_stem

SWEEP_SCALES = ("tiny", "small", "medium")
QUERY = "american"
WARM_SPEEDUP_FLOOR = 10.0  # acceptance: warm index ≥ 10x LIKE at medium


@pytest.fixture(scope="module")
def sweep_apps():
    apps = {}
    for scale in SWEEP_SCALES:
        app = CourseRank(generate_university(scale=scale, seed=2008))
        app.cloudsearch.build()
        apps[scale] = app
    return apps


def like_scan_count(db, word: str) -> int:
    return db.query(
        "SELECT COUNT(DISTINCT c.CourseID) FROM Courses c "
        "LEFT JOIN Comments cm ON cm.CourseID = c.CourseID "
        f"WHERE c.Title ILIKE '%{word}%' "
        f"OR c.Description ILIKE '%{word}%' "
        f"OR cm.Text ILIKE '%{word}%'"
    ).scalar()


def clear_engine_caches(engine) -> None:
    """Cold path: empty every memo the query pipeline can hit."""
    engine.tokenizer._token_cache.clear()
    engine.tokenizer._stem_cache.clear()
    porter_stem.cache_clear()
    engine.clear_caches()


def test_engine_search_latency(benchmark, bench_app):
    result = benchmark(bench_app.cloudsearch.engine.search, QUERY)
    assert len(result) > 0


def test_like_scan_latency(benchmark, bench_db):
    count = benchmark(like_scan_count, bench_db, QUERY)
    assert count > 0


def test_cached_equals_uncached_results(bench_app, benchmark):
    """The result cache must be invisible: identical ranked hits."""
    engine = bench_app.cloudsearch.engine

    def compare():
        engine.clear_caches()
        cold = engine.search(QUERY)
        cached = engine.search(QUERY)
        uncached = engine.search(QUERY, use_cache=False)
        return cold, cached, uncached

    cold, cached, uncached = benchmark(compare)
    assert cached.cache_hit and not uncached.cache_hit
    assert cold.hits == cached.hits == uncached.hits


def test_index_vs_scan_agree_on_superset(bench_app, bench_db, benchmark):
    """Every LIKE-scan hit is found by the engine too.

    (The engine finds *more*: stemming bridges word forms, and instructor
    and department names are folded into the entity.)
    """

    def compare():
        engine_hits = bench_app.cloudsearch.engine.search(QUERY).doc_id_set()
        like_hits = set(
            bench_db.query(
                "SELECT DISTINCT c.CourseID FROM Courses c "
                "LEFT JOIN Comments cm ON cm.CourseID = c.CourseID "
                f"WHERE c.Title ILIKE '%{QUERY}%' "
                f"OR c.Description ILIKE '%{QUERY}%' "
                f"OR cm.Text ILIKE '%{QUERY}%'"
            ).column("CourseID")
        )
        return engine_hits, like_hits

    engine_hits, like_hits = benchmark(compare)
    assert like_hits <= engine_hits


def test_report_scaling_series(
    sweep_apps, bench_app, bench_db, scale_name, benchmark
):
    apps = dict(sweep_apps)
    apps[scale_name] = bench_app

    def measure():
        series = []
        for scale, app in apps.items():
            courses = app.db.query("SELECT COUNT(*) FROM Courses").scalar()
            engine = app.cloudsearch.engine

            # Cold: every memo emptied, first query pays the full
            # analysis pipeline plus norm-table builds.
            clear_engine_caches(engine)
            start = time.perf_counter()
            engine.search(QUERY)
            cold_ms = (time.perf_counter() - start) * 1000

            # Warm: steady-state scoring, result cache bypassed.
            start = time.perf_counter()
            for _ in range(5):
                engine.search(QUERY, use_cache=False)
            warm_ms = (time.perf_counter() - start) / 5 * 1000

            # Cached: repeats served from the epoch-keyed result cache.
            engine.search(QUERY)
            start = time.perf_counter()
            for _ in range(5):
                engine.search(QUERY)
            cached_ms = (time.perf_counter() - start) / 5 * 1000

            start = time.perf_counter()
            for _ in range(5):
                like_scan_count(app.db, QUERY)
            scan_ms = (time.perf_counter() - start) / 5 * 1000
            series.append(
                (scale, courses, cold_ms, warm_ms, cached_ms, scan_ms)
            )
        return series

    series = benchmark.pedantic(measure, rounds=1, iterations=1)
    lines = [
        f"query={QUERY!r}; per-query latency (ms); cold = all memos empty, "
        "warm = 5-run avg w/o result cache, cached = result-cache hits:",
        f"{'scale':>8} | {'courses':>8} | {'cold idx':>9} | {'warm idx':>9} "
        f"| {'cached':>9} | {'LIKE scan':>9} | {'warm x':>7} | {'cached x':>8}",
    ]
    speedups = {}
    for scale, courses, cold_ms, warm_ms, cached_ms, scan_ms in series:
        warm_x = scan_ms / warm_ms if warm_ms else float("inf")
        cached_x = scan_ms / cached_ms if cached_ms else float("inf")
        speedups[scale] = warm_x
        lines.append(
            f"{scale:>8} | {courses:>8} | {cold_ms:>9.2f} | {warm_ms:>9.2f} | "
            f"{cached_ms:>9.2f} | {scan_ms:>9.2f} | {warm_x:>6.1f}x | "
            f"{cached_x:>7.1f}x"
        )
    write_report("perf_search_scaling", lines)
    write_bench_json(
        "search_scaling",
        {
            "query": QUERY,
            "series": [
                {
                    "scale": scale,
                    "courses": courses,
                    "cold_ms": cold_ms,
                    "warm_ms": warm_ms,
                    "cached_ms": cached_ms,
                    "like_scan_ms": scan_ms,
                    "warm_qps": (1000.0 / warm_ms if warm_ms else None),
                    "cached_qps": (1000.0 / cached_ms if cached_ms else None),
                }
                for scale, courses, cold_ms, warm_ms, cached_ms, scan_ms
                in series
            ],
            "speedup": {
                f"{scale}_warm_vs_like_scan": value
                for scale, value in speedups.items()
            },
        },
    )
    # Shape: at the medium scale the warm index must dominate the scan.
    assert speedups["medium"] >= WARM_SPEEDUP_FLOOR


def test_index_build_cost(benchmark, bench_db):
    """One-time indexing cost (amortized over all queries)."""
    app = CourseRank(bench_db)
    indexed = benchmark(app.cloudsearch.build)
    assert indexed == bench_db.query("SELECT COUNT(*) FROM Courses").scalar()
