"""Ablation A2 — search-entity field weights (Section 3.1's ranking question).

"If we search for 'Java' courses, should a course that mentions 'Java'
in its title have the same score as a course that mentions 'Java' in the
comments made by students about the course?"

We compare the default weighted entity (title 4x > description 2x >
comments 1x) against a uniform-weight variant: the match *sets* are
identical (weights affect ranking, not recall), but the weighted entity
puts title matches ahead of comment-only matches.
"""

import pytest
from conftest import write_report

from repro.search.engine import SearchEngine
from repro.search.entity import course_entity

QUERY = "american"


@pytest.fixture(scope="module")
def engines(bench_db):
    weighted = SearchEngine(bench_db, course_entity())
    weighted.build()
    uniform = SearchEngine(
        bench_db,
        course_entity(
            title_weight=1.0,
            description_weight=1.0,
            comment_weight=1.0,
            instructor_weight=1.0,
            department_weight=1.0,
        ),
    )
    uniform.build()
    return weighted, uniform


def _title_match_rate(engine, result, k=10):
    """Fraction of the top-k whose *title field* contains the query stem."""
    stem = engine.tokenizer.stem_token(QUERY)
    hits = result.top(k)
    if not hits:
        return 0.0
    matched = 0
    for hit in hits:
        fields = engine.index.postings(stem).get(hit.doc_id, {})
        if "title" in fields:
            matched += 1
    return matched / len(hits)


def test_weighted_search(benchmark, engines):
    weighted, _uniform = engines
    result = benchmark(weighted.search, QUERY)
    assert len(result) > 0


def test_uniform_search(benchmark, engines):
    _weighted, uniform = engines
    result = benchmark(uniform.search, QUERY)
    assert len(result) > 0


def test_weights_change_ranking_not_recall(benchmark, engines):
    weighted, uniform = engines

    def both():
        return weighted.search(QUERY), uniform.search(QUERY)

    weighted_result, uniform_result = benchmark(both)
    # Same match set (weights never drop a match)...
    assert weighted_result.doc_id_set() == uniform_result.doc_id_set()
    # ...but not necessarily the same order.
    weighted_rate = _title_match_rate(weighted, weighted_result)
    uniform_rate = _title_match_rate(uniform, uniform_result)
    assert weighted_rate >= uniform_rate
    lines = [
        f"query={QUERY!r}: {len(weighted_result)} matches under both entities",
        f"title-match rate in top-10, weighted entity : {weighted_rate:.0%}",
        f"title-match rate in top-10, uniform weights : {uniform_rate:.0%}",
    ]
    write_report("ablation_entity_weights", lines)


def test_weighted_top1_has_title_match(benchmark, engines):
    weighted, _uniform = engines
    result = benchmark(weighted.search, QUERY)
    stem = weighted.tokenizer.stem_token(QUERY)
    top = result.hits[0]
    assert "title" in weighted.index.postings(stem).get(top.doc_id, {})
