"""Experiment T1 — Table 1: CourseRank vs DB vs Web vs social sites.

The paper's Table 1 is qualitative; we *derive* the CourseRank column
from the running system and assert each derived characteristic matches
the paper's claimed cell, then render the full four-column table.
"""

from conftest import write_report

from repro.evalkit.reports import render_table1, table1_report


def test_table1_derived_column_matches_paper(benchmark, bench_app):
    report = benchmark(table1_report, bench_app)
    column = report["CourseRank"]
    # Paper cells for the CourseRank column, checked against the system:
    assert column["data_provenance"] == (
        "centrally stored, user contributed + official"
    )
    assert column["data_structure"] == "both types"
    assert column["access"] == "closed community"
    assert column["identities"] == "authorized, real ids"
    assert column["interests"] == "community-shaped interests"
    write_report("table1", render_table1(report))


def test_table1_static_columns_present(benchmark, bench_app):
    report = benchmark(table1_report, bench_app)
    assert set(report) == {"DB", "Web", "Social Sites", "CourseRank"}
    # Spot-check the fixed characterizations transcribed from the paper.
    assert "ACID" in report["DB"]["research"]
    assert report["Web"]["identities"] == "anyone, anonymous"
    assert "fake and multiple ids" in report["Social Sites"]["identities"]
