"""Experiment F2 — Figure 2: every CourseRank component is wired.

Figure 2 sketches the system's components; this smoke bench drives each
one through the facade and times the combined round-trip.
"""

from conftest import write_report


def exercise_all_components(app, suid):
    """One operation through every Figure-2 component; returns a trace."""
    trace = {}
    result, cloud = app.search_courses("history")
    trace["search"] = len(result)
    trace["course_cloud"] = len(cloud)
    trace["flexrecs"] = len(
        app.recommendations.run("related_courses", course_id=1, top_k=3)
    )
    trace["planner"] = app.planner.cumulative_gpa(suid) is not None
    dep_id = app.db.query("SELECT MIN(DepID) FROM Departments").scalar()
    trace["requirement_tracker"] = len(app.tracker.check(suid, dep_id))
    trace["forum"] = app.forum.stats()["questions"]
    trace["incentives"] = isinstance(app.incentives.action_counts(), dict)
    trace["privacy"] = app.privacy.sharing_rate() is not None
    trace["gradebook"] = isinstance(
        app.gradebook.courses_with_official_grades(), list
    )
    trace["ratings"] = app.ratings.rating_count(1) >= 0
    trace["accounts"] = app.accounts.count_by_role()["student"] > 0
    trace["analytics"] = app.analytics.department_report(dep_id).courses
    trace["database"] = app.db.query("SELECT COUNT(*) FROM Courses").scalar()
    return trace


def test_all_figure2_components_reachable(benchmark, bench_app, active_student):
    trace = benchmark(exercise_all_components, bench_app, active_student)
    missing = [
        component
        for component in bench_app.components()
        if component not in trace
    ]
    assert not missing, f"components not exercised: {missing}"
    assert trace["search"] > 0
    assert trace["requirement_tracker"] > 0
    lines = [f"{component}: {value}" for component, value in trace.items()]
    write_report("fig2_components", lines)
