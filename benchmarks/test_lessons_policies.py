"""Experiment L1 — the Section 2.2 "lessons" as checkable policies.

* Incentives: a simulated contribution season produces ledger totals that
  match the Y!-Answers-style point schedule exactly.
* Privacy: every displayable grade distribution covers >= k students; the
  plan-sharing opt-out keeps private entries invisible; the sharing rate
  matches "the vast majority".
* Data validity: official Engineering distributions track self-reported
  ones (the paper's argument that students enter valid data).
"""

import datetime

import pytest
from conftest import write_report

from repro.courserank.incentives import POINT_SCHEDULE
from repro.errors import PrivacyError


def simulate_contribution_day(app, usernames, day):
    """A day of site activity; returns expected per-user points."""
    expected = {}
    for username in usernames:
        user = app.accounts.authenticate(username)
        points = 0
        points += app.incentives.award(user.user_id, "daily_login", day=day)
        taken = app.db.query(
            f"SELECT CourseID FROM Enrollments WHERE SuID = {user.person_id} "
            "ORDER BY CourseID LIMIT 1"
        ).column("CourseID")
        if taken:
            app.comment_on_course(user, taken[0], "season comment", 4.0, day=day)
            points += POINT_SCHEDULE["comment"] + POINT_SCHEDULE["rate_course"]
        expected[user.user_id] = points
    return expected


def test_incentive_ledger_audit(benchmark, bench_app):
    usernames = [f"student{suid}" for suid in (1, 2, 3)]
    day = datetime.date(2008, 11, 3)
    expected = benchmark.pedantic(
        simulate_contribution_day,
        args=(bench_app, usernames, day),
        rounds=1,
        iterations=1,
    )
    lines = ["user | earned points (single day)"]
    for user_id, points in expected.items():
        # Points earned today = ledger entries dated today.
        earned_today = bench_app.db.query(
            "SELECT SUM(Points) FROM PointsLedger "
            f"WHERE UserID = {user_id} AND AwardDate = DATE '{day.isoformat()}'"
        ).scalar()
        assert (earned_today or 0) == points
        lines.append(f"{user_id:>4} | {points}")
    # Re-login the same day yields nothing (idempotent daily point).
    user = bench_app.accounts.authenticate(usernames[0])
    assert bench_app.incentives.award(user.user_id, "daily_login", day=day) == 0
    write_report("lessons_incentives", lines)


def test_grade_distribution_k_anonymity(benchmark, bench_app):
    """No visible distribution covers fewer than k students."""
    policy_k = bench_app.privacy.policy.min_distribution_size

    def audit():
        course_ids = bench_app.db.query(
            "SELECT DISTINCT CourseID FROM Enrollments ORDER BY CourseID"
        ).column("CourseID")
        visible = suppressed = violations = 0
        for course_id in course_ids:
            distribution = bench_app.privacy.distribution_or_none(course_id)
            if distribution is None:
                suppressed += 1
            else:
                visible += 1
                if distribution.total < policy_k:
                    violations += 1
        return visible, suppressed, violations

    visible, suppressed, violations = benchmark(audit)
    assert violations == 0
    assert suppressed > 0, "some small classes must be suppressed"
    lines = [
        f"k = {policy_k}",
        f"courses with visible distributions : {visible}",
        f"courses suppressed (small classes) : {suppressed}",
        f"k-anonymity violations             : {violations}",
    ]
    write_report("lessons_privacy_k_anonymity", lines)


def test_plan_sharing_optout(benchmark, bench_app):
    def audit():
        rate = bench_app.privacy.sharing_rate()
        # Private entries are invisible to other students.
        private = bench_app.db.query(
            "SELECT SuID, CourseID FROM Plans WHERE Shared = FALSE LIMIT 5"
        ).rows
        leaks = 0
        for suid, course_id in private:
            visible = bench_app.privacy.who_is_planning(course_id)
            if suid in {s for s, _name in visible}:
                leaks += 1
        return rate, len(private), leaks

    rate, checked, leaks = benchmark(audit)
    assert leaks == 0
    # Paper: "the vast majority of students do not view their plans as
    # sensitive" — generated opt-out is ~8%.
    assert rate is not None and rate > 0.7
    write_report(
        "lessons_plan_sharing",
        [
            f"plan sharing rate: {rate:.1%} (paper: the vast majority share)",
            f"private entries checked: {checked}, leaks: {leaks}",
        ],
    )


def test_official_vs_self_reported_validity(benchmark, bench_app):
    """Paper: official Engineering distributions ≈ self-reported ones."""

    def audit():
        agreements = []
        for course_id in bench_app.gradebook.courses_with_official_grades():
            value = bench_app.gradebook.distribution_agreement(course_id)
            if value is not None:
                agreements.append(value)
        return agreements

    agreements = benchmark(audit)
    assert agreements
    mean_agreement = sum(agreements) / len(agreements)
    assert mean_agreement > 0.8
    write_report(
        "lessons_data_validity",
        [
            f"Engineering courses with official histograms: {len(agreements)}",
            f"mean official/self-reported agreement: {mean_agreement:.3f} "
            "(1.0 = identical; paper: 'very close')",
            f"min agreement: {min(agreements):.3f}",
        ],
    )


def test_forum_cold_start_lesson(benchmark, bench_app):
    """'Little traffic ... seed the forum with FAQs' — before/after."""

    def seed():
        before = bench_app.forum.stats()
        bench_app.forum.seed_faq(
            [
                ("Who do I see to have my program approved?",
                 "Your department manager."),
                ("What is a good introductory class for non-majors?",
                 "Any 'Introduction to ...' course with a high rating."),
            ],
            dep_id=1,
        )
        return before, bench_app.forum.stats()

    before, after = benchmark.pedantic(seed, rounds=1, iterations=1)
    assert after["official_seeded"] >= before["official_seeded"] + 2
    assert after["unanswered"] <= before["unanswered"]
    write_report(
        "lessons_forum_seeding",
        [
            f"questions before/after seeding: "
            f"{before['questions']} -> {after['questions']}",
            f"unanswered before/after: "
            f"{before['unanswered']} -> {after['unanswered']}",
        ],
    )
