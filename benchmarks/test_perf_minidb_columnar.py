"""Experiment P4 — columnar batch-vectorized executor vs the row pipeline.

The CourseRank workloads the paper describes (grade distributions,
enrollment statistics, cloud term aggregation) are scan-heavy aggregate
queries.  This experiment measures the three canonical shapes —
scan-filter, group-aggregate, and join-aggregate — on a synthetic fact
table at three scales, under:

* ``interpreted`` — row pipeline, ``COMPILE_EXPRESSIONS`` off (the
  pre-PR-1 baseline);
* ``row-cold`` / ``row-warm`` — compiled row pipeline, fresh plan vs
  plan-cache hit;
* ``vec-cold`` / ``vec-warm``  — batch-vectorized executor
  (``planner.VECTORIZE``), fresh plan vs plan-cache hit.

All configs must return identical rows (asserted per cell).  The
acceptance bar from the ROADMAP: vectorized beats the interpreted row
path by >= 5x on the medium group-aggregate scan.
"""

import time

import pytest
from conftest import write_bench_json, write_report

from repro.minidb import Database
from repro.minidb import planner as planner_module

SCALES = [("tiny", 1_000), ("small", 10_000), ("medium", 50_000)]

WORKLOADS = [
    (
        "scan-filter",
        "SELECT id, g FROM f WHERE units >= 3 AND x1 <> 2",
    ),
    (
        "group-agg",
        "SELECT dep, COUNT(*) AS n, SUM(g) AS s, AVG(units) AS a "
        "FROM f GROUP BY dep",
    ),
    (
        "join-agg",
        "SELECT f.dep, COUNT(*) AS n, AVG(d.w) AS w FROM f "
        "JOIN d ON f.dep = d.dep GROUP BY f.dep",
    ),
]

CONFIGS = [
    # (label, compile_expressions, vectorize, warm)
    ("interpreted", False, False, True),
    ("row-cold", True, False, False),
    ("row-warm", True, False, True),
    ("vec-cold", True, True, False),
    ("vec-warm", True, True, True),
]


def build_database(rows: int) -> Database:
    database = Database()
    database.execute(
        "CREATE TABLE f (id INT PRIMARY KEY, dep INT, units INT, "
        "term INT, g FLOAT, x1 INT, x2 INT, note TEXT)"
    )
    for i in range(rows):
        database.execute(
            "INSERT INTO f VALUES (?, ?, ?, ?, ?, ?, ?, ?)",
            [
                i, i % 40, 1 + i % 5, i % 12, float(i % 9) / 2.0,
                i % 7, i % 11, f"n{i % 100}",
            ],
        )
    database.execute("CREATE TABLE d (dep INT, w FLOAT)")
    for dep in range(40):
        database.execute(
            "INSERT INTO d VALUES (?, ?)", [dep, float(dep % 4) + 0.5]
        )
    return database


def best_of(database: Database, sql: str, warm: bool, runs: int = 3) -> float:
    """Best wall time in ms; cold configs re-plan on every run."""
    best = float("inf")
    if warm:
        database.query(sql)  # populate the plan cache
    for _ in range(runs):
        if not warm:
            database.clear_plan_cache()
        started = time.perf_counter()
        database.query(sql)
        best = min(best, time.perf_counter() - started)
    return best * 1000.0


@pytest.fixture(scope="module")
def measurements():
    saved_compile = planner_module.COMPILE_EXPRESSIONS
    saved_vectorize = planner_module.VECTORIZE
    results = {}
    try:
        for scale, rows in SCALES:
            # One database per config keeps plan caches honest.
            for label, compile_expressions, vectorize, warm in CONFIGS:
                planner_module.COMPILE_EXPRESSIONS = compile_expressions
                planner_module.VECTORIZE = vectorize
                database = build_database(rows)
                for workload, sql in WORKLOADS:
                    results[(scale, workload, label)] = (
                        best_of(database, sql, warm),
                        database.query(sql).rows,
                    )
    finally:
        planner_module.COMPILE_EXPRESSIONS = saved_compile
        planner_module.VECTORIZE = saved_vectorize
    return results


def test_all_configs_agree(measurements):
    for scale, _rows in SCALES:
        for workload, _sql in WORKLOADS:
            reference = measurements[(scale, workload, "interpreted")][1]
            for label, *_ in CONFIGS:
                assert measurements[(scale, workload, label)][1] == reference, (
                    f"{label} diverges on {workload}@{scale}"
                )


def test_medium_group_aggregate_speedup(measurements):
    interpreted = measurements[("medium", "group-agg", "interpreted")][0]
    vectorized = measurements[("medium", "group-agg", "vec-warm")][0]
    assert interpreted / vectorized >= 5.0, (
        f"vectorized group-agg speedup {interpreted / vectorized:.1f}x < 5x"
    )


def test_report(measurements):
    lines = [
        "Columnar batch-vectorized executor vs row pipeline "
        "(best-of-3 ms per query)",
        "",
        f"{'scale':8} {'workload':12} "
        + " ".join(f"{label:>12}" for label, *_ in CONFIGS)
        + f" {'vec/interp':>10}",
    ]
    for scale, rows in SCALES:
        for workload, _sql in WORKLOADS:
            times = {
                label: measurements[(scale, workload, label)][0]
                for label, *_ in CONFIGS
            }
            speedup = times["interpreted"] / times["vec-warm"]
            lines.append(
                f"{scale:8} {workload:12} "
                + " ".join(f"{times[label]:12.3f}" for label, *_ in CONFIGS)
                + f" {speedup:9.1f}x"
            )
        lines.append("")
    lines.append(
        "rows: tiny=1k small=10k medium=50k; fact table 8 columns, "
        "40 groups; dims table 40 rows"
    )
    write_report("perf_minidb_columnar", lines)
    timings_ms = {
        f"{scale}/{workload}/{label}": measurements[(scale, workload, label)][0]
        for scale, _rows in SCALES
        for workload, _sql in WORKLOADS
        for label, *_ in CONFIGS
    }
    medium_interp = measurements[("medium", "group-agg", "interpreted")][0]
    medium_vec = measurements[("medium", "group-agg", "vec-warm")][0]
    write_bench_json(
        "minidb_columnar",
        {
            "timings_ms": timings_ms,
            "ops_per_sec": {
                key: (1000.0 / ms if ms else None)
                for key, ms in timings_ms.items()
            },
            "speedup": {
                "medium_group_agg_vec_warm_vs_interpreted": (
                    medium_interp / medium_vec
                )
            },
        },
    )
