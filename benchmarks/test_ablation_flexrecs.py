"""Ablation A1 — FlexRecs execution variants beyond P2.

DESIGN.md calls out two design choices for ablation:

* the **optimizer** (algebraic rewrites) vs naive execution of the same
  workflow — measured on a filtered, truncated stacked CF workflow where
  rule 4 (select into target) and rule 5 (top-k fusion) apply;
* **staged** execution (the paper's literal "sequence of SQL calls" with
  temp tables) vs the single nested statement.

All variants must return the same ranking.
"""

import time

import pytest
from conftest import write_report

from repro.core import Workflow, optimize, run_staged, strategies
from repro.core.operators import Select, TopK


@pytest.fixture(scope="module")
def wrapped_workflow(active_student):
    """A stacked CF workflow with a post-filter and a top-k cut."""
    inner = strategies.collaborative_filtering(
        active_student, similar_students=10, top_k=None
    )
    return Workflow(TopK(Select(inner.root, "Units >= 3"), 10, "score"))


def test_unoptimized_direct(benchmark, bench_db, wrapped_workflow):
    result = benchmark(wrapped_workflow.run, bench_db)
    assert len(result) > 0


def test_optimized_direct(benchmark, bench_db, wrapped_workflow):
    optimized = optimize(wrapped_workflow, bench_db)
    result = benchmark(optimized.run, bench_db)
    assert len(result) > 0


def test_optimizer_preserves_output(benchmark, bench_db, wrapped_workflow):
    optimized = optimize(wrapped_workflow, bench_db)

    def both(db):
        return wrapped_workflow.run(db), optimized.run(db)

    base, rewritten = benchmark(both, bench_db)
    assert base.column("CourseID") == rewritten.column("CourseID")
    for left, right in zip(base.rows, rewritten.rows):
        assert left["score"] == pytest.approx(right["score"])


def test_staged_execution(benchmark, bench_db, wrapped_workflow):
    wrapped_workflow.validate(bench_db)
    result = benchmark(run_staged, wrapped_workflow, bench_db)
    assert len(result) > 0


def test_staged_equals_single_statement(benchmark, bench_db, wrapped_workflow):
    def both(db):
        return wrapped_workflow.run_sql(db), run_staged(wrapped_workflow, db)

    single, staged = benchmark(both, bench_db)
    assert single.column("CourseID") == staged.column("CourseID")


def test_report_ablation_timings(
    bench_db, wrapped_workflow, active_student, benchmark
):
    optimized = optimize(wrapped_workflow, bench_db)
    runners = {
        "direct (naive)": lambda: wrapped_workflow.run(bench_db),
        "direct (optimized)": lambda: optimized.run(bench_db),
        "single SQL (naive)": lambda: wrapped_workflow.run_sql(bench_db),
        "single SQL (optimized)": lambda: optimized.run_sql(bench_db),
        "staged SQL sequence": lambda: run_staged(wrapped_workflow, bench_db),
    }

    def measure():
        timings = {}
        for name, runner in runners.items():
            runner()  # warm
            start = time.perf_counter()
            for _ in range(3):
                runner()
            timings[name] = (time.perf_counter() - start) / 3
        return timings

    timings = benchmark.pedantic(measure, rounds=1, iterations=1)
    lines = [
        f"stacked CF + filter + top-10 (student {active_student}):",
    ]
    for name, seconds in sorted(timings.items(), key=lambda kv: kv[1]):
        lines.append(f"  {name:>22}: {seconds * 1000:8.1f} ms")
    speedup = timings["direct (naive)"] / timings["direct (optimized)"]
    lines.append(f"optimizer speedup (direct path): {speedup:.2f}x")
    write_report("ablation_flexrecs", lines)
    # Shape: the rewrite rules must not make things slower.
    assert timings["direct (optimized)"] <= timings["direct (naive)"] * 1.25
